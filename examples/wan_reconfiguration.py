"""Why one round matters on a WAN: the experiments API from user code.

Sweeps the paper's algorithm against the sequential and two-round
baselines over WAN-like (lognormal) latencies and several group sizes,
printing the reconfiguration-latency table - the headline comparison of
the paper, reproduced in a dozen lines with the public experiments API.

Run with:  python examples/wan_reconfiguration.py
"""

from __future__ import annotations

from repro.experiments import ALGORITHMS, format_table, measure_reconfiguration
from repro.net import LognormalLatency


def main() -> None:
    rows = []
    for n in (4, 8, 16):
        for name, endpoint_cls in ALGORITHMS.items():
            result = measure_reconfiguration(
                endpoint_cls,
                group_size=n,
                latency=LognormalLatency(median=1.0, sigma=0.5, seed=42),
                round_duration=3.0,
                algorithm_name=name,
            )
            rows.append(
                (name, n, result.membership_latency, result.gcs_latency,
                 result.extra_latency)
            )
    print(format_table(
        ["algorithm", "group", "membership view at", "gcs view at", "extra"],
        rows,
        title="Reconfiguration latency on a lognormal WAN (time units = median RTT/2)",
    ))
    print(
        "\nThe paper's algorithm overlaps its synchronization round with the\n"
        "membership round, so the group is back in business the moment the\n"
        "membership delivers the view; the baselines append their rounds to it."
    )


if __name__ == "__main__":
    main()
