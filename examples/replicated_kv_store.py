"""A primary-partition replicated key-value store.

Builds the full stack the paper enables: the GCS provides virtually
synchronous FIFO multicast; the total-order layer sequences commands;
:class:`~repro.apps.state_machine.ReplicatedStateMachine` applies them on
every replica and handles state transfer at merges via transitional
sets.  With a configured universe, only a majority partition accepts
writes - the minority serves (possibly stale) reads and catches up on the
merge.

Run with:  python examples/replicated_kv_store.py
"""

from __future__ import annotations

from repro import ConstantLatency, NotPrimaryError, ReplicatedStateMachine, SimWorld
from repro.checking import check_all_safety


def apply_op(state: dict, operation) -> dict:
    kind, key, value = operation
    updated = dict(state)
    if kind == "put":
        updated[key] = value
    elif kind == "del":
        updated.pop(key, None)
    return updated


def main() -> None:
    pids = ["kv1", "kv2", "kv3", "kv4", "kv5"]
    universe = frozenset(pids)
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
    stores = {}
    for pid in pids:
        node = world.add_node(pid)
        stores[pid] = ReplicatedStateMachine(node, {}, apply_op, universe=universe)
    world.start()
    world.run()

    stores["kv1"].command(("put", "motd", "welcome"))
    stores["kv2"].command(("put", "limit", 10))
    world.run()
    print("after two writes:", stores["kv3"].state)

    print("\n--- partition: majority {kv1..kv3} | minority {kv4, kv5} ---")
    world.partition([pids[:3], pids[3:]])
    world.run()
    stores["kv1"].command(("put", "motd", "majority rules"))
    world.run()
    try:
        stores["kv4"].command(("put", "motd", "minority report"))
    except NotPrimaryError as error:
        print("minority write rejected:", error)
    print("majority sees:", stores["kv2"].state)
    print("minority still serves stale reads:", stores["kv4"].state)

    print("\n--- heal: minority catches up via state transfer ---")
    world.heal()
    world.run()
    values = {pid: store.state for pid, store in stores.items()}
    assert len({tuple(sorted(v.items())) for v in values.values()}) == 1
    print("all replicas converged to:", stores["kv4"].state)

    check_all_safety(world.trace, list(world.nodes))
    print("\nsafety battery passed")


if __name__ == "__main__":
    main()
