"""State-machine replication over virtually synchronous multicast.

The application the paper's Section 4.1.2 motivates: replicas apply
deterministic operations in the order the group delivers them.  Virtual
Synchrony guarantees that replicas moving together between views have
applied the *same* operations, and the transitional set tells each
replica exactly who it is already consistent with - so state transfer is
needed only towards members arriving from other views.

The demo runs three replicated counters, partitions the group, lets the
majority side advance, then heals the partition and uses the transitional
sets to decide who must send state to whom.

Run with:  python examples/replicated_counter.py
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro import ConstantLatency, SimWorld, View, check_all_safety
from repro.net import SimNode


@dataclass
class CounterReplica:
    """A replicated counter driven by GCS deliveries."""

    pid: str
    node: SimNode
    value: int = 0
    applied: int = 0
    log: List[str] = field(default_factory=list)

    def increment(self, amount: int) -> None:
        """Propose an increment by multicasting it to the current view."""
        self.node.send(("add", amount))

    # -- GCS callbacks ----------------------------------------------------

    def on_deliver(self, sender: str, payload) -> None:
        kind = payload[0]
        if kind == "add":
            self.value += payload[1]
            self.applied += 1
        elif kind == "state":
            _kind, value, applied = payload
            if applied > self.applied:  # adopt snapshots ahead of us
                self.value, self.applied = value, applied
                self.log.append(f"adopted state ({value}, {applied}) from {sender}")

    def on_view(self, view: View, transitional: FrozenSet[str]) -> None:
        self.log.append(
            f"view {view.vid} members={sorted(view.members)} T={sorted(transitional)}"
        )
        # Members outside the transitional set may have diverged.  Virtual
        # Synchrony lets everyone inside T skip state transfer among
        # themselves; the deterministic rule here is that the least member
        # of T broadcasts the snapshot for the others to adopt.
        newcomers = view.members - transitional
        if newcomers and self.pid == min(transitional):
            self.node.send(("state", self.value, self.applied))
            self.log.append(f"sent state for {sorted(newcomers)}")


def main() -> None:
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
    replicas: Dict[str, CounterReplica] = {}
    for pid in ("r1", "r2", "r3"):
        node = world.add_node(pid)
        replica = CounterReplica(pid, node)
        node.set_app(on_deliver=replica.on_deliver, on_view=replica.on_view)
        replicas[pid] = replica
    world.start()
    world.run()

    replicas["r1"].increment(5)
    replicas["r2"].increment(7)
    world.run()
    show(replicas, "after two increments")

    print("\n--- partition: {r1, r2} | {r3} ---")
    world.partition([["r1", "r2"], ["r3"]])
    world.run()
    replicas["r1"].increment(100)  # the majority side advances alone
    world.run()
    show(replicas, "while partitioned (r3 is behind)")

    print("\n--- heal ---")
    world.heal()
    world.run()
    show(replicas, "after heal + state transfer")
    assert len({(r.value, r.applied) for r in replicas.values()}) == 1

    check_all_safety(world.trace, list(world.nodes))
    print("\nsafety battery passed; event log of r3:")
    for line in replicas["r3"].log:
        print("  ", line)


def show(replicas: Dict[str, CounterReplica], caption: str) -> None:
    states = {pid: (r.value, r.applied) for pid, r in replicas.items()}
    print(f"{caption}: {states}")


if __name__ == "__main__":
    main()
