"""Partitions, concurrent views, and message recovery by forwarding.

A six-member group splits into two islands; both keep working in their
own (concurrent, disjoint) views - the service is *partitionable*.  One
sender's messages reach only part of its island before it is cut off;
the survivors agree on the prefix to deliver and the forwarding strategy
(Section 5.2.2) repairs the missing copies so Virtual Synchrony holds.

Run with:  python examples/partition_healing.py
"""

from __future__ import annotations

from repro import MinCopiesStrategy, SimWorld, check_all_safety
from repro.net.latency import LatencyModel


class IslandLatency(LatencyModel):
    """1.0 everywhere, except the doomed sender is slow towards most peers,
    so only its fastest neighbour holds its last messages at cut time."""

    def sample(self, src, dst):
        if src == "p5" and dst != "p0":
            return 30.0
        return 1.0

    def mean(self):
        return 1.0


def main() -> None:
    world = SimWorld(
        latency=IslandLatency(),
        membership="oracle",
        round_duration=2.0,
        forwarding=MinCopiesStrategy(),
    )
    pids = [f"p{i}" for i in range(6)]
    nodes = world.add_nodes(pids)
    world.start()
    world.run()
    print("initial view:", sorted(nodes[0].current_view.members))

    # p5 multicasts, but only p0 receives before the cut.
    nodes[5].send("last words 1")
    nodes[5].send("last words 2")
    world.run_until(world.now() + 1.05)
    print("\n--- partition: {p0..p4} | {p5} ---")
    world.network.reset_counters()
    world.partition([pids[:5], [pids[5]]])
    world.run()

    for node in nodes[:5]:
        got = [m for s, m in node.delivered if s == "p5"]
        print(f"  {node.pid} delivered from p5: {got}")
    copies = world.network.totals().get("FwdMsg", 0)
    print(f"  forwarded copies on the wire: {copies} "
          f"(min-copies: one per missing message)")

    # Both islands keep multicasting in their own views.
    nodes[0].send("majority life goes on")
    nodes[5].send("minority soliloquy")
    world.run()

    print("\n--- heal ---")
    world.heal()
    world.run()
    final = world.oracle.views_formed[-1]
    print("merged view:", sorted(final.members))
    for node in nodes:
        t = dict(node.views)[final]
        print(f"  {node.pid}: transitional set {sorted(t)}")

    check_all_safety(world.trace, list(world.nodes))
    print("\nsafety battery passed "
          "(virtual synchrony held through partition, recovery, and merge)")


if __name__ == "__main__":
    main()
