"""Quickstart: a three-member group exchanging messages through the GCS.

Demonstrates the asyncio runtime: create a cluster, form a view, multicast
a few messages, watch a membership change deliver a new view with its
transitional set, and see Self Delivery and FIFO order in action.

Run with:  python examples/quickstart.py
"""

import asyncio

from repro import AsyncCluster, Delivery, ViewChange


async def main() -> None:
    async with AsyncCluster(record_trace=True) as cluster:
        alice, bob, carol = cluster.add_nodes(["alice", "bob", "carol"])

        view = await cluster.start()
        print(f"initial view: {sorted(view.members)} (id {view.vid})")

        # Every member multicasts; the service delivers each message to
        # every member of the view in which it was sent, in FIFO order,
        # including back to the sender (Self Delivery).
        await alice.send("hello from alice")
        await bob.send("hi, this is bob")
        await carol.send("carol here")
        await cluster.quiesce()

        for node in (alice, bob, carol):
            print(f"\n{node.pid} observed:")
            while not node.events_queue.empty():
                event = node.events_queue.get_nowait()
                if isinstance(event, ViewChange):
                    print(f"  view {event.view.vid}: members {sorted(event.view.members)}, "
                          f"transitional set {sorted(event.transitional)}")
                elif isinstance(event, Delivery):
                    print(f"  message from {event.sender}: {event.payload!r}")

        # Carol leaves.  The survivors move together, so the transitional
        # set they receive with the new view is {alice, bob} - they know
        # they agree on everything delivered so far and can skip any
        # state-transfer round (the point of Virtual Synchrony).
        new_view = await cluster.reconfigure(["alice", "bob"])
        print(f"\nafter carol left: view {new_view.vid} = {sorted(new_view.members)}")
        for node in (alice, bob):
            while not node.events_queue.empty():
                event = node.events_queue.get_nowait()
                if isinstance(event, ViewChange):
                    print(f"  {node.pid}: transitional set {sorted(event.transitional)}")

        await alice.send("just the two of us now")
        await cluster.quiesce()
        event = await bob.next_event(timeout=1.0)
        print(f"\nbob got: {event.payload!r} from {event.sender}")

        # The recorded trace passes the paper's full safety battery.
        from repro import check_all_safety
        check_all_safety(cluster.trace, list(cluster.nodes))
        print("\nall safety properties verified on the recorded trace")


if __name__ == "__main__":
    asyncio.run(main())
