"""The GCS over real TCP sockets on loopback.

Every wire message - view announcements, application payloads,
synchronization messages - crosses an actual socket, framed and pickled,
through :class:`~repro.runtime.tcp_cluster.TcpCluster`.  This is the
closest analogue in this repository to the paper's C++ deployment.

Run with:  python examples/tcp_sockets.py
"""

import asyncio

from repro.checking import check_all_safety
from repro.runtime import Delivery, TcpCluster, ViewChange


async def main() -> None:
    async with TcpCluster(record_trace=True) as cluster:
        nodes = await cluster.add_nodes(["athens", "berlin", "cairo"])
        view = await cluster.start()
        ports = {n.pid: n.transport.port for n in nodes}
        print(f"view {view.vid} over sockets {ports}")

        await nodes[0].send("routed through the kernel")
        await nodes[1].send("and back")
        await asyncio.sleep(0.2)

        for node in nodes:
            received = []
            while not node.events.empty():
                event = node.events.get_nowait()
                if isinstance(event, Delivery):
                    received.append(f"{event.sender}: {event.payload!r}")
                elif isinstance(event, ViewChange):
                    received.append(f"view {event.view.vid}, T={sorted(event.transitional)}")
            print(f"{node.pid} saw: {received}")

        smaller = await cluster.reconfigure(["athens", "berlin"])
        print(f"\ncairo left: view {smaller.vid} = {sorted(smaller.members)}")
        await nodes[0].send("just two capitals now")
        await asyncio.sleep(0.2)

        check_all_safety(cluster.trace, list(cluster.nodes))
        print("safety battery passed over real sockets")


if __name__ == "__main__":
    asyncio.run(main())
