"""Substrate-agnostic link-layer core (CO_RFIFO's wire contract, once).

:class:`LinkCore` owns partition/reachability, fault application,
receiver-side deduplication, the per-link FIFO clamp, and uniform
:class:`LinkStats` counters; the simulator, asyncio hub, and TCP
transport are thin drivers over it.  See ``docs/ARCHITECTURE.md``
("Link layer") for the contract and how to add a fourth substrate.
"""

from repro.links.core import (
    Link,
    LinkCore,
    LinkStats,
    Transmission,
    WireCopy,
    kind_of,
)

__all__ = [
    "Link",
    "LinkCore",
    "LinkStats",
    "Transmission",
    "WireCopy",
    "kind_of",
]
