"""Substrate-agnostic link-layer core (CO_RFIFO's wire contract, once).

:class:`LinkCore` owns partition/reachability, fault application,
receiver-side deduplication, the per-link FIFO clamp, and uniform
:class:`LinkStats` counters; the simulator, asyncio hub, and TCP
transport are thin drivers over it.  :class:`MessageBatch` is the shared
batched carrier those drivers coalesce same-link traffic into (see
:mod:`repro.links.batch`).  See ``docs/ARCHITECTURE.md`` ("Link layer"
and "Steady-state fast path") for the contract and how to add a fourth
substrate.
"""

from repro.links.batch import (
    BATCH_LIMIT,
    BatchAccumulator,
    MessageBatch,
    coalesce_copies,
)
from repro.links.core import (
    Link,
    LinkCore,
    LinkStats,
    Transmission,
    WireCopy,
    kind_of,
)

__all__ = [
    "BATCH_LIMIT",
    "BatchAccumulator",
    "Link",
    "LinkCore",
    "LinkStats",
    "MessageBatch",
    "Transmission",
    "WireCopy",
    "coalesce_copies",
    "kind_of",
]
