"""The unified link-layer core shared by every substrate.

The paper's CO_RFIFO layer (Figure 3) assumes one well-defined link
contract: per-link FIFO, no duplication, symmetric reachability.  Every
substrate of this reproduction - the discrete-event
:class:`~repro.net.network.SimNetwork`, the in-process asyncio
:class:`~repro.runtime.transport.AsyncHub`, and the socket-backed
:class:`~repro.runtime.tcp.TcpTransport` - must realise that same
contract; :class:`LinkCore` states it exactly once.

A ``LinkCore`` owns, for one deployment's fabric:

* the **partition/reachability matrix** - ``partition(groups)`` /
  ``heal()`` (component-based cuts) and ``restrict(pid, allowed)``
  (per-endpoint frame filters, the former TCP-only emulation) are one
  API, and :meth:`connected` is its single symmetric query;
* the **fault-application pipeline** - :meth:`outbound` turns a
  :class:`~repro.chaos.faults.FaultInjector` decision into wire copies
  (drop = retransmission-penalty latency, duplicate = a real second
  :class:`~repro.chaos.faults.DuplicateCopy` on the channel, delay and
  reorder = jitter under the FIFO clamp);
* **receiver-side deduplication** - :meth:`inbound` discards
  ``DuplicateCopy`` markers, so no end-point ever sees a duplicate;
* the **per-link FIFO clamp** - :meth:`fifo_arrival` keeps arrivals on
  one ordered link monotone even under jittered latencies;
* uniform :class:`LinkStats` **counters** - per-kind and per-link, with
  ``totals()`` / ``reset_counters()`` on every substrate (previously the
  simulator alone counted messages).

The substrates keep only *scheduling and IO*: the simulator its event
queue and bounce-on-cut flush, the hub its asyncio pumps, the TCP
transport its stream framing.  A fourth substrate (UDP, shared memory,
multi-process) is one driver over this class - see the "Link layer"
section of ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.chaos.faults import DuplicateCopy, FaultInjector
from repro.types import ProcessId

Link = Tuple[ProcessId, ProcessId]

# One wire copy: (message, extra delay before it may travel).
WireCopy = Tuple[Any, float]


def kind_of(message: Any) -> str:
    """The counter key of a wire message: its class name."""
    return type(message).__name__


@dataclass
class LinkStats:
    """Uniform message accounting for one fabric.

    ``sent``/``delivered``/``bounced`` count by message kind (class
    name); ``volume`` sums ``estimated_size()`` for kinds that define it
    (synchronization messages); ``per_link`` counts transmissions per
    ordered ``(src, dst)`` pair, which the settle-timeout diagnostics
    print so a stalled run shows *where* the traffic was.
    """

    sent: Counter = field(default_factory=Counter)
    delivered: Counter = field(default_factory=Counter)
    bounced: Counter = field(default_factory=Counter)
    volume: Counter = field(default_factory=Counter)
    per_link: Counter = field(default_factory=Counter)

    def record_sent(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        kind = kind_of(message)
        self.sent[kind] += 1
        self.per_link[(src, dst)] += 1
        size = getattr(message, "estimated_size", None)
        if size is not None:
            self.volume[kind] += size()

    def record_delivered(self, message: Any) -> None:
        self.delivered[kind_of(message)] += 1

    def record_bounced(self, message: Any) -> None:
        self.bounced[kind_of(message)] += 1

    def totals(self) -> Dict[str, int]:
        """Messages handed to the fabric, by kind."""
        return dict(self.sent)

    def reset_counters(self) -> None:
        self.sent.clear()
        self.delivered.clear()
        self.bounced.clear()
        self.volume.clear()
        self.per_link.clear()

    def describe_links(self, limit: int = 6) -> str:
        """The busiest links, for :class:`SettleTimeoutError` diagnostics."""
        if not self.per_link:
            return "no traffic"
        busiest = sorted(self.per_link.items(), key=lambda item: (-item[1], item[0]))
        shown = ", ".join(f"{src}->{dst}: {count}" for (src, dst), count in busiest[:limit])
        extra = len(busiest) - limit
        suffix = f" (+{extra} more)" if extra > 0 else ""
        return shown + suffix

    def describe_tier_links(self, limit: int = 6) -> str:
        """The busiest membership-tier links, for stall diagnostics.

        Tier traffic rides the same fabric as data; a stalled settle
        caused by membership messages should say so.  Server endpoints
        are recognised by the ``srv:`` naming convention (kept as a
        string here - the membership layer sits above this one).
        """
        tier = Counter({
            link: count
            for link, count in self.per_link.items()
            if any(str(end).startswith("srv:") for end in link)
        })
        if not tier:
            return "no tier traffic"
        busiest = sorted(tier.items(), key=lambda item: (-item[1], item[0]))
        shown = ", ".join(f"{src}->{dst}: {count}" for (src, dst), count in busiest[:limit])
        extra = len(busiest) - limit
        suffix = f" (+{extra} more)" if extra > 0 else ""
        return "tier links " + shown + suffix


@dataclass(frozen=True)
class Transmission:
    """What one accepted send puts on the wire.

    ``copies`` lists the wire copies in channel order - the message
    itself (with any fault-induced extra delay) and, when the injector
    duplicated it, a :class:`DuplicateCopy` marker that the receiving
    side of the core will discard.  ``dropped`` records that the
    original was "lost" and its delay is a retransmission penalty.
    """

    copies: Tuple[WireCopy, ...]
    dropped: bool = False


class LinkCore:
    """Substrate-agnostic semantics of one deployment's link fabric."""

    def __init__(self, *, faults: Optional[FaultInjector] = None) -> None:
        self.faults = faults
        self.stats = LinkStats()
        # partition matrix: processes in different groups cannot exchange
        # messages; group 0 is the default connected component.
        self._group: Dict[ProcessId, int] = {}
        # per-endpoint frame filters (the former TCP-only ``restrict``):
        # when set, the endpoint exchanges messages only with the listed
        # peers.  Connectivity requires *mutual* allowance, keeping the
        # reachability relation symmetric as the contract demands.
        self._allowed: Dict[ProcessId, FrozenSet[ProcessId]] = {}
        self._listeners: List[Callable[[], None]] = []
        # Last granted arrival per ordered link: the FIFO clamp.
        self._last_arrival: Dict[Link, float] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def ensure(self, pid: ProcessId) -> None:
        """Register ``pid`` on the fabric (idempotent)."""
        self._group.setdefault(pid, 0)

    def processes(self) -> List[ProcessId]:
        return sorted(self._group)

    # ------------------------------------------------------------------
    # the partition/reachability matrix
    # ------------------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[ProcessId]]) -> None:
        """Split the fabric into components; unmentioned processes join
        group 0 (the residual component)."""
        assignment: Dict[ProcessId, int] = {}
        for index, group in enumerate(groups, start=1):
            for pid in group:
                assignment[pid] = index
                self.ensure(pid)
        for pid in self._group:
            self._group[pid] = assignment.get(pid, 0)
        self._notify_topology()

    def heal(self) -> None:
        """Merge every component and lift every restriction."""
        for pid in self._group:
            self._group[pid] = 0
        self._allowed.clear()
        self._notify_topology()

    def restrict(self, pid: ProcessId, allowed: Optional[Iterable[ProcessId]]) -> None:
        """Limit ``pid``'s traffic to ``allowed`` peers (``None`` lifts).

        The per-endpoint face of the partition matrix: a process whose
        allowed set excludes a peer can neither send to nor hear from it,
        regardless of which side initiated the frame.
        """
        self.ensure(pid)
        if allowed is None:
            self._allowed.pop(pid, None)
        else:
            self._allowed[pid] = frozenset(allowed)
        self._notify_topology()

    def _permits(self, p: ProcessId, q: ProcessId) -> bool:
        allowed = self._allowed.get(p)
        return allowed is None or q == p or q in allowed

    def connected(self, p: ProcessId, q: ProcessId) -> bool:
        """Symmetric reachability: same component, mutual allowance."""
        if self._group.get(p, 0) != self._group.get(q, 0):
            return False
        return self._permits(p, q) and self._permits(q, p)

    def reachable_from(self, p: ProcessId) -> Set[ProcessId]:
        return {q for q in self._group if self.connected(p, q)}

    def on_topology_change(self, listener: Callable[[], None]) -> None:
        self._listeners.append(listener)

    def _notify_topology(self) -> None:
        for listener in list(self._listeners):
            listener()

    # ------------------------------------------------------------------
    # per-link FIFO sequencing
    # ------------------------------------------------------------------

    def fifo_arrival(self, src: ProcessId, dst: ProcessId, proposed: float) -> float:
        """Clamp ``proposed`` so arrivals on the link stay monotone.

        Jittered latencies (or fault-injected delays) must never let a
        later transmission overtake an earlier one on the same ordered
        link - per-link FIFO is part of the CO_RFIFO contract.
        """
        link = (src, dst)
        arrival = max(proposed, self._last_arrival.get(link, 0.0))
        self._last_arrival[link] = arrival
        return arrival

    # ------------------------------------------------------------------
    # the fault-application pipeline
    # ------------------------------------------------------------------

    def outbound(self, src: ProcessId, dst: ProcessId, message: Any) -> Optional[Transmission]:
        """Admit one transmission to the wire, or ``None`` across a cut.

        Applies the fault pipeline exactly once, whatever the substrate:
        a *dropped* message arrives after a retransmission penalty, a
        *duplicated* one adds a real :class:`DuplicateCopy` to the
        channel (behind the original, preserving FIFO), *delay*/*reorder*
        add jitter the driver must pass through :meth:`fifo_arrival` or
        its substrate's own per-link FIFO.  Every wire copy is counted.
        """
        if not self.connected(src, dst):
            return None
        if self.faults is None:
            self.stats.record_sent(src, dst, message)
            return Transmission(((message, 0.0),))
        decision = None
        if not isinstance(message, DuplicateCopy):
            decision = self.faults.decide(src, dst)
        copies: List[WireCopy] = [(message, decision.extra_delay if decision else 0.0)]
        if decision is not None and decision.duplicate:
            copies.append((DuplicateCopy(message), 0.0))
        for wire, _extra in copies:
            self.stats.record_sent(src, dst, wire)
        return Transmission(tuple(copies), dropped=bool(decision and decision.dropped))

    def inbound(
        self,
        src: ProcessId,
        dst: ProcessId,
        message: Any,
        *,
        check_topology: bool = False,
    ) -> Optional[Any]:
        """Filter one arriving wire copy; the payload to deliver, or ``None``.

        ``check_topology=True`` (drivers whose wire can hold frames
        across a cut, e.g. kernel socket buffers) drops arrivals whose
        link the matrix has severed.  :class:`DuplicateCopy` markers die
        here - receiver-side dedup, stated once for every substrate.
        """
        if check_topology and not self.connected(src, dst):
            return None  # the frame crossed a partition cut: drop it
        self.stats.record_delivered(message)
        if isinstance(message, DuplicateCopy):
            if self.faults is not None:
                self.faults.suppressed_duplicate()
            return None
        return message

    def inbound_batch(
        self,
        src: ProcessId,
        dst: ProcessId,
        copies: Iterable[Any],
        *,
        check_topology: bool = False,
    ) -> List[Any]:
        """Filter one arriving batched carrier; the payloads to deliver.

        The batched face of :meth:`inbound`: every copy is accounted and
        deduplicated individually (counters count messages, not batches),
        but the topology check is atomic - a carrier that crossed a
        partition cut dies *whole*, each of its messages recorded as
        bounced, so a cut can never split a batch into a delivered prefix
        and a lost suffix.
        """
        if check_topology and not self.connected(src, dst):
            for wire in copies:
                self.stats.record_bounced(wire)
            return []
        payloads = []
        for wire in copies:
            payload = self.inbound(src, dst, wire)
            if payload is not None:
                payloads.append(payload)
        return payloads

    def bounced(self, src: ProcessId, dst: ProcessId, message: Any) -> Optional[Any]:
        """Account a failed transmission (partition cut the link mid-flight).

        Returns the message the driver should hand back to the sending
        transport for possible retransmission, or ``None`` when the wire
        copy needs no retransmission (a :class:`DuplicateCopy` - the
        original copy is bounced in its own right, the marker is moot).
        """
        del src, dst  # accounting is kind-based; kept for future per-link stats
        self.stats.record_bounced(message)
        return None if isinstance(message, DuplicateCopy) else message

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def totals(self) -> Dict[str, int]:
        return self.stats.totals()

    def reset_counters(self) -> None:
        self.stats.reset_counters()

    def __repr__(self) -> str:
        groups = sorted(set(self._group.values()))
        return (
            f"<LinkCore processes={len(self._group)} groups={groups} "
            f"restricted={sorted(self._allowed)} sent={sum(self.stats.sent.values())}>"
        )


__all__ = [
    "Link",
    "LinkCore",
    "LinkStats",
    "Transmission",
    "WireCopy",
    "kind_of",
]
