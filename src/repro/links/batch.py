"""Batched wire framing for the unified link layer.

Real virtual-synchrony stacks get their steady-state throughput from
coalescing: many small application messages travelling one ordered link
at (nearly) the same moment share one carrier - one kernel syscall, one
pickle, one scheduler event - instead of paying the per-message fixed
cost each time.  :class:`MessageBatch` is that carrier, stated once so
all three substrates ship the same object:

* the discrete-event simulator coalesces same-instant wire copies of one
  link under a single scheduled event;
* the asyncio hub appends to the open tail entry of a destination's
  inbox queue;
* the TCP transport frames one batch as one length-prefixed pickle
  (``encode_batch``/``read_frame`` in :mod:`repro.runtime.tcp`).

Batching never changes link semantics: the copies inside a batch keep
their channel order (per-link FIFO holds *across* batch boundaries),
fault products such as :class:`~repro.chaos.faults.DuplicateCopy`
markers ride inside the batch and die in the receiver-side dedup, and
:class:`~repro.links.LinkStats` counts messages, never batches - see
:meth:`LinkCore.inbound_batch <repro.links.LinkCore.inbound_batch>`.
A batch is also *atomic* on the wire: a partition cut can bounce or drop
it only as a whole, never deliver a prefix of it.
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

#: Maximum wire copies coalesced into one carrier.  Keeps single batches
#: from growing without bound under a flood (bounded frame sizes, bounded
#: work per scheduler event) while still amortising the per-carrier cost
#: ~30x.
BATCH_LIMIT = 32


class MessageBatch:
    """An ordered run of wire copies sharing one carrier on one link.

    Purely a framing object: it appears between a driver's send side and
    the receiving :meth:`LinkCore.inbound_batch`, and never reaches an
    end-point (the core unpacks it and hands payloads on one at a time).
    """

    __slots__ = ("copies",)

    def __init__(self, copies: Tuple[Any, ...]) -> None:
        self.copies = copies

    def __len__(self) -> int:
        return len(self.copies)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.copies)

    def __reduce__(self):
        # Tuple-based pickling: one cheap constructor call on the TCP
        # receive path instead of the generic slotted-class protocol.
        return (MessageBatch, (self.copies,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MessageBatch):
            return NotImplemented
        return self.copies == other.copies

    def __repr__(self) -> str:
        return f"MessageBatch({len(self.copies)} copies)"


def coalesce_copies(copies, limit: int = BATCH_LIMIT):
    """Coalesce a channel-ordered run of wire copies into carriers.

    Consecutive copies with no extra (fault-injected) delay share one
    :class:`MessageBatch` carrier, up to ``limit`` per batch; a delayed
    copy travels alone (the driver must apply its delay individually,
    which a shared carrier could not express).  Channel order - and
    therefore per-link FIFO - is preserved exactly: the output is a list
    of ``(wire, extra)`` pairs in the original copy order, where ``wire``
    is either a single message or a batch.
    """
    out = []
    run = []

    def close_run() -> None:
        if not run:
            return
        if len(run) == 1:
            out.append((run[0], 0.0))
        else:
            out.append((MessageBatch(tuple(run)), 0.0))
        run.clear()

    for wire, extra in copies:
        if extra:
            close_run()
            out.append((wire, extra))
            continue
        run.append(wire)
        if len(run) >= limit:
            close_run()
    close_run()
    return out


class BatchAccumulator:
    """Per-destination batch builder over one sender's ``LinkCore``.

    A driver feeds it messages with :meth:`add` - each one runs through
    the core's full fault pipeline (:meth:`LinkCore.outbound
    <repro.links.LinkCore.outbound>`, so drops, duplicates, and per-link
    counters apply per *message*, exactly as without batching) - and
    :meth:`flush` hands back the accumulated wire copies coalesced into
    carriers for the destination, in channel order.
    """

    def __init__(self, core, src, limit: int = BATCH_LIMIT) -> None:
        self.core = core
        self.src = src
        self.limit = limit
        self._pending = {}

    def add(self, dst, message) -> bool:
        """Admit ``message`` for ``dst``; False across a partition cut."""
        transmission = self.core.outbound(self.src, dst, message)
        if transmission is None:
            return False
        self._pending.setdefault(dst, []).extend(transmission.copies)
        return True

    def flush(self, dst):
        """The coalesced carriers pending for ``dst`` (and clear them)."""
        copies = self._pending.pop(dst, None)
        if not copies:
            return []
        return coalesce_copies(copies, self.limit)

    def flush_all(self):
        """``(dst, carriers)`` pairs for every destination with traffic."""
        return [(dst, self.flush(dst)) for dst in list(self._pending)]

    def pending(self, dst) -> int:
        return len(self._pending.get(dst, ()))


__all__ = ["BATCH_LIMIT", "BatchAccumulator", "MessageBatch", "coalesce_copies"]

