"""The within-view reliable FIFO multicast end-point, Figure 9.

``WvRfifoEndpoint`` is the base layer of the algorithm stack.  It
forwards membership views to the application unchanged (preserving Local
Monotonicity and Self Inclusion), and synchronises message delivery with
views by threading ``view_msg`` markers through the FIFO message stream:
an application message received from ``q`` belongs to the view announced
by the latest ``view_msg`` from ``q``, and is delivered to the
application only while that view is current.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro._collections import MessageLog
from repro.core.endpoint_base import ProcessAutomaton
from repro.core.messages import AppMsg, FwdMsg, ViewMsg, WireMessage
from repro.ioa import ActionKind
from repro.types import ProcessId, View, initial_view


class WvRfifoEndpoint(ProcessAutomaton):
    """WV_RFIFO_p (Figure 9)."""

    SIGNATURE = {
        # inputs
        "send": ActionKind.INPUT,  # (p, m)
        "co_rfifo.deliver": ActionKind.INPUT,  # (q, p, m)
        "mbrshp.view": ActionKind.INPUT,  # (p, v)
        # outputs
        "deliver": ActionKind.OUTPUT,  # (p, q, m)
        "co_rfifo.send": ActionKind.OUTPUT,  # (p, set, m)
        "co_rfifo.reliable": ActionKind.OUTPUT,  # (p, set)
        "view": ActionKind.OUTPUT,  # (p, v) - extended to (p, v, T) by the child
    }

    # The drain barrier the runner enforces (earlier first) and R5 checks
    # against: reliable-set updates unlock sync sends, sends advance
    # last_sent before self-delivery, and deliveries must reach the
    # agreed cut before the view goes out.  Inherited by the whole
    # endpoint stack (Vs/Gcs and the baselines), whose added outputs
    # (block) slot in between.
    ORDERING = ("co_rfifo.reliable", "block", "co_rfifo.send", "deliver", "view")

    def _state(self) -> None:
        pid = self.pid
        # msgs[q][v]: messages sent by q in view v (1-indexed, may have holes)
        self.msgs: Dict[ProcessId, Dict[View, MessageLog]] = {}
        self.last_sent = 0
        self.last_rcvd: Dict[ProcessId, int] = {}
        self.last_dlvrd: Dict[ProcessId, int] = {}
        self.current_view: View = initial_view(pid)
        self.mbrshp_view: View = initial_view(pid)
        self.view_msg: Dict[ProcessId, View] = {}
        self.reliable_set: FrozenSet[ProcessId] = frozenset({pid})

    # -- state helpers ------------------------------------------------------

    def buffer(self, q: ProcessId, v: View) -> MessageLog:
        """The paper's ``msgs[q][v]``, created on demand."""
        return self.msgs.setdefault(q, {}).setdefault(v, MessageLog())

    def peek_buffer(self, q: ProcessId, v: View) -> Optional[MessageLog]:
        return self.msgs.get(q, {}).get(v)

    def view_msg_of(self, q: ProcessId) -> View:
        """Latest ``view_msg`` received from ``q`` (initially ``v_q``)."""
        return self.view_msg.get(q, initial_view(q))

    def dlvrd(self, q: ProcessId) -> int:
        return self.last_dlvrd.get(q, 0)

    def rcvd(self, q: ProcessId) -> int:
        return self.last_rcvd.get(q, 0)

    # ------------------------------------------------------------------
    # INPUT mbrshp.view_p(v)
    # ------------------------------------------------------------------

    def _eff_mbrshp_view(self, p: ProcessId, v: View) -> None:
        self.mbrshp_view = v

    # ------------------------------------------------------------------
    # OUTPUT view_p(v)
    # ------------------------------------------------------------------

    def _pre_view(self, p: ProcessId, v: View) -> bool:
        return v == self.mbrshp_view and v.vid > self.current_view.vid

    def _eff_view(self, p: ProcessId, v: View) -> None:
        self.current_view = v
        self.last_sent = 0
        self.last_dlvrd = {}

    def _candidates_view(self) -> Iterable[Tuple[ProcessId, View]]:
        if self.mbrshp_view.vid > self.current_view.vid:
            yield (self.pid, self.mbrshp_view)

    # ------------------------------------------------------------------
    # INPUT send_p(m)
    # ------------------------------------------------------------------

    def _eff_send(self, p: ProcessId, m: Any) -> None:
        self.buffer(self.pid, self.current_view).append(m)

    # ------------------------------------------------------------------
    # OUTPUT deliver_p(q, m)
    # ------------------------------------------------------------------

    def _pre_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> bool:
        log = self.peek_buffer(q, self.current_view)
        if log is None:
            return False
        index = self.dlvrd(q) + 1
        if not log.has(index) or log.get(index) != m:
            return False
        if q == self.pid and not self.dlvrd(q) < self.last_sent:
            return False
        return True

    def _eff_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> None:
        self.last_dlvrd[q] = self.dlvrd(q) + 1

    def _candidates_deliver(self) -> Iterable[Tuple[ProcessId, ProcessId, Any]]:
        # Iterate the buffer map, not the membership: only senders with a
        # buffered log can have a deliverable message, so a quiet
        # thousand-member view costs nothing per drain.  (Order follows
        # buffer creation, which is deterministic; the naive oracle uses
        # this same method, so compiled and reflective enumerations agree.)
        view = self.current_view
        members = view.members
        for q, buffers in self.msgs.items():
            if q not in members:
                continue
            log = buffers.get(view)
            if log is None:
                continue
            index = self.dlvrd(q) + 1
            if log.has(index):
                yield (self.pid, q, log.get(index))

    # ------------------------------------------------------------------
    # OUTPUT co_rfifo.reliable_p(set)
    # ------------------------------------------------------------------

    def _pre_co_rfifo_reliable(self, p: ProcessId, targets: FrozenSet[ProcessId]) -> bool:
        return self.current_view.members <= frozenset(targets)

    def _eff_co_rfifo_reliable(self, p: ProcessId, targets: FrozenSet[ProcessId]) -> None:
        self.reliable_set = frozenset(targets)

    def _desired_reliable_set(self) -> FrozenSet[ProcessId]:
        """The set this layer wants reliable connections to (child widens)."""
        return frozenset(self.current_view.members)

    def _candidates_co_rfifo_reliable(self) -> Iterable[Tuple[ProcessId, FrozenSet[ProcessId]]]:
        desired = self._desired_reliable_set()
        # Identity first: frozenset equality has no identity shortcut in
        # CPython, and after the reliable action fires the stored set IS
        # the object the candidate yielded, so steady-state drains skip
        # the O(members) comparison.
        if desired is not self.reliable_set and desired != self.reliable_set:
            yield (self.pid, desired)

    # ------------------------------------------------------------------
    # OUTPUT co_rfifo.send_p(set, m) - view, app, and forwarded messages
    # ------------------------------------------------------------------

    def _pre_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: WireMessage) -> bool:
        if isinstance(m, ViewMsg):
            return (
                self.view_msg_of(self.pid) != self.current_view
                and self.current_view.members <= self.reliable_set
                and frozenset(targets) == self.current_view.members - {self.pid}
                and m.view == self.current_view
            )
        if isinstance(m, AppMsg):
            log = self.peek_buffer(self.pid, self.current_view)
            return (
                self.view_msg_of(self.pid) == self.current_view
                and frozenset(targets) == self.current_view.members - {self.pid}
                and log is not None
                and log.has(self.last_sent + 1)
                and log.get(self.last_sent + 1) == m.payload
            )
        if isinstance(m, FwdMsg):
            log = self.peek_buffer(m.origin, m.view)
            return log is not None and log.has(m.index) and log.get(m.index) == m.payload
        # Message kinds introduced by child automata (e.g. SyncMsg) are
        # *new* actions in the signature extension; this layer places no
        # precondition on them.
        return True

    def _eff_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: WireMessage) -> None:
        if isinstance(m, ViewMsg):
            self.view_msg[self.pid] = self.current_view
        elif isinstance(m, AppMsg):
            self.last_sent += 1

    def _candidates_co_rfifo_send(self) -> Iterable[Tuple[ProcessId, FrozenSet[ProcessId], WireMessage]]:
        # Note: in a singleton view ``peers`` is empty, but the (no-op)
        # sends must still happen - sending is what advances ``last_sent``
        # and thereby enables self-delivery.  ``peers`` is built only on
        # the yielding paths: a quiet drain must not pay an O(members)
        # set difference just to find nothing to send.
        if self.view_msg_of(self.pid) != self.current_view:
            if self.current_view.members <= self.reliable_set:
                peers = frozenset(self.current_view.members - {self.pid})
                yield (self.pid, peers, ViewMsg(self.current_view))
            return
        log = self.peek_buffer(self.pid, self.current_view)
        if log is not None and log.has(self.last_sent + 1):
            payload = log.get(self.last_sent + 1)
            peers = frozenset(self.current_view.members - {self.pid})
            yield (
                self.pid,
                peers,
                AppMsg(payload, history_view=self.current_view, history_index=self.last_sent + 1),
            )

    # ------------------------------------------------------------------
    # INPUT co_rfifo.deliver_{q,p}(m)
    # ------------------------------------------------------------------

    def _eff_co_rfifo_deliver(self, q: ProcessId, p: ProcessId, m: WireMessage) -> None:
        if isinstance(m, ViewMsg):
            self.view_msg[q] = m.view
            self.last_rcvd[q] = 0
        elif isinstance(m, AppMsg):
            index = self.rcvd(q) + 1
            self.buffer(q, self.view_msg_of(q)).put(index, m.payload)
            self.last_rcvd[q] = index
        elif isinstance(m, FwdMsg):
            self.buffer(m.origin, m.view).put(m.index, m.payload)
