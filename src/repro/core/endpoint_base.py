"""Shared machinery of per-process GCS end-point automata.

Adds to :class:`~repro.ioa.automaton.Automaton`:

* the per-process ``accepts`` filtering (an end-point only reacts to
  actions subscripted with its own identifier);
* crash and recovery semantics of Section 8: while ``crashed`` is true,
  every locally controlled action is disabled and the effects of all
  inputs are suppressed; ``recover`` resets all state variables to their
  initial values (no stable storage) under the original identity.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.ioa import Action, ActionKind, Automaton
from repro.types import ProcessId

# Inputs whose receiver is the second parameter (sender first), per the
# paper's deliver_{p,q} convention.
_RECEIVER_SECOND = {"co_rfifo.deliver"}


class ProcessAutomaton(Automaton):
    """A per-process automaton subscripted by ``pid``."""

    SIGNATURE = {
        "crash": ActionKind.INPUT,  # (p,)
        "recover": ActionKind.INPUT,  # (p,)
    }

    def __init__(self, pid: ProcessId, name: Optional[str] = None, **kwargs: Any) -> None:
        self.pid = pid
        super().__init__(name or f"{type(self).__name__}:{pid}", **kwargs)
        self.crashed = False

    def subscript_of(self, action: Action) -> Optional[ProcessId]:
        """The process an action instance is subscripted with."""
        if not action.params:
            return None
        index = 1 if action.name in _RECEIVER_SECOND else 0
        if index >= len(action.params):
            return None
        return action.params[index]

    def accepts(self, action: Action) -> bool:
        return super().accepts(action) and self.subscript_of(action) == self.pid

    # ------------------------------------------------------------------
    # crash / recovery (Section 8)
    # ------------------------------------------------------------------

    def apply(self, action: Action) -> None:
        if action.name == "crash":
            self.crashed = True
            self.touch()  # crashing disables the enabled set
            return
        if action.name == "recover":
            if self.crashed:
                self.reset_state()
                self.crashed = False
                self.touch()
            return
        if self.crashed:
            # Effects of inputs are disabled while crashed; locally
            # controlled actions cannot be enabled (see enabled_actions),
            # so being asked to run one is a scheduler bug.
            if self.kind_of(action.name) is ActionKind.INPUT:
                return
            raise RuntimeError(f"{self.name}: locally controlled {action!r} while crashed")
        super().apply(action)

    def is_enabled(self, action: Action) -> bool:
        if self.crashed and action.name not in ("crash", "recover"):
            return False
        return super().is_enabled(action)

    def enabled_actions(self) -> List[Action]:
        if self.crashed:
            return []
        return super().enabled_actions()

    def naive_enabled_actions(self) -> List[Action]:
        if self.crashed:
            return []
        return super().naive_enabled_actions()
