"""The paper's algorithm: GCS end-points (Section 5).

The stack, built with the inheritance construct of [26]:

* :class:`~repro.core.wv_endpoint.WvRfifoEndpoint` - within-view reliable
  FIFO multicast (Figure 9);
* :class:`~repro.core.vs_endpoint.VsRfifoTsEndpoint` - adds Virtual
  Synchrony and Transitional Sets via one parallel round of
  synchronization messages (Figure 10);
* :class:`~repro.core.gcs_endpoint.GcsEndpoint` - adds Self Delivery via
  application blocking (Figure 11); this is the complete service.

:class:`~repro.core.runner.EndpointRunner` packages an endpoint automaton
as a deterministic reactive component for the simulator and the asyncio
runtime.
"""

from repro.core.endpoint_base import ProcessAutomaton
from repro.core.forwarding import (
    ForwardingStrategy,
    MinCopiesStrategy,
    NoForwarding,
    SimpleStrategy,
    strategy_by_name,
)
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import AppMsg, FwdMsg, SyncMsg, ViewMsg, WireMessage
from repro.core.runner import EndpointRunner
from repro.core.vs_endpoint import VsRfifoTsEndpoint
from repro.core.wv_endpoint import WvRfifoEndpoint

__all__ = [
    "AppMsg",
    "EndpointRunner",
    "ForwardingStrategy",
    "FwdMsg",
    "GcsEndpoint",
    "MinCopiesStrategy",
    "NoForwarding",
    "ProcessAutomaton",
    "SimpleStrategy",
    "SyncMsg",
    "ViewMsg",
    "VsRfifoTsEndpoint",
    "WireMessage",
    "WvRfifoEndpoint",
    "strategy_by_name",
]
