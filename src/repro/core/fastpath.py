"""Steady-state direct-dispatch lane for the within-view multicast loop.

Between view changes the algorithm stack is a pure FIFO pipeline: an
application ``send`` enables exactly one ``co_rfifo.send`` (the
:class:`~repro.core.messages.AppMsg` to the view peers) followed by
exactly one self-``deliver``, and an arriving ``AppMsg`` enables exactly
one ``deliver``.  Running that loop through the general engine - the
candidate enumeration and enabled-set maintenance of
:mod:`repro.ioa.automaton` - is wasted work, because in the steady state
there is no precondition ambiguity to resolve (Section 4-5 of the
paper; the same observation powers the throughput of production
virtual-synchrony stacks).

:class:`FastLane` compiles the loop to straight-line Python.  It is a
*peephole over the same state*: every mutation it performs is exactly
the effect the corresponding automaton actions would have performed, in
the same order, so the endpoint's state after a fast-lane operation is
bit-identical to what the general engine would have produced and the
safety proofs carry over unchanged.  The general engine remains the
differential oracle (``tests/core/test_fastpath_differential.py`` runs
the same seeded scenarios with the lane on and off and compares the
resulting :class:`~repro.checking.events.GcsTrace` objects).

Eligibility and drain-back
--------------------------

The lane engages only while the endpoint is provably quiescent in an
installed, stable view:

* the endpoint is a plain :class:`~repro.core.gcs_endpoint.GcsEndpoint`
  (no subclass overrides), not crashed, not in strict ownership-checking
  mode, with a stock forwarding strategy and acknowledgement GC off;
* no view change is in progress (``start_change is None``, block status
  ``UNBLOCKED``, ``mbrshp_view == current_view``);
* the endpoint's own ``view_msg`` for the current view is out and its
  reliable set covers the membership;
* the general engine reports **no enabled actions** - the catch-all that
  makes the previous conditions sufficient rather than merely hopeful.

Engagement is cached against the automaton's monotone
``state_version``.  Any input that takes the general path (a membership
notice, a sync or forwarded message, a crash, a test poking state) bumps
the version, which *is* the drain-back: the next operation revalidates
from scratch, and until the conditions hold again every input flows
through the general engine.  There is no lane-private state to flush -
the lane writes the automaton's own variables, so handing control back
is free and cannot lose messages.

The lane advances the version itself after each fast operation (through
:meth:`~repro.ioa.automaton.Automaton.touch` semantics), keeping
composition enabled-set caches honest if the general engine resumes.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Optional, Tuple

from repro._collections import MessageLog
from repro.checking.events import DeliverEvent, SendEvent
from repro.core.forwarding import MinCopiesStrategy, NoForwarding, SimpleStrategy
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import AppMsg
from repro.spec.client import BlockStatus
from repro.types import ProcessId, View

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runner import EndpointRunner

#: Strategies known to propose no forwarding while no view change is in
#: progress (their candidates are gated on the endpoint's own sync
#: message, which exists only under a ``start_change``).  An unknown,
#: user-supplied strategy disqualifies the lane: the general engine
#: serves it, slower but with its invariants enforced.
_QUIESCENT_STRATEGIES = (NoForwarding, SimpleStrategy, MinCopiesStrategy)

#: The automaton actions each fast-lane operation claims to replay, in
#: order.  Rule R6 of the static verifier (``repro.analysis.fastlane``)
#: checks the replay bodies against the union of the write-sets of these
#: actions' compiled transition chains, so fastpath drift - a lane write
#: the general engine would not perform - is a lint failure, not just a
#: differential-test failure.  Every ``try_*`` method must have an entry.
REPLAYED_ACTIONS: Dict[str, Tuple[str, ...]] = {
    "try_send": ("send", "co_rfifo.send", "deliver"),
    "try_receive": ("co_rfifo.deliver", "deliver"),
}


def fastpath_default() -> bool:
    """The process-wide default: on, unless ``REPRO_FASTPATH=0``."""
    return os.environ.get("REPRO_FASTPATH", "1") != "0"


class FastLane:
    """Direct dispatch of the steady-state send/deliver loop.

    Owned by one :class:`~repro.core.runner.EndpointRunner`; both
    ``try_send`` and ``try_receive`` return ``False`` whenever the
    current state is not (or can no longer be proven) steady, in which
    case the caller must run the operation through the general engine.
    """

    __slots__ = (
        "runner",
        "endpoint",
        "pid",
        "_version",
        "_view",
        "_peers",
        "_own_log",
        "_src_logs",
        "_last_rcvd",
        "_last_dlvrd",
    )

    def __init__(self, runner: "EndpointRunner") -> None:
        self.runner = runner
        self.endpoint = runner.endpoint
        self.pid: ProcessId = runner.pid
        # Engagement cache: valid while the endpoint's state_version
        # still equals _version.  -1 never matches, forcing an initial
        # revalidation.
        self._version = -1
        self._view: Optional[View] = None
        self._peers: FrozenSet[ProcessId] = frozenset()
        self._own_log: Optional[MessageLog] = None
        self._src_logs: Dict[ProcessId, MessageLog] = {}
        self._last_rcvd: Dict[ProcessId, int] = {}
        self._last_dlvrd: Dict[ProcessId, int] = {}

    @property
    def structural_ok(self) -> bool:
        """Constructor-fixed eligibility: endpoint shape, options, strategy."""
        ep = self.endpoint
        return (
            type(ep) is GcsEndpoint
            and not ep.strict
            and ep.ack_gc_interval is None
            and type(ep.forwarding) in _QUIESCENT_STRATEGIES
        )

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------

    def _revalidate(self) -> bool:
        """Re-prove steadiness after a general-path interlude."""
        ep = self.endpoint
        if ep.crashed or ep.start_change is not None:
            return False
        if ep.block_status is not BlockStatus.UNBLOCKED:
            return False
        view = ep.current_view
        if ep.mbrshp_view != view:
            return False
        if ep.view_msg_of(ep.pid) != view:
            return False
        if ep.reliable_set != view.members:
            return False
        # The catch-all: whatever else might be pending (a sync, an ack,
        # a forward, an undelivered backlog), the general engine knows.
        if ep.enabled_actions():
            return False
        self._view = view
        self._peers = frozenset(view.members - {ep.pid})
        self._own_log = ep.buffer(ep.pid, view)
        self._src_logs = {}
        # The dict objects themselves: the general engine only rebinds
        # them on a view install, which bumps the version and lands us
        # back here - so caching the references is sound.
        self._last_rcvd = ep.last_rcvd
        self._last_dlvrd = ep.last_dlvrd
        self._version = ep.state_version
        return True

    # ------------------------------------------------------------------
    # the two steady-state operations
    # ------------------------------------------------------------------

    def try_send(self, payload: Any) -> bool:
        """``send -> co_rfifo.send -> deliver`` as straight-line code.

        Replays, in order, the effects the general drain performs for an
        application send in the steady state: append to the own buffer
        (``_eff_send``), advance ``last_sent`` and put the ``AppMsg`` on
        the wire (``_eff_co_rfifo_send``), then self-deliver
        (``_eff_deliver``).  Quiescence guarantees ``dlvrd(p) ==
        last_sent`` on entry, so the new message is always the next (and
        only) deliverable one.
        """
        ep = self.endpoint
        if ep._state_version != self._version and not self._revalidate():
            return False
        runner = self.runner
        pid = self.pid
        runner.trace.append(SendEvent(runner._clock(), pid, payload))
        self._own_log.append(payload)
        index = ep.last_sent + 1
        ep.last_sent = index
        self._last_dlvrd[pid] = index
        self._version = ep.touch()  # keep enabled-set caches honest
        runner._send_wire(
            self._peers,
            AppMsg(payload, history_view=self._view, history_index=index),
        )
        runner.trace.append(DeliverEvent(runner._clock(), pid, pid, payload))
        if runner._on_deliver is not None:
            runner._on_deliver(pid, payload)
        return True

    def try_receive(self, src: ProcessId, message: Any) -> bool:
        """``co_rfifo.deliver -> deliver`` as straight-line code.

        Handles exactly the steady-state shape: an original ``AppMsg``
        from a view peer whose ``view_msg`` announces the current view,
        arriving in FIFO order with no backlog (``rcvd == dlvrd``).
        Everything else - view/sync/forwarded messages, holes, peers
        mid-transition - falls back to the general engine.
        """
        # Type check before revalidation: only an AppMsg can ever take
        # the lane, and during a reconfiguration the traffic is view and
        # sync messages - each of which would otherwise pay a full
        # steadiness re-proof (including the enabled_actions catch-all)
        # just to be rejected here anyway.
        if type(message) is not AppMsg:
            return False
        ep = self.endpoint
        if ep._state_version != self._version and not self._revalidate():
            return False
        if src not in self._peers:
            return False
        if ep.view_msg.get(src) != self._view:
            return False
        index = self._last_rcvd.get(src, 0) + 1
        if index != self._last_dlvrd.get(src, 0) + 1:
            return False  # backlog or hole: not the steady-state shape
        log = self._src_logs.get(src)
        if log is None:
            log = self._src_logs[src] = ep.buffer(src, self._view)
        payload = message.payload
        log.put(index, payload)
        self._last_rcvd[src] = index
        self._last_dlvrd[src] = index
        self._version = ep.touch()  # keep enabled-set caches honest
        runner = self.runner
        runner.trace.append(DeliverEvent(runner._clock(), self.pid, src, payload))
        if runner._on_deliver is not None:
            runner._on_deliver(src, payload)
        return True

    def __repr__(self) -> str:
        engaged = self.endpoint.state_version == self._version
        return f"<FastLane {self.pid} {'engaged' if engaged else 'idle'}>"


__all__ = ["FastLane", "REPLAYED_ACTIONS", "fastpath_default"]
