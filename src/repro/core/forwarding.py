"""Forwarding strategy predicates (Section 5.2.2).

When an end-point misses messages that were committed to by cuts of its
transitional set, some member that holds them must forward them.  The
paper leaves the strategy open (a ``ForwardingStrategyPredicate``) and
gives two examples, both implemented here:

* :class:`SimpleStrategy` - a member forwards every committed message a
  peer's synchronization message shows to be missing.  Multiple copies of
  the same message may be sent by different members.
* :class:`MinCopiesStrategy` - once the new membership view and the right
  synchronization messages are known, the members of the transitional set
  deterministically elect (by ``min``) a single forwarder per missing
  message from senders outside the transitional set.

A strategy exposes ``candidates(endpoint)`` - the forwarding actions it
currently enables - and ``allows(endpoint, targets, origin, view, index)``
- the predicate itself, re-checked as the action's precondition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Iterable, Optional, Tuple

from repro.types import ProcessId, View

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.vs_endpoint import VsRfifoTsEndpoint

# (targets, origin, view, index): forward msgs[origin][view][index] to targets.
ForwardCandidate = Tuple[FrozenSet[ProcessId], ProcessId, View, int]


class ForwardingStrategy:
    """Interface of a ForwardingStrategyPredicate."""

    name = "abstract"

    def candidates(self, endpoint: "VsRfifoTsEndpoint") -> Iterable[ForwardCandidate]:
        raise NotImplementedError

    def allows(
        self,
        endpoint: "VsRfifoTsEndpoint",
        targets: FrozenSet[ProcessId],
        origin: ProcessId,
        view: View,
        index: int,
    ) -> bool:
        """Default: the predicate holds iff candidates() proposes it."""
        return (frozenset(targets), origin, view, index) in set(self.candidates(endpoint))


class NoForwarding(ForwardingStrategy):
    """Forward nothing.  Useful for ablation; liveness then relies on all
    committed messages having their original sender in the transitional
    set."""

    name = "none"

    def candidates(self, endpoint: "VsRfifoTsEndpoint") -> Iterable[ForwardCandidate]:
        return ()


class SimpleStrategy(ForwardingStrategy):
    """The paper's first example strategy.

    ``p`` forwards a message ``m`` (sent by ``r`` in view ``v`` at index
    ``i``) to ``q`` when: ``p`` has committed to deliver ``m`` (its own
    cut covers ``i``); ``p`` knows of no later view of ``q`` than ``v``;
    and the latest synchronization message from ``q`` sent in view ``v``
    shows that ``q`` has not received ``m``.
    """

    name = "simple"

    def candidates(self, endpoint: "VsRfifoTsEndpoint") -> Iterable[ForwardCandidate]:
        own = endpoint.own_sync_msg()
        if own is None:
            return
        # A forward needs own.cut to commit to at least one message, so a
        # quiet reconfiguration (empty sparse cut) skips the peer scan
        # entirely, and the inner loop visits only committed origins
        # rather than every view member.
        if not own.cut:
            return
        view = own.view  # == endpoint.current_view (Invariant 6.9)
        for q, q_sync in endpoint.latest_sync_msgs_in_view(view):
            if q == endpoint.pid:
                continue
            if endpoint.view_msg_of(q).vid > view.vid:
                continue  # p knows q reached a later view; don't forward
            for origin, have in own.cut.items():
                missing_from = q_sync.cut.get(origin, 0) + 1
                for index in range(missing_from, have + 1):
                    if not endpoint.holds_message(origin, view, index):
                        continue
                    if (q, origin, view, index) in endpoint.forwarded_set:
                        continue
                    yield (frozenset({q}), origin, view, index)


class MinCopiesStrategy(ForwardingStrategy):
    """The paper's second example strategy: one forwarder per message.

    Requires the new membership view and all the relevant synchronization
    messages.  Only messages whose original sender is *not* in the
    transitional set T are forwarded (members of T will re-send their own
    messages themselves); the unique forwarder for a message is the
    minimum member of T whose cut commits to it.
    """

    name = "min_copies"

    def candidates(self, endpoint: "VsRfifoTsEndpoint") -> Iterable[ForwardCandidate]:
        snapshot = self._transition_snapshot(endpoint)
        if snapshot is None:
            return
        transitional, cuts, view = snapshot
        if endpoint.pid not in transitional:
            return
        outsiders = view.members - transitional
        # Only origins some transitional cut commits to can need a
        # forwarder; with sparse cuts this prunes the outsider scan to
        # the actually-active senders.
        committed_origins = set()
        for cut in cuts.values():
            committed_origins.update(cut)
        for origin in sorted(committed_origins & outsiders):
            committed = max((cuts[u].get(origin, 0) for u in transitional), default=0)
            for index in range(1, committed + 1):
                holders = sorted(u for u in transitional if cuts[u].get(origin, 0) >= index)
                if not holders or holders[0] != endpoint.pid:
                    continue
                needy = frozenset(
                    u
                    for u in transitional
                    if cuts[u].get(origin, 0) < index
                    and (u, origin, view, index) not in endpoint.forwarded_set
                )
                if needy and endpoint.holds_message(origin, view, index):
                    yield (needy, origin, view, index)

    @staticmethod
    def _transition_snapshot(endpoint: "VsRfifoTsEndpoint"):
        """(T, cuts of T, old view) once the new view and syncs are known."""
        change = endpoint.start_change
        new_view = endpoint.mbrshp_view
        if change is None or endpoint.pid not in new_view.members:
            return None
        if new_view.start_ids.get(endpoint.pid) != change.cid:
            return None  # the view for this change has not arrived yet
        own = endpoint.own_sync_msg()
        if own is None:
            return None
        old_view = own.view
        intersection = new_view.members & old_view.members
        syncs = {}
        for q in intersection:
            sync = endpoint.sync_msg_for(q, new_view.start_id(q))
            if sync is None:
                return None  # must wait for all potential members of T
            syncs[q] = sync
        transitional = frozenset(q for q in intersection if syncs[q].view == old_view)
        cuts = {q: syncs[q].cut for q in transitional}
        return transitional, cuts, old_view


STRATEGIES = {
    strategy.name: strategy
    for strategy in (NoForwarding(), SimpleStrategy(), MinCopiesStrategy())
}


def strategy_by_name(name: str) -> ForwardingStrategy:
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ValueError(f"unknown forwarding strategy {name!r}; "
                         f"choose from {sorted(STRATEGIES)}") from None
