"""Wire message types exchanged between GCS end-points (Section 5).

Four kinds of messages travel over CO_RFIFO channels:

* :class:`ViewMsg` - announces the sender's transition into a view;
  application messages that follow it on a channel were sent in that view.
* :class:`AppMsg` - an original application message.  It carries the ghost
  *history tags* of Section 6.1.1 (``history_view``, ``history_index``),
  which the algorithm never reads but the invariant checkers do.
* :class:`FwdMsg` - an application message forwarded on behalf of another
  end-point, tagged with its original sender, view and FIFO index.
* :class:`SyncMsg` - a synchronization message: the sender's current view
  and its delivery *cut*, tagged with the start_change identifier that
  triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.types import Cut, ProcessId, StartChangeId, View, ViewId


@dataclass(frozen=True)
class WireMessage:
    """Base class of everything sent through CO_RFIFO."""


@dataclass(frozen=True)
class ViewMsg(WireMessage):
    """``tag=view_msg``: 'subsequent messages were sent in this view'."""

    view: View

    def __reduce__(self):
        # Constructor-based pickling for all wire messages: they fill the
        # end-point buffers that strict mode fingerprints on every effect,
        # and the generic frozen-dataclass protocol is several times
        # slower.
        return (ViewMsg, (self.view,))


@dataclass(frozen=True)
class AppMsg(WireMessage):
    """``tag=app_msg``: an original application message.

    ``history_view``/``history_index`` are the history tags Hv and Hi of
    Section 6.1.1: set at ``co_rfifo.send`` time to the sender's current
    view and ``last_sent + 1``.  They exist purely so the executable
    proofs (Invariants 6.4-6.6) can reference them.
    """

    payload: Any
    history_view: Optional[View] = field(default=None, compare=False)
    history_index: Optional[int] = field(default=None, compare=False)

    def __reduce__(self):
        return (AppMsg, (self.payload, self.history_view, self.history_index))


@dataclass(frozen=True)
class FwdMsg(WireMessage):
    """``tag=fwd_msg``: ``payload`` is ``msgs[origin][view][index]``."""

    origin: ProcessId
    view: View
    index: int
    payload: Any

    def __reduce__(self):
        return (FwdMsg, (self.origin, self.view, self.index, self.payload))


@dataclass(frozen=True)
class AckMsg(WireMessage):
    """``tag=ack_msg``: cumulative delivery acknowledgements.

    ``delivered`` maps each sender of the acker's current view to the
    index of the last message the acker has delivered from it.  Once every
    view member has acknowledged an index, the prefix up to it has been
    delivered everywhere and may be garbage-collected (the
    acknowledgement-based discarding the paper's Section 5.1 prescribes
    for real implementations).
    """

    view_id: ViewId
    delivered: Cut

    def __reduce__(self):
        return (AckMsg, (self.view_id, self.delivered))


@dataclass(frozen=True)
class SyncMsg(WireMessage):
    """``tag=sync_msg``: the sender's view and cut for one start_change.

    The compact variant of Section 5.2.4 carries neither view nor cut
    (both ``None``): sent to processes outside the sender's current view,
    it means "I am not in your transitional set" - which is all such a
    recipient could ever conclude from the full message.
    """

    cid: StartChangeId
    view: Optional[View]
    cut: Optional[Cut]

    def __reduce__(self):
        return (SyncMsg, (self.cid, self.view, self.cut))

    @property
    def compact(self) -> bool:
        return self.view is None

    def estimated_size(self) -> int:
        """Rough wire size in abstract units: 1 + one per cut entry +
        view membership, for the sync-volume experiments."""
        if self.compact:
            return 1
        return 1 + len(self.cut) + len(self.view.members)
