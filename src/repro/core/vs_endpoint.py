"""Virtual synchrony + transitional sets end-point, Figure 10.

``VsRfifoTsEndpoint`` is the child of :class:`WvRfifoEndpoint` in the
inheritance construct of [26].  While no view change is in progress it
behaves exactly like its parent.  On a ``start_change(cid, set)`` it
widens its reliable set, sends everyone in ``set`` a synchronization
message tagged with the *locally unique* ``cid`` carrying its current
view and its delivery cut, and thereafter restricts application-message
delivery to the agreed cuts.  When the membership view ``v'`` arrives,
the ``v'.startId`` map identifies which synchronization messages to use,
so end-points moving together from ``v`` to ``v'`` compute the same
transitional set and the same delivery cut - without ever pre-agreeing on
a global identifier.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro._collections import frozendict
from repro.core.forwarding import ForwardingStrategy, SimpleStrategy
from repro.core.messages import AckMsg, FwdMsg, SyncMsg, WireMessage
from repro.core.wv_endpoint import WvRfifoEndpoint
from repro.ioa import ActionKind
from repro.types import Cut, ProcessId, StartChange, StartChangeId, View


class VsRfifoTsEndpoint(WvRfifoEndpoint):
    """VS_RFIFO+TS_p MODIFIES WV_RFIFO_p (Figure 10)."""

    SIGNATURE = {
        "mbrshp.start_change": ActionKind.INPUT,  # (p, cid, set) new
        "view": ActionKind.OUTPUT,  # (p, v, T) modifies wv_rfifo.view (p, v)
    }

    PARAM_PROJECTIONS = {
        # view_p(v, T) modifies wv_rfifo.view_p(v): drop T for the parent.
        "view": lambda p, v, T: (p, v),
    }

    def __init__(
        self,
        pid: ProcessId,
        *,
        forwarding: Optional[ForwardingStrategy] = None,
        gc_views: bool = False,
        compact_syncs: bool = False,
        ack_gc_interval: Optional[int] = None,
        **kwargs: Any,
    ) -> None:
        self.forwarding = forwarding or SimpleStrategy()
        self.gc_views = gc_views
        # Section 5.2.4: send the compact "I am not in your transitional
        # set" sync variant to processes outside the current view.
        self.compact_syncs = compact_syncs
        # Section 5.1's closing remark, implemented: broadcast cumulative
        # delivery acknowledgements every `ack_gc_interval` deliveries and
        # discard message prefixes acknowledged by every view member.
        # None disables (the formal algorithm never frees memory).
        self.ack_gc_interval = ack_gc_interval
        if kwargs.get("strict") and (gc_views or ack_gc_interval):
            raise ValueError(
                "garbage collection mutates parent-owned buffers and is not "
                "part of the formal construct; disable strict mode to use it"
            )
        super().__init__(pid, **kwargs)

    def _state(self) -> None:
        self.start_change: Optional[StartChange] = None
        # sync_msg[q][cid]: the (view, cut) q attached to start_change cid.
        self.sync_msg: Dict[ProcessId, Dict[StartChangeId, SyncMsg]] = {}
        # forwarded_set: (target, origin, view, index) quadruples already
        # forwarded, so the same message is never forwarded twice to the
        # same end-point.
        self.forwarded_set: Set[Tuple[ProcessId, ProcessId, View, int]] = set()
        # cids whose compact sync half (Section 5.2.4) has been sent.
        self.compact_sync_sent: Set[StartChangeId] = set()
        # acknowledgement-based GC state (ack_gc_interval feature):
        # acked[member][sender] = highest index member acknowledged.
        self.acked: Dict[ProcessId, Dict[ProcessId, int]] = {}
        self.deliveries_since_ack = 0

    # -- state helpers ------------------------------------------------------

    def sync_msg_for(self, q: ProcessId, cid: StartChangeId) -> Optional[SyncMsg]:
        return self.sync_msg.get(q, {}).get(cid)

    def own_sync_msg(self) -> Optional[SyncMsg]:
        """This end-point's sync message for the current start_change."""
        if self.start_change is None:
            return None
        return self.sync_msg_for(self.pid, self.start_change.cid)

    def latest_sync_msgs_in_view(self, view: View) -> List[Tuple[ProcessId, SyncMsg]]:
        """Per peer, the latest (highest-cid) sync message sent in ``view``."""
        result = []
        for q, by_cid in self.sync_msg.items():
            in_view = [(cid, m) for cid, m in by_cid.items() if m.view == view]
            if in_view:
                result.append((q, max(in_view)[1]))
        return result

    def holds_message(self, origin: ProcessId, view: View, index: int) -> bool:
        log = self.peek_buffer(origin, view)
        return log is not None and log.has(index)

    def local_cut(self) -> Cut:
        """The cut this end-point can commit to: its longest prefixes."""
        view = self.current_view
        bindings = {}
        for q in view.members:
            log = self.peek_buffer(q, view)
            bindings[q] = log.longest_prefix() if log is not None else 0
        return frozendict(bindings)

    def sync_cut(self) -> Cut:
        """:meth:`local_cut` without the zero entries, for the wire.

        Every consumer of a sync cut reads it through ``.get(q, 0)``, so
        dropping zeros is observationally equivalent - and it keeps the
        per-sync payload (and the Figure 10 cut agreement scan) O(active
        senders) instead of O(view members) in a thousand-member view
        with little traffic.
        """
        view = self.current_view
        members = view.members
        bindings = {}
        # Iterate the buffers, not the membership: only processes with a
        # buffered log can have a nonzero prefix, and with no traffic the
        # scan is empty regardless of the view's size.
        for q, buffers in self.msgs.items():
            if q in members:
                log = buffers.get(view)
                if log is not None:
                    prefix = log.longest_prefix()
                    if prefix:
                        bindings[q] = prefix
        return frozendict(bindings)

    def transitional_set_for(self, v: View) -> Optional[FrozenSet[ProcessId]]:
        """T for moving into ``v``, or None while sync messages are missing."""
        intersection = v.members & self.current_view.members
        members = []
        for q in intersection:
            sync = self.sync_msg_for(q, v.start_id(q))
            if sync is None:
                return None
            if sync.view == self.current_view:
                members.append(q)
        return frozenset(members)

    # ------------------------------------------------------------------
    # INPUT mbrshp.start_change_p(id, set)
    # ------------------------------------------------------------------

    def _eff_mbrshp_start_change(self, p: ProcessId, cid: StartChangeId, members: FrozenSet[ProcessId]) -> None:
        self.start_change = StartChange(cid, frozenset(members))

    # ------------------------------------------------------------------
    # OUTPUT co_rfifo.reliable_p(set) - restriction
    # ------------------------------------------------------------------

    def _desired_reliable_set(self) -> FrozenSet[ProcessId]:
        if self.start_change is None:
            return frozenset(self.current_view.members)
        return frozenset(self.current_view.members | self.start_change.members)

    def _pre_co_rfifo_reliable(self, p: ProcessId, targets: FrozenSet[ProcessId]) -> bool:
        return frozenset(targets) == self._desired_reliable_set()

    # ------------------------------------------------------------------
    # OUTPUT co_rfifo.send_p - sync messages (new) and forwarding (restricted)
    # ------------------------------------------------------------------

    def _sync_common_ready(self) -> bool:
        """Shared preconditions of both sync variants (children extend)."""
        change = self.start_change
        return change is not None and change.members <= self.reliable_set

    def _sync_send_ready(self) -> bool:
        """Non-message preconditions for sending this change's full sync."""
        change = self.start_change
        # The O(1) already-sent check runs before the O(members) subset
        # test in _sync_common_ready: after the sync is out (the steady
        # state of a drain during a reconfiguration) this is two dict hits.
        return (
            change is not None
            and self.sync_msg_for(self.pid, change.cid) is None
            and self._sync_common_ready()
        )

    def _full_sync_targets(self) -> FrozenSet[ProcessId]:
        """Recipients of the full synchronization message.

        Without the Section 5.2.4 optimization: everyone in the
        start_change set.  With it: only processes that share the current
        view (others can never include us in their transitional sets, so
        they get the compact variant instead).
        """
        change = self.start_change
        targets = change.members - {self.pid}
        if self.compact_syncs:
            targets &= self.current_view.members
        return frozenset(targets)

    def _compact_sync_targets(self) -> FrozenSet[ProcessId]:
        change = self.start_change
        return frozenset(change.members - {self.pid} - self.current_view.members)

    def _compact_sync_ready(self) -> bool:
        change = self.start_change
        return (
            self.compact_syncs
            and self._sync_common_ready()
            and change.cid not in self.compact_sync_sent
            and bool(self._compact_sync_targets())
        )

    def _pre_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: WireMessage) -> bool:
        if isinstance(m, AckMsg):
            return (
                self._ack_ready()
                and m.view_id == self.current_view.vid
                and frozenset(targets) == self.current_view.members - {self.pid}
            )
        if isinstance(m, SyncMsg) and m.compact:
            return (
                self._compact_sync_ready()
                and m.cid == self.start_change.cid
                and frozenset(targets) == self._compact_sync_targets()
            )
        if isinstance(m, SyncMsg):
            change = self.start_change
            return (
                self._sync_send_ready()
                and m.cid == change.cid
                and frozenset(targets) == self._full_sync_targets()
                and m.view == self.current_view
                and m.cut == self.sync_cut()
            )
        if isinstance(m, FwdMsg):
            key_missing = all(
                (q, m.origin, m.view, m.index) not in self.forwarded_set for q in targets
            )
            return key_missing and self.forwarding.allows(self, frozenset(targets), m.origin, m.view, m.index)
        return True  # view/app messages: the parent's preconditions apply

    def _eff_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: WireMessage) -> None:
        if isinstance(m, SyncMsg):
            if m.compact:
                self.compact_sync_sent.add(m.cid)
            else:
                self.sync_msg.setdefault(self.pid, {})[m.cid] = m
        elif isinstance(m, FwdMsg):
            for q in targets:
                self.forwarded_set.add((q, m.origin, m.view, m.index))
        elif isinstance(m, AckMsg):
            self.deliveries_since_ack = 0
            self.acked[self.pid] = dict(m.delivered)
            self._run_ack_gc()

    def _ack_ready(self) -> bool:
        return (
            self.ack_gc_interval is not None
            and self.deliveries_since_ack >= self.ack_gc_interval
            and len(self.current_view.members) > 1
        )

    def _make_ack(self) -> AckMsg:
        from repro._collections import frozendict as _frozendict

        delivered = {q: self.dlvrd(q) for q in self.current_view.members}
        return AckMsg(self.current_view.vid, _frozendict(delivered))

    def _candidates_co_rfifo_send(self) -> Iterable[Tuple[ProcessId, FrozenSet[ProcessId], WireMessage]]:
        yield from super()._candidates_co_rfifo_send()
        if self._ack_ready():
            yield (
                self.pid,
                frozenset(self.current_view.members - {self.pid}),
                self._make_ack(),
            )
        if self._sync_send_ready():
            change = self.start_change
            yield (
                self.pid,
                self._full_sync_targets(),
                SyncMsg(change.cid, self.current_view, self.sync_cut()),
            )
        if self._compact_sync_ready():
            yield (
                self.pid,
                self._compact_sync_targets(),
                SyncMsg(self.start_change.cid, None, None),
            )
        for targets, origin, view, index in self.forwarding.candidates(self):
            log = self.peek_buffer(origin, view)
            if log is not None and log.has(index):
                yield (self.pid, targets, FwdMsg(origin, view, index, log.get(index)))

    # ------------------------------------------------------------------
    # INPUT co_rfifo.deliver_{q,p} - sync messages
    # ------------------------------------------------------------------

    def _eff_co_rfifo_deliver(self, q: ProcessId, p: ProcessId, m: WireMessage) -> None:
        if isinstance(m, SyncMsg):
            self.sync_msg.setdefault(q, {})[m.cid] = m
        elif isinstance(m, AckMsg):
            if m.view_id == self.current_view.vid:
                self.acked[q] = dict(m.delivered)
                self._run_ack_gc()

    # ------------------------------------------------------------------
    # OUTPUT deliver_p(q, m) - restriction to agreed cuts
    # ------------------------------------------------------------------

    def _delivery_limit(self, q: ProcessId) -> Optional[int]:
        """Max index deliverable from ``q`` right now, or None if unbounded.

        Unbounded while no view change is in progress or before this
        end-point has committed to its own cut; bounded by the own cut
        before the membership view arrives, and by the max over the known
        transitional-set cuts afterwards (Figure 10).
        """
        change = self.start_change
        if change is None:
            return None
        own = self.sync_msg_for(self.pid, change.cid)
        if own is None:
            return None
        new_view = self.mbrshp_view
        if new_view.start_ids.get(self.pid) != change.cid:
            return own.cut.get(q, 0)
        limit = 0
        for r in new_view.members & self.current_view.members:
            sync = self.sync_msg_for(r, new_view.start_id(r))
            if sync is not None and sync.view == self.current_view:
                limit = max(limit, sync.cut.get(q, 0))
        return limit

    def _pre_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> bool:
        limit = self._delivery_limit(q)
        return limit is None or self.dlvrd(q) + 1 <= limit

    def _eff_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> None:
        if self.ack_gc_interval is not None:
            self.deliveries_since_ack += 1

    def _candidates_deliver(self) -> Iterable[Tuple[ProcessId, ProcessId, Any]]:
        for candidate in super()._candidates_deliver():
            _p, q, _m = candidate
            limit = self._delivery_limit(q)
            if limit is None or self.dlvrd(q) + 1 <= limit:
                yield candidate

    # ------------------------------------------------------------------
    # OUTPUT view_p(v, T)
    # ------------------------------------------------------------------

    def _pre_view(self, p: ProcessId, v: View, T: FrozenSet[ProcessId]) -> bool:
        change = self.start_change
        # "to prevent delivery of obsolete views"
        if change is None or v.start_ids.get(self.pid) != change.cid:
            return False
        expected = self.transitional_set_for(v)
        if expected is None or frozenset(T) != expected:
            return False
        # Agreed cut: the pointwise max over the transitional set's sync
        # cuts.  Built by iterating the (sparse) cut entries rather than
        # taking a per-member max over all cuts, so the scan is
        # O(members + nonzero entries), not O(members x cuts).
        agreed: Dict[ProcessId, int] = {}
        for r in expected:
            for q, committed in self.sync_msg_for(r, v.start_id(r)).cut.items():
                if committed > agreed.get(q, 0):
                    agreed[q] = committed
        for q in self.current_view.members:
            if self.dlvrd(q) != agreed.get(q, 0):
                return False
        return True

    def _eff_view(self, p: ProcessId, v: View, T: FrozenSet[ProcessId]) -> None:
        self.start_change = None
        self.acked = {}
        self.deliveries_since_ack = 0
        if self.gc_views:
            self._collect_garbage(v)

    def _candidates_view(self) -> Iterable[Tuple[ProcessId, View, FrozenSet[ProcessId]]]:
        v = self.mbrshp_view
        if v.vid <= self.current_view.vid:
            return
        expected = self.transitional_set_for(v)
        if expected is not None:
            yield (self.pid, v, expected)

    # ------------------------------------------------------------------
    # garbage collection (the paper's Section 5.1 closing remark)
    # ------------------------------------------------------------------

    def _run_ack_gc(self) -> None:
        """Discard message prefixes acknowledged by every view member.

        A message everyone in the view has delivered can never again be
        needed: deliveries are done, and any future cut or forwarding
        request concerns strictly later indices (cuts are at least each
        member's delivered count).
        """
        if self.ack_gc_interval is None:
            return
        view = self.current_view
        others = view.members - {self.pid}
        if not all(member in self.acked for member in others):
            return  # need a full round of acknowledgements first
        for q in view.members:
            log = self.peek_buffer(q, view)
            if log is None:
                continue
            floor = min(
                [self.dlvrd(q)] + [self.acked[m].get(q, 0) for m in others]
            )
            log.truncate_through(floor)

    def buffered_messages(self) -> int:
        """Messages currently retained across all buffers (a memory metric)."""
        return sum(
            log.retained()
            for buffers in self.msgs.values()
            for log in buffers.values()
        )

    def _collect_garbage(self, new_view: View) -> None:  # repro: allow[R2.parent-write]
        """Discard buffers, syncs and forwarding records of finished views.

        The abstract algorithm never frees memory; any real implementation
        must.  Safe once a view is delivered: older views' messages can no
        longer be delivered or forwarded by this end-point.  Deliberate
        exception to the ownership rule of [26] (pruning the parent's
        ``msgs`` is a write to ancestor state), hence the allow above.
        """
        for q in list(self.msgs):
            buffers = self.msgs[q]
            for view in list(buffers):
                if view != new_view:
                    del buffers[view]
            if not buffers:
                del self.msgs[q]
        for q in list(self.sync_msg):
            watermark = new_view.start_ids.get(q)
            if watermark is None:
                continue
            by_cid = self.sync_msg[q]
            for cid in list(by_cid):
                if cid <= watermark:
                    del by_cid[cid]
            if not by_cid:
                del self.sync_msg[q]
        self.forwarded_set = {
            entry for entry in self.forwarded_set if entry[2] == new_view
        }
        self.compact_sync_sent = {
            cid for cid in self.compact_sync_sent
            if cid > new_view.start_ids.get(self.pid, -1)
        }
