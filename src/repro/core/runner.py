"""Reactive driver for a GCS end-point automaton.

The formal automata of :mod:`repro.core` are nondeterministic machines;
deployments (the discrete-event simulator, the asyncio runtime) need a
deterministic, event-driven component.  :class:`EndpointRunner` closes
the gap: environment inputs are injected through its methods, after which
it *drains* the endpoint - repeatedly executing enabled locally
controlled actions in a fixed priority order until quiescence - and
routes each output action to the appropriate callback.

Because the runner only ever executes enabled actions of the automaton,
every behaviour it produces is a behaviour of the formal algorithm; the
safety proofs carry over verbatim.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, Optional, Tuple

from repro.checking.events import (
    BlockEvent,
    BlockOkEvent,
    CrashEvent,
    DeliverEvent,
    GcsTrace,
    MbrshpStartChangeEvent,
    MbrshpViewEvent,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.core.fastpath import FastLane, fastpath_default
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import WireMessage
from repro.errors import ClientMisuseError, CrashedError
from repro.ioa import Action
from repro.spec.client import BlockStatus
from repro.types import ProcessId, StartChangeId, View

# Drain priority: smaller runs first.  Reliable-set updates unlock sync
# sends; deliveries must reach the agreed cut before the view can go out.
# The default when an endpoint class declares no ORDERING of its own;
# WvRfifoEndpoint's ORDERING (which the whole stack inherits and the R5
# interference lint checks against) states the same barrier.
_PRIORITY = {
    "co_rfifo.reliable": 0,
    "block": 1,
    "co_rfifo.send": 2,
    "deliver": 3,
    "view": 4,
}


def _priority_map(endpoint: GcsEndpoint) -> dict:
    """The drain barrier: the endpoint's declared ORDERING, else _PRIORITY."""
    ordering = getattr(type(endpoint), "ORDERING", ())
    if ordering:
        return {name: rank for rank, name in enumerate(ordering)}
    return _PRIORITY


class EndpointRunner:
    """Drives one :class:`~repro.core.gcs_endpoint.GcsEndpoint` reactively."""

    def __init__(
        self,
        endpoint: GcsEndpoint,
        *,
        send_wire: Callable[[FrozenSet[ProcessId], WireMessage], None],
        set_reliable: Callable[[FrozenSet[ProcessId]], None],
        on_deliver: Optional[Callable[[ProcessId, Any], None]] = None,
        on_view: Optional[Callable[[View, FrozenSet[ProcessId]], None]] = None,
        on_block: Optional[Callable[[], None]] = None,
        auto_block_ok: bool = True,
        clock: Callable[[], float] = lambda: 0.0,
        trace: Optional[GcsTrace] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        self.endpoint = endpoint
        self.pid = endpoint.pid
        self._send_wire = send_wire
        self._set_reliable = set_reliable
        self._on_deliver = on_deliver
        self._on_view = on_view
        self._on_block = on_block
        # Overlay seams (repro.scale): a wire interceptor sees every
        # outbound co_rfifo.send before the substrate does and may consume
        # it (return True); a receive interceptor likewise sees every
        # inbound wire message.  They sit on the runner - not on any one
        # substrate's node - so the same overlay installs over the
        # simulator, the asyncio hub, and TCP unchanged.
        self.wire_interceptor: Optional[
            Callable[[FrozenSet[ProcessId], WireMessage], bool]
        ] = None
        self.receive_interceptor: Optional[Callable[[ProcessId, WireMessage], bool]] = None
        # When True the runner plays a trivially compliant client: it
        # acknowledges every block request immediately.
        self.auto_block_ok = auto_block_ok
        self._clock = clock
        self.trace = trace if trace is not None else GcsTrace()
        self._draining = False
        # The steady-state direct-dispatch lane (repro.core.fastpath):
        # None when disabled (fastpath=False, $REPRO_FASTPATH=0) or when
        # the endpoint's shape disqualifies it (subclass, strict mode,
        # ack GC, custom forwarding) - then every input takes the
        # general drain below, which remains the differential oracle.
        if fastpath is None:
            fastpath = fastpath_default()
        lane = FastLane(self) if fastpath else None
        self.fast_lane = lane if lane is not None and lane.structural_ok else None
        priorities = _priority_map(endpoint)
        self._priority_key = lambda action: priorities.get(action.name, 9)

    # ------------------------------------------------------------------
    # environment inputs
    # ------------------------------------------------------------------

    def app_send(self, payload: Any) -> None:
        """The application multicasts ``payload`` to the current view."""
        if self.endpoint.crashed:
            raise CrashedError(f"{self.pid}: end-point is crashed")
        if self.endpoint.block_status is BlockStatus.BLOCKED:
            raise ClientMisuseError(
                f"{self.pid}: application sent while blocked (Figure 12 contract)"
            )
        lane = self.fast_lane
        if lane is not None and lane.try_send(payload):
            return
        self.trace.append(SendEvent(self._clock(), self.pid, payload))
        self.endpoint.apply(Action("send", (self.pid, payload)))
        self.drain()

    def block_ok(self) -> None:
        """The application acknowledges the outstanding block request."""
        self.trace.append(BlockOkEvent(self._clock(), self.pid))
        self.endpoint.apply(Action("block_ok", (self.pid,)))
        self.drain()

    def receive(self, sender: ProcessId, message: WireMessage) -> None:
        """A wire message arrived from ``sender`` via CO_RFIFO."""
        interceptor = self.receive_interceptor
        if interceptor is not None and interceptor(sender, message):
            return
        lane = self.fast_lane
        if lane is not None and lane.try_receive(sender, message):
            return
        self.endpoint.apply(Action("co_rfifo.deliver", (sender, self.pid, message)))
        self.drain()

    def receive_batch(self, entries: Iterable[Tuple[ProcessId, WireMessage]]) -> None:
        """Apply a run of CO_RFIFO deliveries, then drain once.

        The amortised inbound path for aggregated traffic (the two-tier
        overlay's sync batches): applying all entries before draining
        makes a reconfiguration's sync phase O(entries) endpoint work
        instead of one full drain per entry.  Entries bypass the receive
        interceptor - the overlay itself is the caller.
        """
        apply = self.endpoint.apply
        pid = self.pid
        for sender, message in entries:
            apply(Action("co_rfifo.deliver", (sender, pid, message)))
        self.drain()

    def membership_start_change(self, cid: StartChangeId, members: Iterable[ProcessId]) -> None:
        members = frozenset(members)
        self.trace.append(MbrshpStartChangeEvent(self._clock(), self.pid, cid, members))
        self.endpoint.apply(Action("mbrshp.start_change", (self.pid, cid, members)))
        self.drain()

    def membership_view(self, view: View) -> None:
        self.trace.append(MbrshpViewEvent(self._clock(), self.pid, view))
        self.endpoint.apply(Action("mbrshp.view", (self.pid, view)))
        self.drain()

    def crash(self) -> None:
        self.trace.append(CrashEvent(self._clock(), self.pid))
        self.endpoint.apply(Action("crash", (self.pid,)))

    def recover(self) -> None:
        self.endpoint.apply(Action("recover", (self.pid,)))
        self.trace.append(RecoverEvent(self._clock(), self.pid))
        self.drain()

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------

    def drain(self) -> int:
        """Run enabled locally controlled actions to quiescence.

        Returns the number of actions executed.  Reentrant calls (an
        output callback injecting a new input) fold into the outer drain.
        """
        if self._draining:
            return 0
        self._draining = True
        executed = 0
        try:
            while True:
                batch = self.endpoint.enabled_actions()
                if not batch:
                    break
                if len(batch) > 1:
                    batch.sort(key=self._priority_key)
                progressed = False
                for action in batch:
                    if not self.endpoint.is_enabled(action):
                        continue  # an earlier action of this batch disabled it
                    self.endpoint.apply(action)
                    self._route(action)
                    progressed = True
                    executed += 1
                if not progressed:
                    break
        finally:
            self._draining = False
        return executed

    def _route(self, action: Action) -> None:
        name = action.name
        now = self._clock()
        if name == "co_rfifo.send":
            _p, targets, message = action.params
            targets = frozenset(targets)
            interceptor = self.wire_interceptor
            if interceptor is not None and interceptor(targets, message):
                return
            self._send_wire(targets, message)
        elif name == "co_rfifo.reliable":
            _p, targets = action.params
            self._set_reliable(frozenset(targets))
        elif name == "deliver":
            _p, sender, payload = action.params
            self.trace.append(DeliverEvent(now, self.pid, sender, payload))
            if self._on_deliver is not None:
                self._on_deliver(sender, payload)
        elif name == "view":
            _p, view, transitional = action.params
            self.trace.append(ViewEvent(now, self.pid, view, frozenset(transitional)))
            if self._on_view is not None:
                self._on_view(view, frozenset(transitional))
        elif name == "block":
            self.trace.append(BlockEvent(now, self.pid))
            if self._on_block is not None:
                self._on_block()
            if self.auto_block_ok:
                # Immediate compliant client: acknowledge right away.  We
                # cannot recurse into drain() here (we are inside one); the
                # outer loop will pick up whatever the block_ok enables.
                self.trace.append(BlockOkEvent(now, self.pid))
                self.endpoint.apply(Action("block_ok", (self.pid,)))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def current_view(self) -> View:
        return self.endpoint.current_view

    @property
    def blocked(self) -> bool:
        return self.endpoint.block_status is BlockStatus.BLOCKED

    def __repr__(self) -> str:
        return f"<EndpointRunner {self.pid} view={self.endpoint.current_view.vid!r}>"
