"""The complete GCS end-point: adding Self Delivery, Figure 11.

``GcsEndpoint`` is the child of :class:`VsRfifoTsEndpoint` that realises
the paper's full service, GCS_p = VS_RFIFO+TS+SD_p.  To deliver all of
the application's own messages before each view change - in a live way -
the end-point must *block* the application: after the first
``start_change`` in a view it issues ``block`` and waits for ``block_ok``
before sending its synchronization message.  The cut it then sends
commits to every message the (now silent) application sent in the current
view, so Self Delivery follows from Virtual Synchrony.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Tuple

from repro.core.messages import SyncMsg, WireMessage
from repro.core.vs_endpoint import VsRfifoTsEndpoint
from repro.ioa import ActionKind
from repro.spec.client import BlockStatus
from repro.types import ProcessId, View


class GcsEndpoint(VsRfifoTsEndpoint):
    """GCS_p = VS_RFIFO+TS+SD_p MODIFIES VS_RFIFO+TS_p (Figure 11)."""

    SIGNATURE = {
        "block_ok": ActionKind.INPUT,  # (p,) new
        "block": ActionKind.OUTPUT,  # (p,) new
        "view": ActionKind.OUTPUT,  # modified (same parameters)
    }

    def _state(self) -> None:
        self.block_status = BlockStatus.UNBLOCKED

    # ------------------------------------------------------------------
    # OUTPUT block_p()
    # ------------------------------------------------------------------

    def _pre_block(self, p: ProcessId) -> bool:
        return self.start_change is not None and self.block_status is BlockStatus.UNBLOCKED

    def _eff_block(self, p: ProcessId) -> None:
        self.block_status = BlockStatus.REQUESTED

    def _candidates_block(self) -> Iterable[Tuple[ProcessId]]:
        if self.start_change is not None and self.block_status is BlockStatus.UNBLOCKED:
            yield (self.pid,)

    # ------------------------------------------------------------------
    # INPUT block_ok_p()
    # ------------------------------------------------------------------

    def _eff_block_ok(self, p: ProcessId) -> None:
        self.block_status = BlockStatus.BLOCKED

    # ------------------------------------------------------------------
    # OUTPUT co_rfifo.send_p - sync messages wait for the block
    # ------------------------------------------------------------------

    def _sync_common_ready(self) -> bool:
        # Both sync variants wait for the application to acknowledge the
        # block; the compact variant carries no cut but still marks the
        # point after which this end-point sends nothing new in the view.
        return super()._sync_common_ready() and self.block_status is BlockStatus.BLOCKED

    def _pre_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: WireMessage) -> bool:
        if isinstance(m, SyncMsg):
            return self.block_status is BlockStatus.BLOCKED
        return True

    # ------------------------------------------------------------------
    # OUTPUT view_p(v, T) - unblock the application
    # ------------------------------------------------------------------

    def _eff_view(self, p: ProcessId, v: View, T: FrozenSet[ProcessId]) -> None:
        self.block_status = BlockStatus.UNBLOCKED
