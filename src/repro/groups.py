"""Multiple multicast groups over shared processes (paper Section 1).

The paper restricts its presentation to a single group "for simplicity's
sake" but motivates the client-server architecture with scalability "in
the number of groups": membership servers track many groups, while a
client process runs a GCS end-point *per group it joins* over one shared
transport.  This module realises that: a
:class:`MultiGroupProcess` hosts one end-point automaton per joined
group, wire messages travel in :class:`GroupEnvelope` wrappers, and each
group has its own membership management - so reconfiguring one group
never touches the others (experiment E13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.checking.events import GcsTrace
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import WireMessage
from repro.core.runner import EndpointRunner
from repro.membership.oracle import OracleMembership
from repro.net.latency import LatencyModel
from repro.net.network import SimNetwork
from repro.net.simclock import EventScheduler
from repro.net.transport import SimTransport
from repro.types import ProcessId, View

GroupName = str


@dataclass(frozen=True)
class GroupEnvelope:
    """A group-tagged wire message on the shared transport."""

    group: GroupName
    message: WireMessage


class MultiGroupProcess:
    """One client process participating in any number of groups."""

    def __init__(self, pid: ProcessId, world: "MultiGroupWorld") -> None:
        self.pid = pid
        self.world = world
        self.transport = SimTransport(pid, world.network, self._on_wire)
        self._runners: Dict[GroupName, EndpointRunner] = {}
        self._reliable: Dict[GroupName, FrozenSet[ProcessId]] = {}
        # observable per group
        self.delivered: Dict[GroupName, List[Tuple[ProcessId, Any]]] = {}
        self.views: Dict[GroupName, List[Tuple[View, FrozenSet[ProcessId]]]] = {}

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------

    def groups(self) -> List[GroupName]:
        return sorted(self._runners)

    def send(self, group: GroupName, payload: Any) -> None:
        """Multicast ``payload`` to the current view of ``group``."""
        self._runners[group].app_send(payload)

    def current_view(self, group: GroupName) -> View:
        return self._runners[group].endpoint.current_view

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _runner_for(self, group: GroupName) -> EndpointRunner:
        runner = self._runners.get(group)
        if runner is not None:
            return runner
        endpoint = GcsEndpoint(self.pid, gc_views=True)
        self.delivered[group] = []
        self.views[group] = []
        runner = EndpointRunner(
            endpoint,
            send_wire=lambda targets, m, g=group: self.transport.send(
                targets, GroupEnvelope(g, m)
            ),
            set_reliable=lambda targets, g=group: self._set_reliable(g, targets),
            on_deliver=lambda sender, payload, g=group: self.delivered[g].append(
                (sender, payload)
            ),
            on_view=lambda view, T, g=group: self.views[g].append((view, T)),
            auto_block_ok=True,
            clock=lambda: self.world.clock.now,
            trace=self.world.trace,
        )
        self._runners[group] = runner
        return runner

    def _set_reliable(self, group: GroupName, targets: Iterable[ProcessId]) -> None:
        # One transport serves all groups: keep the union reliable.  Being
        # more reliable than one group asks is the safe direction of the
        # CO_RFIFO contract.
        self._reliable[group] = frozenset(targets)
        union: Set[ProcessId] = set()
        for targets_of_group in self._reliable.values():
            union |= targets_of_group
        self.transport.set_reliable(union)

    def _on_wire(self, src: ProcessId, message: Any) -> None:
        if not isinstance(message, GroupEnvelope):
            return
        runner = self._runners.get(message.group)
        if runner is not None:
            runner.receive(src, message.message)

    # membership notice entry points, called by the world's per-group oracle
    def _membership_start_change(self, group: GroupName, cid: int, members) -> None:
        self._runner_for(group).membership_start_change(cid, members)

    def _membership_view(self, group: GroupName, view: View) -> None:
        self._runner_for(group).membership_view(view)


class MultiGroupWorld:
    """A simulated deployment hosting many groups over shared processes."""

    def __init__(
        self,
        *,
        latency: Optional[LatencyModel] = None,
        round_duration: float = 1.0,
    ) -> None:
        self.clock = EventScheduler()
        self.network = SimNetwork(self.clock, latency)
        self.trace = GcsTrace()
        self.round_duration = round_duration
        self.processes: Dict[ProcessId, MultiGroupProcess] = {}
        self._oracles: Dict[GroupName, OracleMembership] = {}
        self._members: Dict[GroupName, Set[ProcessId]] = {}

    # ------------------------------------------------------------------
    # construction and membership
    # ------------------------------------------------------------------

    def add_process(self, pid: ProcessId) -> MultiGroupProcess:
        if pid in self.processes:
            raise ValueError(f"duplicate process {pid!r}")
        process = MultiGroupProcess(pid, self)
        self.processes[pid] = process
        return process

    def _oracle_for(self, group: GroupName) -> OracleMembership:
        oracle = self._oracles.get(group)
        if oracle is None:
            oracle = OracleMembership(self.clock, round_duration=self.round_duration)
            self._oracles[group] = oracle
            self._members[group] = set()
        return oracle

    def join(self, pid: ProcessId, group: GroupName) -> None:
        """Add ``pid`` to ``group`` and reconfigure that group only."""
        oracle = self._oracle_for(group)
        process = self.processes[pid]
        process._runner_for(group)
        if pid not in {p for p in self._members[group]}:
            oracle.attach_client(
                pid,
                on_start_change=lambda cid, members, g=group, pr=process:
                    pr._membership_start_change(g, cid, members),
                on_view=lambda view, g=group, pr=process:
                    pr._membership_view(g, view),
            )
        self._members[group].add(pid)
        oracle.reconfigure([sorted(self._members[group])])

    def leave(self, pid: ProcessId, group: GroupName) -> None:
        """Remove ``pid`` from ``group`` and reconfigure that group only."""
        members = self._members.get(group, set())
        members.discard(pid)
        if members:
            self._oracles[group].reconfigure([sorted(members)])

    def members(self, group: GroupName) -> FrozenSet[ProcessId]:
        return frozenset(self._members.get(group, set()))

    def group_view(self, group: GroupName) -> Optional[View]:
        oracle = self._oracles.get(group)
        if oracle is None or not oracle.views_formed:
            return None
        return oracle.views_formed[-1]

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> int:
        return self.clock.run(max_events)

    def settled(self, group: GroupName) -> bool:
        view = self.group_view(group)
        if view is None:
            return False
        return all(
            self.processes[pid].current_view(group) == view for pid in view.members
        )
