"""Length-prefixed TCP transport for cross-process deployments.

``TcpTransport`` is the socket *driver* over the unified
:class:`~repro.links.LinkCore`: it gives a GCS node a real network face
- it listens on a local endpoint, opens connections to peers lazily,
and frames pickled wire messages with a 4-byte big-endian length prefix
- while all link semantics (the partition/reachability matrix behind
:meth:`restrict`, fault application, receiver-side deduplication,
message counters) live in the core.  TCP supplies the FIFO, gap-free
delivery CO_RFIFO requires per connection; a broken connection
corresponds to CO_RFIFO losing a suffix, after which the membership
service is expected to reconfigure - the same assumption the paper
makes of its datagram substrate [36].

A cluster passes one shared ``core`` to every transport, so a single
partition matrix (and a single counter set) covers the whole
deployment; a standalone transport creates its own.

Security note: frames are deserialised with :mod:`pickle`, so this
transport must only be used among mutually trusted processes (it is meant
for the examples and tests of this reproduction, not a hostile WAN).
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.chaos.faults import FaultInjector
from repro.errors import TransportError
from repro.links import BatchAccumulator, LinkCore, MessageBatch
from repro.types import ProcessId

Handler = Callable[[ProcessId, Any], None]

_LENGTH = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024


def encode_frame(pid: ProcessId, message: Any) -> bytes:
    body = pickle.dumps((pid, message), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > _MAX_FRAME:
        raise TransportError(f"frame of {len(body)} bytes exceeds limit")
    return _LENGTH.pack(len(body)) + body


def encode_batch(pid: ProcessId, copies: Iterable[Any]) -> bytes:
    """Frame a run of wire copies as one length-prefixed pickle.

    A batch is one frame - one ``pickle.dumps``, one socket write - and
    therefore atomic on the wire: the receiver either reads the whole
    run (and unpacks it through
    :meth:`~repro.links.LinkCore.inbound_batch`) or none of it.  A
    single-copy run degenerates to the plain :func:`encode_frame`
    format, so mixed traffic needs no protocol negotiation.
    """
    copies = tuple(copies)
    if len(copies) == 1:
        return encode_frame(pid, copies[0])
    return encode_frame(pid, MessageBatch(copies))


async def read_frame(reader: asyncio.StreamReader) -> Tuple[ProcessId, Any]:
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds limit")
    body = await reader.readexactly(length)
    return pickle.loads(body)


class TcpTransport:
    """One process's TCP endpoint: listener plus lazy outbound connections."""

    def __init__(
        self,
        pid: ProcessId,
        handler: Handler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Optional[FaultInjector] = None,
        core: Optional[LinkCore] = None,
    ) -> None:
        self.pid = pid
        self.handler = handler
        self.host = host
        self.port = port
        self.core = core if core is not None else LinkCore(faults=faults)
        self.core.ensure(pid)
        self.peers: Dict[ProcessId, Tuple[str, int]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Dict[ProcessId, asyncio.StreamWriter] = {}
        self._reader_tasks: list = []
        self._closed = False

    @property
    def faults(self) -> Optional[FaultInjector]:
        return self.core.faults

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._accept, host=self.host, port=self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    def set_peers(self, peers: Dict[ProcessId, Tuple[str, int]]) -> None:
        """Address book: where each peer process listens."""
        self.peers = dict(peers)

    def restrict(self, allowed: Optional[Iterable[ProcessId]]) -> None:
        """Limit traffic to ``allowed`` peers (``None`` lifts the limit).

        The per-endpoint face of the core's partition matrix, used to
        emulate a network partition on loopback: outgoing frames to, and
        incoming frames from, processes outside the set are dropped,
        mirroring the simulator's drop-across-the-cut semantics.
        """
        self.core.restrict(self.pid, allowed)

    async def close(self) -> None:
        self._closed = True
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for task in self._reader_tasks:
            task.cancel()
        await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        self._reader_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    async def send(self, targets: Iterable[ProcessId], message: Any) -> None:
        await self.send_many(targets, (message,))

    async def send_many(self, targets: Iterable[ProcessId], messages: Iterable[Any]) -> None:
        """FIFO-multicast a run of messages, batch-framed per destination.

        Every message runs through the core's fault pipeline
        individually (drops, duplicates, and counters stay per-message),
        but consecutive zero-delay wire copies towards one destination
        share one :func:`encode_batch` frame: one pickle, one syscall,
        whatever the run length.
        """
        messages = list(messages)
        if not messages:
            return
        # Sorted fan-out: hash-order frozenset iteration must not decide
        # same-instant delivery order (traces replay byte-for-byte).
        for dst in sorted(targets):
            # Check the matrix before dialling: a partition cut must not
            # leak real connections across the emulated split.
            if dst == self.pid or not self.core.connected(self.pid, dst):
                continue
            writer = await self._writer_to(dst)
            if writer is None:
                continue  # unreachable: a suffix is lost, as CO_RFIFO allows
            batch = BatchAccumulator(self.core, self.pid)
            for message in messages:
                batch.add(dst, message)
            try:
                for wire, extra in batch.flush(dst):
                    if extra:
                        # Loss penalty / jitter: hold the frame back.  TCP's
                        # own FIFO keeps the per-connection order intact.
                        await asyncio.sleep(extra)
                    if isinstance(wire, MessageBatch):
                        writer.write(encode_batch(self.pid, wire.copies))
                    else:
                        writer.write(encode_frame(self.pid, wire))
                await writer.drain()
            except (ConnectionError, OSError):
                self._drop_writer(dst)

    async def _writer_to(self, dst: ProcessId) -> Optional[asyncio.StreamWriter]:
        writer = self._writers.get(dst)
        if writer is not None and not writer.is_closing():
            return writer
        address = self.peers.get(dst)
        if address is None:
            return None
        try:
            reader, writer = await asyncio.open_connection(*address)
        except (ConnectionError, OSError):
            return None
        self._writers[dst] = writer
        return writer

    def _drop_writer(self, dst: ProcessId) -> None:
        writer = self._writers.pop(dst, None)
        if writer is not None:
            writer.close()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.append(task)
        try:
            while not self._closed:
                src, wire = await read_frame(reader)
                # The core drops frames that crossed a partition cut
                # (kernel buffers can hold them past the split) and
                # deduplicates wire copies.  A batched frame unpacks
                # through the core too - per-message accounting, atomic
                # topology check for the whole batch.
                if isinstance(wire, MessageBatch):
                    for payload in self.core.inbound_batch(
                        src, self.pid, wire.copies, check_topology=True
                    ):
                        self.handler(src, payload)
                    continue
                payload = self.core.inbound(src, self.pid, wire, check_topology=True)
                if payload is None:
                    continue
                self.handler(src, payload)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer went away: CO_RFIFO may lose the suffix
        except asyncio.CancelledError:
            pass  # shutdown cancels pending reads; nothing to report
        finally:
            writer.close()
