"""Convenience cluster for asyncio deployments.

``AsyncCluster`` bundles an :class:`~repro.runtime.transport.AsyncHub`,
an in-process membership coordinator (the Figure 2 discipline with fresh
identifiers and startId maps), and node management - everything the
examples and quickstart need to demonstrate the service end to end.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from repro._collections import frozendict
from repro.checking.events import GcsTrace
from repro.core.forwarding import ForwardingStrategy
from repro.runtime.node import AsyncGcsNode
from repro.runtime.transport import AsyncHub
from repro.types import ProcessId, View, ViewId


class AsyncCluster:
    """An in-process group of GCS nodes with managed membership."""

    def __init__(
        self,
        *,
        delay: float = 0.0,
        forwarding: Optional[ForwardingStrategy] = None,
        record_trace: bool = False,
    ) -> None:
        self.hub = AsyncHub(delay=delay)
        self.nodes: Dict[ProcessId, AsyncGcsNode] = {}
        self.trace: Optional[GcsTrace] = GcsTrace() if record_trace else None
        self._forwarding = forwarding
        self._cid = itertools.count(start=1)
        self._counter = itertools.count(start=1)
        self.views_formed: List[View] = []

    # ------------------------------------------------------------------
    # topology management
    # ------------------------------------------------------------------

    def add_node(self, pid: ProcessId) -> AsyncGcsNode:
        node = AsyncGcsNode(
            pid, self.hub, forwarding=self._forwarding, trace=self.trace
        )
        self.nodes[pid] = node
        return node

    def add_nodes(self, pids: Iterable[ProcessId]) -> List[AsyncGcsNode]:
        return [self.add_node(pid) for pid in pids]

    async def start(self) -> View:
        """Form the initial view containing every registered node."""
        return await self.reconfigure(list(self.nodes))

    async def reconfigure(self, members: Iterable[ProcessId]) -> View:
        """Run a membership change for ``members`` and wait for delivery.

        Issues start_changes, then the view (with the startId map read off
        the fresh identifiers), then waits until every member's end-point
        has installed it.
        """
        member_set = frozenset(members)
        cids = {pid: next(self._cid) for pid in sorted(member_set)}
        for pid, cid in cids.items():
            self.nodes[pid].membership_start_change(cid, member_set)
        await asyncio.sleep(0)
        view = View(ViewId(next(self._counter)), member_set, frozendict(cids))
        self.views_formed.append(view)
        for pid in sorted(member_set):
            self.nodes[pid].membership_view(view)
        await self.await_view(view)
        return view

    async def await_view(self, view: View, timeout: float = 10.0) -> None:
        """Wait until every member of ``view`` has installed it."""

        async def settled() -> None:
            while not all(
                self.nodes[pid].current_view == view for pid in view.members
            ):
                await asyncio.sleep(0.002)

        await asyncio.wait_for(settled(), timeout)

    async def quiesce(self) -> None:
        await self.hub.quiesce()

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    async def partition(self, groups: Iterable[Iterable[ProcessId]]) -> List[View]:
        """Split the hub and reconfigure one view per group."""
        groups = [list(group) for group in groups]
        self.hub.partition(groups)
        views = []
        for group in groups:
            views.append(await self.reconfigure(group))
        return views

    async def heal(self) -> View:
        """Reconnect everyone and reconfigure the full membership."""
        self.hub.heal()
        return await self.reconfigure(list(self.nodes))

    async def close(self) -> None:
        await self.hub.close()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def node(self, pid: ProcessId) -> AsyncGcsNode:
        return self.nodes[pid]

    async def __aenter__(self) -> "AsyncCluster":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()
