"""Convenience cluster for asyncio deployments.

``AsyncCluster`` bundles an :class:`~repro.runtime.transport.AsyncHub`,
a :class:`~repro.membership.tier.MembershipTier` of real membership
servers (the same one-round client-server protocol the simulator runs -
see :mod:`repro.membership.server`), and node management.  Membership
notices travel over the hub like any other traffic, so partitions cut
clients off from their servers exactly as a WAN partition would.

All settling is event-driven: view installations wake the waiters, and a
stuck protocol raises :class:`~repro.errors.SettleTimeoutError` instead
of hanging.  Every node records into one shared :class:`GcsTrace`, so
``repro.checking`` can audit any run post-hoc.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.chaos.faults import FaultInjector
from repro.checking.events import GcsTrace
from repro.core.forwarding import ForwardingStrategy
from repro.membership.tier import MembershipTier
from repro.runtime.node import AsyncGcsNode
from repro.runtime.settle import await_settled, describe_views
from repro.runtime.settle import settle_timeout as env_settle_timeout
from repro.runtime.transport import AsyncHub
from repro.types import VID_ZERO, ProcessId, View


class HubTierLink:
    """Hosts membership servers on an :class:`AsyncHub`.

    Servers are hub processes like any client: ``transmit`` rides
    ``hub.send``, which admits every message through the shared
    :class:`~repro.links.LinkCore` (``outbound`` on entry,
    ``inbound_batch`` in the pumps) - tier traffic sees the same
    partition matrix, fault pipeline, dedup and counters as data.
    """

    def __init__(self, hub: AsyncHub) -> None:
        self.hub = hub

    async def attach(self, sid: ProcessId, handler: Callable[[ProcessId, Any], None]) -> None:
        self.attach_sync(sid, handler)

    def attach_sync(self, sid: ProcessId, handler: Callable[[ProcessId, Any], None]) -> None:
        # Hub registration needs no awaiting, so the tier may grow its
        # own capacity mid-plan (MembershipTier._grow_sync).
        self.hub.register(sid, handler)

    def transmit(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        self.hub.send(src, [dst], message)


class AsyncCluster:
    """An in-process group of GCS nodes with server-based membership."""

    def __init__(
        self,
        *,
        delay: float = 0.0,
        forwarding: Optional[ForwardingStrategy] = None,
        record_trace: bool = True,
        servers: int = 1,
        settle_timeout: Optional[float] = None,
        faults: Optional[FaultInjector] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        del record_trace  # accepted for compatibility; tracing is unconditional
        self.hub = AsyncHub(delay=delay, faults=faults)
        self.nodes: Dict[ProcessId, AsyncGcsNode] = {}
        self.trace: GcsTrace = GcsTrace()
        self._forwarding = forwarding
        self._fastpath = fastpath
        self._settle_timeout = (
            env_settle_timeout(10.0) if settle_timeout is None else settle_timeout
        )
        self.tier = MembershipTier(
            HubTierLink(self.hub),
            servers=servers,
            links=self.hub.core,
            trace=self.trace,
            clock=time.monotonic,
        )
        # Set whenever any node installs a view; wakes settling waiters.
        self._progress = asyncio.Event()

    @property
    def views_formed(self) -> List[View]:
        return self.tier.views_formed

    @property
    def links(self):
        """The hub's unified :class:`~repro.links.LinkCore`."""
        return self.hub.core

    def totals(self) -> Dict[str, int]:
        """Per-kind wire-message counters (uniform across substrates)."""
        return self.hub.core.totals()

    def reset_counters(self) -> None:
        self.hub.core.reset_counters()

    # ------------------------------------------------------------------
    # topology management
    # ------------------------------------------------------------------

    def add_node(self, pid: ProcessId) -> AsyncGcsNode:
        node = AsyncGcsNode(
            pid,
            self.hub,
            forwarding=self._forwarding,
            trace=self.trace,
            on_view_installed=self._view_installed,
            fastpath=self._fastpath,
        )
        self.nodes[pid] = node
        self.tier.add_client(pid)
        return node

    def add_nodes(self, pids: Iterable[ProcessId]) -> List[AsyncGcsNode]:
        return [self.add_node(pid) for pid in pids]

    def _view_installed(self, node: AsyncGcsNode, view: View) -> None:
        del node, view
        self._progress.set()

    async def start(self) -> View:
        """Activate the membership tier; wait for the all-nodes view."""
        await self.tier.start()
        return await self.await_members(frozenset(self.nodes))

    async def reconfigure(self, members: Iterable[ProcessId]) -> View:
        """Drive the membership to ``members`` and wait for the view.

        The tier's servers run their agreement round(s) over the hub;
        this returns once every member's end-point has installed one
        common view with exactly ``members``.
        """
        member_set = frozenset(members)
        unknown = member_set - set(self.nodes)
        if unknown:
            raise ValueError(f"unknown nodes {sorted(unknown)}")
        if not self.tier.started:
            await self.tier.start()
        self.tier.set_members(member_set)
        return await self.await_members(member_set)

    async def await_members(
        self,
        member_set: FrozenSet[ProcessId],
        timeout: Optional[float] = None,
        *,
        min_counter: int = 0,
    ) -> View:
        """Wait until ``member_set`` share one installed view of themselves.

        ``min_counter`` waits for a *fresh* view (counter at least that
        high) - server faults re-form a view of unchanged membership, so
        matching members alone would accept the stale pre-fault view.
        """
        if not member_set:
            raise ValueError("empty member set")
        members = sorted(member_set)

        def predicate() -> bool:
            views = [self.nodes[pid].current_view for pid in members]
            first = views[0]
            return (
                first.vid != VID_ZERO
                and first.vid.counter >= min_counter
                and first.members == member_set
                and all(v == first for v in views[1:])
            )

        await await_settled(
            predicate,
            self._progress,
            timeout=self._settle_timeout if timeout is None else timeout,
            describe=lambda: "awaiting view %s; %s"
            % (members, describe_views({p: self.nodes[p] for p in members})),
        )
        return self.nodes[members[0]].current_view

    async def await_view(self, view: View, timeout: float = 10.0) -> None:
        """Wait until every member of ``view`` has installed it."""
        await await_settled(
            lambda: all(self.nodes[pid].current_view == view for pid in view.members),
            self._progress,
            timeout=timeout,
            describe=lambda: describe_views({p: self.nodes[p] for p in view.members}),
        )

    async def quiesce(self) -> None:
        await self.hub.quiesce()

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    async def partition(self, groups: Iterable[Iterable[ProcessId]]) -> List[View]:
        """Split the hub into components; one view forms per group.

        Each group gets its own membership server (grown on demand), cut
        off - together with its clients - from the rest of the world,
        mirroring the simulator's drop-across-the-cut semantics.
        """
        groups = [list(group) for group in groups]
        # Crashed servers hold no partition group: capacity must cover
        # the groups with *alive* servers (the simulator grows its
        # tier synchronously; sockets need the explicit await here).
        await self.tier.ensure_capacity(
            max(
                len(groups) + len(self.tier.crashed_servers()),
                len(self.tier.servers),
            )
        )
        plan = self.tier.plan_partition(groups)
        # The tier cuts the hub's link core along plan.components itself.
        self.tier.apply_partition(plan)
        views = []
        for group in groups:
            views.append(await self.await_members(frozenset(group)))
        return views

    async def heal(self) -> View:
        """Reconnect everyone; wait for the merged view."""
        self.tier.heal()  # heals the hub's link core too
        return await self.await_members(self.tier.active_members())

    async def crash(self, pid: ProcessId) -> Optional[View]:
        """Crash ``pid``; wait for the survivors' view (if any survive)."""
        self.nodes[pid].crash()
        self.tier.client_crashed(pid)
        survivors = self.tier.active_members()
        if not survivors:
            return None
        return await self.await_members(survivors)

    async def recover(self, pid: ProcessId) -> View:
        """Recover ``pid``; wait for the view re-admitting it."""
        self.nodes[pid].recover()
        self.tier.client_recovered(pid)
        return await self.await_members(self.tier.active_members())

    # ------------------------------------------------------------------
    # the server fault domain
    # ------------------------------------------------------------------

    async def server_crash(self, sid: Optional[ProcessId] = None) -> ProcessId:
        """Crash a membership server; wait for the failover view."""
        fresh = self.tier.watermark() + 1
        sid = self.tier.crash_server(sid)
        members = self.tier.active_members()
        if members:
            await self.await_members(members, min_counter=fresh)
        return sid

    async def server_recover(self, sid: ProcessId) -> View:
        """Recover a crashed server; wait for its rejoin view."""
        fresh = self.tier.watermark() + 1
        self.tier.recover_server(sid)
        return await self.await_members(self.tier.active_members(), min_counter=fresh)

    async def server_partition(
        self, groups: Iterable[Iterable[ProcessId]]
    ) -> List[View]:
        """Partition the server tier; one view per non-empty component."""
        fresh = self.tier.watermark() + 1
        effective = self.tier.partition_servers(groups)
        views = []
        for group in effective:
            members = self.tier.clients_of(group)
            if members:
                views.append(await self.await_members(members, min_counter=fresh))
        return views

    async def close(self) -> None:
        await self.hub.close()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def node(self, pid: ProcessId) -> AsyncGcsNode:
        return self.nodes[pid]

    async def __aenter__(self) -> "AsyncCluster":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()
