"""A GCS cluster over real TCP sockets.

``TcpCluster`` runs each member's end-point behind a
:class:`~repro.runtime.tcp.TcpTransport`: every wire message crosses a
real loopback (or LAN) socket, giving the closest analogue to the
paper's C++ deployment this repository offers.  Membership is provided
by a :class:`~repro.membership.tier.MembershipTier` whose servers each
listen on their *own* socket - start_change and view notices cross the
kernel exactly like application traffic, and partitions (emulated with
per-transport frame filters) cut clients off from their servers the way
a real network split would.

TCP supplies CO_RFIFO's per-connection gap-free FIFO; a broken
connection is a lost suffix, after which the membership must
reconfigure - the assumption the paper makes of its substrate [36].
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.chaos.faults import FaultInjector
from repro.checking.events import GcsTrace
from repro.core.gcs_endpoint import GcsEndpoint
from repro.links import LinkCore
from repro.core.runner import EndpointRunner
from repro.errors import SettleTimeoutError
from repro.membership.protocol import StartChangeNotice, ViewNotice
from repro.membership.tier import MembershipTier
from repro.runtime.node import Delivery, ViewChange
from repro.runtime.settle import await_settled, describe_views
from repro.runtime.settle import settle_timeout as env_settle_timeout
from repro.runtime.tcp import TcpTransport
from repro.types import VID_ZERO, ProcessId, View


class TcpGcsNode:
    """One member: end-point + runner + TCP transport + outbox pump."""

    def __init__(self, pid: ProcessId, cluster: "TcpCluster") -> None:
        self.pid = pid
        self.cluster = cluster
        self.endpoint = GcsEndpoint(pid, gc_views=True)
        self.events: asyncio.Queue = asyncio.Queue()
        self.delivered: List[Tuple[ProcessId, Any]] = []
        self.views: List[View] = []
        self._unblocked = asyncio.Event()
        self._unblocked.set()
        # wire sends are produced synchronously by the runner but must be
        # awaited on sockets: an outbox task serialises them in order.
        self._outbox: asyncio.Queue = asyncio.Queue()
        self.transport = TcpTransport(pid, self._on_wire, core=cluster.links)
        self.runner = EndpointRunner(
            self.endpoint,
            send_wire=lambda targets, m: self._outbox.put_nowait((targets, m)),
            set_reliable=lambda targets: None,  # TCP reconnects on demand
            on_deliver=self._on_deliver,
            on_view=self._on_view,
            on_block=self._unblocked.clear,
            auto_block_ok=True,
            clock=time.monotonic,
            trace=cluster.trace,
            fastpath=cluster._fastpath,
        )
        self._pump_task: Optional[asyncio.Task] = None

    @property
    def events_queue(self) -> asyncio.Queue:
        """Alias matching :class:`AsyncGcsNode`, for substrate-generic code."""
        return self.events

    async def start(self) -> Tuple[str, int]:
        address = await self.transport.start()
        self._pump_task = asyncio.get_event_loop().create_task(self._pump())
        return address

    async def stop(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            await asyncio.gather(self._pump_task, return_exceptions=True)
        await self.transport.close()

    async def _pump(self) -> None:
        while True:
            targets, message = await self._outbox.get()
            run: List[Any] = [message]
            # Coalesce the backlog: consecutive outbox entries towards the
            # same target set leave as one batched frame per destination
            # (send_many), instead of one pickle+write per message.  Queue
            # order is preserved, so per-connection FIFO is untouched.
            while True:
                try:
                    next_targets, next_message = self._outbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if next_targets == targets:
                    run.append(next_message)
                    continue
                await self.transport.send_many(targets, run)
                for _ in run:
                    self._outbox.task_done()
                targets, run = next_targets, [next_message]
            await self.transport.send_many(targets, run)
            for _ in run:
                self._outbox.task_done()

    def _on_wire(self, src: ProcessId, message: Any) -> None:
        if self.endpoint.crashed:
            return  # a crashed end-point hears nothing (Section 8)
        if isinstance(message, StartChangeNotice):
            self.runner.membership_start_change(message.cid, message.members)
        elif isinstance(message, ViewNotice):
            self.runner.membership_view(message.view)
        else:
            self.runner.receive(src, message)
        if not self.runner.blocked:
            self._unblocked.set()

    def _on_deliver(self, sender: ProcessId, payload: Any) -> None:
        self.delivered.append((sender, payload))
        self.events.put_nowait(Delivery(sender, payload))
        self.cluster._progress.set()

    def _on_view(self, view: View, transitional: FrozenSet[ProcessId]) -> None:
        self.views.append(view)
        self.events.put_nowait(ViewChange(view, transitional))
        self._unblocked.set()
        self.cluster._progress.set()

    def crash(self) -> None:
        self.runner.crash()
        self._unblocked.set()  # do not leave senders waiting on a corpse

    def recover(self) -> None:
        self.runner.recover()
        if not self.runner.blocked:
            self._unblocked.set()

    async def send(self, payload: Any) -> None:
        while self.runner.blocked:
            await self._unblocked.wait()
        self.runner.app_send(payload)
        await asyncio.sleep(0)

    async def next_event(self, timeout: float = 5.0) -> Any:
        return await asyncio.wait_for(self.events.get(), timeout)

    @property
    def current_view(self) -> View:
        return self.endpoint.current_view


class _ServerPort:
    """A membership server's own socket endpoint plus send pump."""

    def __init__(
        self,
        sid: ProcessId,
        handler: Callable[[ProcessId, Any], None],
        core: Optional[LinkCore] = None,
    ) -> None:
        self.sid = sid
        self.transport = TcpTransport(sid, handler, core=core)
        self.outbox: asyncio.Queue = asyncio.Queue()
        self._pump_task: Optional[asyncio.Task] = None

    async def start(self) -> Tuple[str, int]:
        address = await self.transport.start()
        self._pump_task = asyncio.get_event_loop().create_task(self._pump())
        return address

    async def _pump(self) -> None:
        while True:
            dst, message = await self.outbox.get()
            await self.transport.send([dst], message)
            self.outbox.task_done()

    async def stop(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            await asyncio.gather(self._pump_task, return_exceptions=True)
        await self.transport.close()


class TcpTierLink:
    """Hosts membership servers on sockets of their own.

    ``transmit`` enqueues on the server port's outbox; the port's
    :class:`~repro.runtime.tcp.TcpTransport` shares the cluster's
    :class:`~repro.links.LinkCore`, so every tier frame passes
    ``outbound()``/``inbound()`` - partition matrix, fault pipeline,
    dedup and counters - exactly like data traffic.
    """

    def __init__(self, cluster: "TcpCluster") -> None:
        self.cluster = cluster

    async def attach(self, sid: ProcessId, handler: Callable[[ProcessId, Any], None]) -> None:
        await self.cluster._attach_server(sid, handler)

    def transmit(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        self.cluster._server_ports[src].outbox.put_nowait((dst, message))


class TcpCluster:
    """Spin up members on loopback sockets and manage their membership."""

    def __init__(
        self,
        *,
        record_trace: bool = True,
        servers: int = 1,
        settle_timeout: Optional[float] = None,
        faults: Optional[FaultInjector] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        del record_trace  # accepted for compatibility; tracing is unconditional
        self._fastpath = fastpath
        self.nodes: Dict[ProcessId, TcpGcsNode] = {}
        self.trace: GcsTrace = GcsTrace()
        # One link core shared by every transport of the deployment: one
        # partition matrix, one fault pipeline, one counter set.
        self.links = LinkCore(faults=faults)
        self._settle_timeout = (
            env_settle_timeout(10.0) if settle_timeout is None else settle_timeout
        )
        self._addresses: Dict[ProcessId, Tuple[str, int]] = {}
        self._server_ports: Dict[ProcessId, _ServerPort] = {}
        self.tier = MembershipTier(
            TcpTierLink(self),
            servers=servers,
            links=self.links,
            trace=self.trace,
            clock=time.monotonic,
        )
        self._progress = asyncio.Event()

    @property
    def views_formed(self) -> List[View]:
        return self.tier.views_formed

    @property
    def faults(self) -> Optional[FaultInjector]:
        return self.links.faults

    def totals(self) -> Dict[str, int]:
        """Per-kind wire-message counters (uniform across substrates)."""
        return self.links.totals()

    def reset_counters(self) -> None:
        self.links.reset_counters()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    async def _attach_server(
        self, sid: ProcessId, handler: Callable[[ProcessId, Any], None]
    ) -> None:
        port = _ServerPort(sid, handler, core=self.links)
        self._server_ports[sid] = port
        self._addresses[sid] = await port.start()
        self._broadcast_book()

    def _broadcast_book(self) -> None:
        for node in self.nodes.values():
            node.transport.set_peers(self._addresses)
        for port in self._server_ports.values():
            port.transport.set_peers(self._addresses)

    # ------------------------------------------------------------------
    # topology management
    # ------------------------------------------------------------------

    async def add_nodes(self, pids: Iterable[ProcessId]) -> List[TcpGcsNode]:
        created = []
        for pid in pids:
            node = TcpGcsNode(pid, self)
            self.nodes[pid] = node
            self.tier.add_client(pid)
            created.append(node)
        for node in created:
            self._addresses[node.pid] = await node.start()
        self._broadcast_book()
        return created

    async def start(self) -> View:
        """Activate the membership tier; wait for the all-nodes view."""
        await self.tier.start()
        return await self.await_members(frozenset(self.nodes))

    async def reconfigure(
        self, members: Iterable[ProcessId], timeout: Optional[float] = None
    ) -> View:
        member_set = frozenset(members)
        unknown = member_set - set(self.nodes)
        if unknown:
            raise ValueError(f"unknown nodes {sorted(unknown)}")
        if not self.tier.started:
            await self.tier.start()
        self.tier.set_members(member_set)
        return await self.await_members(member_set, timeout)

    async def await_members(
        self,
        member_set: FrozenSet[ProcessId],
        timeout: Optional[float] = None,
        *,
        min_counter: int = 0,
    ) -> View:
        """Wait until ``member_set`` share one installed view of themselves.

        ``min_counter`` waits for a *fresh* view (counter at least that
        high) - server faults re-form a view of unchanged membership, so
        matching members alone would accept the stale pre-fault view.
        """
        if not member_set:
            raise ValueError("empty member set")
        members = sorted(member_set)

        def predicate() -> bool:
            views = [self.nodes[pid].current_view for pid in members]
            first = views[0]
            return (
                first.vid != VID_ZERO
                and first.vid.counter >= min_counter
                and first.members == member_set
                and all(v == first for v in views[1:])
            )

        await await_settled(
            predicate,
            self._progress,
            timeout=self._settle_timeout if timeout is None else timeout,
            describe=lambda: "awaiting view %s; %s"
            % (members, describe_views({p: self.nodes[p] for p in members})),
        )
        return self.nodes[members[0]].current_view

    async def quiesce(self, idle: float = 0.08, timeout: Optional[float] = None) -> None:
        """Wait until the cluster stops making progress.

        Sockets give no global in-flight counter, so quiescence is a
        bounded stability window: no new trace events and empty outboxes
        for ``idle`` seconds.  Raises :class:`SettleTimeoutError` when
        the window never closes within ``timeout`` (default: the
        ``$REPRO_SETTLE_TIMEOUT``-scaled settle deadline).
        """
        if timeout is None:
            timeout = env_settle_timeout(10.0)
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout

        def outbox_depth() -> int:
            depth = sum(node._outbox.qsize() for node in self.nodes.values())
            return depth + sum(p.outbox.qsize() for p in self._server_ports.values())

        def pending_tier() -> str:
            # Tier traffic rides the same fabric as data; a stall caused
            # by membership messages should say so, per server.
            depths = {
                str(sid): port.outbox.qsize()
                for sid, port in sorted(self._server_ports.items())
                if port.outbox.qsize()
            }
            return f"pending tier messages: {depths}" if depths else "no pending tier messages"

        last = (len(self.trace), outbox_depth())
        last_change = loop.time()
        while True:
            await asyncio.sleep(min(idle / 4, 0.02))
            current = (len(self.trace), outbox_depth())
            if current != last:
                last, last_change = current, loop.time()
            elif current[1] == 0 and loop.time() - last_change >= idle:
                return
            if loop.time() >= deadline:
                raise SettleTimeoutError(
                    f"TCP cluster still active after {timeout:.1f}s "
                    f"(trace={current[0]} events, outboxes={current[1]}); "
                    f"{pending_tier()}; "
                    f"busiest links: {self.links.stats.describe_links()}"
                )

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    async def partition(self, groups: Iterable[Iterable[ProcessId]]) -> List[View]:
        """Split the network into components; one view forms per group.

        Emulated on the shared link core's partition matrix: each
        process only exchanges frames within its own component (its
        group plus the membership server assigned to it).  The tier cuts
        the core along ``plan.components`` itself.
        """
        groups = [list(group) for group in groups]
        # Crashed servers hold no partition group: capacity must cover
        # the groups with *alive* servers (the simulator grows its
        # tier synchronously; sockets need the explicit await here).
        await self.tier.ensure_capacity(
            max(
                len(groups) + len(self.tier.crashed_servers()),
                len(self.tier.servers),
            )
        )
        plan = self.tier.plan_partition(groups)
        self.tier.apply_partition(plan)
        views = []
        for group in groups:
            views.append(await self.await_members(frozenset(group)))
        return views

    async def heal(self) -> View:
        """Merge the link core's components; wait for the merged view."""
        self.tier.heal()  # heals the shared link core too
        return await self.await_members(self.tier.active_members())

    async def crash(self, pid: ProcessId) -> Optional[View]:
        """Crash ``pid``; wait for the survivors' view (if any survive)."""
        self.nodes[pid].crash()
        self.tier.client_crashed(pid)
        survivors = self.tier.active_members()
        if not survivors:
            return None
        return await self.await_members(survivors)

    async def recover(self, pid: ProcessId) -> View:
        """Recover ``pid``; wait for the view re-admitting it."""
        self.nodes[pid].recover()
        self.tier.client_recovered(pid)
        return await self.await_members(self.tier.active_members())

    # ------------------------------------------------------------------
    # the server fault domain
    # ------------------------------------------------------------------

    async def server_crash(self, sid: Optional[ProcessId] = None) -> ProcessId:
        """Crash a membership server; wait for the failover view."""
        fresh = self.tier.watermark() + 1
        sid = self.tier.crash_server(sid)
        members = self.tier.active_members()
        if members:
            await self.await_members(members, min_counter=fresh)
        return sid

    async def server_recover(self, sid: ProcessId) -> View:
        """Recover a crashed server; wait for its rejoin view."""
        fresh = self.tier.watermark() + 1
        self.tier.recover_server(sid)
        return await self.await_members(self.tier.active_members(), min_counter=fresh)

    async def server_partition(
        self, groups: Iterable[Iterable[ProcessId]]
    ) -> List[View]:
        """Partition the server tier; one view per non-empty component."""
        fresh = self.tier.watermark() + 1
        effective = self.tier.partition_servers(groups)
        views = []
        for group in effective:
            members = self.tier.clients_of(group)
            if members:
                views.append(await self.await_members(members, min_counter=fresh))
        return views

    async def close(self) -> None:
        for node in self.nodes.values():
            await node.stop()
        for port in self._server_ports.values():
            await port.stop()

    def node(self, pid: ProcessId) -> TcpGcsNode:
        return self.nodes[pid]

    async def __aenter__(self) -> "TcpCluster":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()
