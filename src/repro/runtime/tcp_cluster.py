"""A GCS cluster over real TCP sockets.

``TcpCluster`` runs each member's end-point behind a
:class:`~repro.runtime.tcp.TcpTransport`: every wire message crosses a
real loopback (or LAN) socket, giving the closest analogue to the
paper's C++ deployment this repository offers.  Membership is
coordinated in-process (the cluster object plays the Figure 2 service);
in a multi-host deployment the same node wiring would take its notices
from `repro.membership` servers instead.

TCP supplies CO_RFIFO's per-connection gap-free FIFO; a broken
connection is a lost suffix, after which the membership must
reconfigure - the assumption the paper makes of its substrate [36].
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro._collections import frozendict
from repro.checking.events import GcsTrace
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.runner import EndpointRunner
from repro.runtime.node import Delivery, ViewChange
from repro.runtime.tcp import TcpTransport
from repro.types import ProcessId, View, ViewId


class TcpGcsNode:
    """One member: end-point + runner + TCP transport + outbox pump."""

    def __init__(self, pid: ProcessId, cluster: "TcpCluster") -> None:
        self.pid = pid
        self.cluster = cluster
        self.endpoint = GcsEndpoint(pid, gc_views=True)
        self.events: asyncio.Queue = asyncio.Queue()
        # wire sends are produced synchronously by the runner but must be
        # awaited on sockets: an outbox task serialises them in order.
        self._outbox: asyncio.Queue = asyncio.Queue()
        self.transport = TcpTransport(pid, self._on_wire)
        self.runner = EndpointRunner(
            self.endpoint,
            send_wire=lambda targets, m: self._outbox.put_nowait((targets, m)),
            set_reliable=lambda targets: None,  # TCP reconnects on demand
            on_deliver=lambda sender, payload: self.events.put_nowait(
                Delivery(sender, payload)
            ),
            on_view=lambda view, T: self.events.put_nowait(ViewChange(view, T)),
            auto_block_ok=True,
            trace=cluster.trace,
        )
        self._pump_task: Optional[asyncio.Task] = None

    async def start(self) -> Tuple[str, int]:
        address = await self.transport.start()
        self._pump_task = asyncio.get_event_loop().create_task(self._pump())
        return address

    async def stop(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            await asyncio.gather(self._pump_task, return_exceptions=True)
        await self.transport.close()

    async def _pump(self) -> None:
        while True:
            targets, message = await self._outbox.get()
            await self.transport.send(targets, message)

    def _on_wire(self, src: ProcessId, message: Any) -> None:
        self.runner.receive(src, message)

    async def send(self, payload: Any) -> None:
        while self.runner.blocked:
            await asyncio.sleep(0.002)
        self.runner.app_send(payload)
        await asyncio.sleep(0)

    async def next_event(self, timeout: float = 5.0) -> Any:
        return await asyncio.wait_for(self.events.get(), timeout)

    @property
    def current_view(self) -> View:
        return self.endpoint.current_view


class TcpCluster:
    """Spin up members on loopback sockets and manage their membership."""

    def __init__(self, *, record_trace: bool = False) -> None:
        self.nodes: Dict[ProcessId, TcpGcsNode] = {}
        self.trace: Optional[GcsTrace] = GcsTrace() if record_trace else None
        self._cid = itertools.count(start=1)
        self._counter = itertools.count(start=1)

    async def add_nodes(self, pids: Iterable[ProcessId]) -> List[TcpGcsNode]:
        created = []
        for pid in pids:
            node = TcpGcsNode(pid, self)
            self.nodes[pid] = node
            created.append(node)
        addresses = {}
        for node in created:
            addresses[node.pid] = await node.start()
        book = {pid: addr for pid, addr in addresses.items()}
        for node in self.nodes.values():
            node.transport.set_peers(book)
        return created

    async def reconfigure(self, members: Iterable[ProcessId], timeout: float = 10.0) -> View:
        member_set = frozenset(members)
        cids = {pid: next(self._cid) for pid in sorted(member_set)}
        for pid, cid in cids.items():
            self.nodes[pid].runner.membership_start_change(cid, member_set)
        await asyncio.sleep(0)
        view = View(ViewId(next(self._counter)), member_set, frozendict(cids))
        for pid in sorted(member_set):
            self.nodes[pid].runner.membership_view(view)

        async def settled() -> None:
            while not all(
                self.nodes[pid].current_view == view for pid in member_set
            ):
                await asyncio.sleep(0.005)

        await asyncio.wait_for(settled(), timeout)
        return view

    async def start(self) -> View:
        return await self.reconfigure(list(self.nodes))

    async def close(self) -> None:
        for node in self.nodes.values():
            await node.stop()

    async def __aenter__(self) -> "TcpCluster":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()
