"""Event-driven settling for the asyncio and TCP deployments.

The runtime formerly waited for convergence by sleep-polling
(``await asyncio.sleep(0.002)`` in a loop), which is slow when the
condition is already true, wasteful when it is not, and hangs CI forever
when a protocol bug keeps it false.  :func:`await_settled` replaces all
of those loops: callers hand in a *predicate* and an :class:`asyncio.Event`
that progress-making code sets, and get either a prompt return or a
:class:`~repro.errors.SettleTimeoutError` carrying a description of the
stuck state.
"""

from __future__ import annotations

import asyncio
import os
from typing import Callable, Iterable, Optional

from repro.errors import SettleTimeoutError
from repro.types import View

DEFAULT_TIMEOUT = 5.0

# Environment override for every settling deadline in the runtime.  Chaos
# schedules stretch convergence (retransmission penalties, jitter), and
# CI machines are slower than laptops; rather than threading a knob
# through every cluster and deployment constructor, one variable rescales
# them all.
ENV_TIMEOUT = "REPRO_SETTLE_TIMEOUT"


def settle_timeout(fallback: float = DEFAULT_TIMEOUT) -> float:
    """The effective settle timeout: ``$REPRO_SETTLE_TIMEOUT`` or ``fallback``.

    Read at call time, not import time, so tests and CI jobs can adjust
    it per run.  An unparsable value fails loudly - a silently ignored
    timeout override is exactly the kind of CI mystery this exists to
    prevent.
    """
    raw = os.environ.get(ENV_TIMEOUT)
    if raw is None or not raw.strip():
        return fallback
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{ENV_TIMEOUT}={raw!r} is not a number") from None
    if value <= 0:
        raise ValueError(f"{ENV_TIMEOUT}={raw!r} must be positive")
    return value


async def await_settled(
    predicate: Callable[[], bool],
    event: asyncio.Event,
    *,
    timeout: Optional[float] = None,
    describe: Optional[Callable[[], str]] = None,
) -> None:
    """Wait until ``predicate()`` holds, woken by ``event``.

    The event must be set by whatever code can make the predicate become
    true (message handlers, view installation, ...).  To avoid the classic
    lost-wakeup race the event is cleared *before* each predicate check:
    a wake-up arriving between check and wait is then never dropped.

    Raises :class:`SettleTimeoutError` after ``timeout`` seconds
    (default: :func:`settle_timeout`, i.e. ``$REPRO_SETTLE_TIMEOUT`` or
    ``DEFAULT_TIMEOUT``), with ``describe()`` (if given) appended to the
    error message.
    """
    if timeout is None:
        timeout = settle_timeout()
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while True:
        event.clear()
        if predicate():
            return
        remaining = deadline - loop.time()
        if remaining <= 0:
            detail = f": {describe()}" if describe is not None else ""
            raise SettleTimeoutError(
                f"condition not reached within {timeout:.1f}s{detail}"
            )
        try:
            await asyncio.wait_for(event.wait(), remaining)
        except asyncio.TimeoutError:
            pass  # fall through to the deadline check / final predicate try


def uniform_view(views: Iterable[Optional[View]], members: frozenset) -> bool:
    """True when every given view exists, is shared, and has ``members``."""
    views = list(views)
    if not views or any(v is None for v in views):
        return False
    first = views[0]
    return first.members == members and all(v == first for v in views[1:])


def describe_views(nodes: dict) -> str:
    """Render ``pid -> current view`` for settle-timeout diagnostics."""
    parts = []
    for pid in sorted(nodes):
        node = nodes[pid]
        view = getattr(node, "current_view", None)
        blocked = getattr(getattr(node, "runner", None), "blocked", None)
        tag = " blocked" if blocked else ""
        parts.append(f"{pid}={view!r}{tag}")
    return ", ".join(parts)


__all__ = [
    "DEFAULT_TIMEOUT",
    "ENV_TIMEOUT",
    "await_settled",
    "describe_views",
    "settle_timeout",
    "uniform_view",
]
