"""Event-driven settling for the asyncio and TCP deployments.

The runtime formerly waited for convergence by sleep-polling
(``await asyncio.sleep(0.002)`` in a loop), which is slow when the
condition is already true, wasteful when it is not, and hangs CI forever
when a protocol bug keeps it false.  :func:`await_settled` replaces all
of those loops: callers hand in a *predicate* and an :class:`asyncio.Event`
that progress-making code sets, and get either a prompt return or a
:class:`~repro.errors.SettleTimeoutError` carrying a description of the
stuck state.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterable, Optional

from repro.errors import SettleTimeoutError
from repro.types import View

DEFAULT_TIMEOUT = 5.0


async def await_settled(
    predicate: Callable[[], bool],
    event: asyncio.Event,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    describe: Optional[Callable[[], str]] = None,
) -> None:
    """Wait until ``predicate()`` holds, woken by ``event``.

    The event must be set by whatever code can make the predicate become
    true (message handlers, view installation, ...).  To avoid the classic
    lost-wakeup race the event is cleared *before* each predicate check:
    a wake-up arriving between check and wait is then never dropped.

    Raises :class:`SettleTimeoutError` after ``timeout`` seconds, with
    ``describe()`` (if given) appended to the error message.
    """
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while True:
        event.clear()
        if predicate():
            return
        remaining = deadline - loop.time()
        if remaining <= 0:
            detail = f": {describe()}" if describe is not None else ""
            raise SettleTimeoutError(
                f"condition not reached within {timeout:.1f}s{detail}"
            )
        try:
            await asyncio.wait_for(event.wait(), remaining)
        except asyncio.TimeoutError:
            pass  # fall through to the deadline check / final predicate try


def uniform_view(views: Iterable[Optional[View]], members: frozenset) -> bool:
    """True when every given view exists, is shared, and has ``members``."""
    views = list(views)
    if not views or any(v is None for v in views):
        return False
    first = views[0]
    return first.members == members and all(v == first for v in views[1:])


def describe_views(nodes: dict) -> str:
    """Render ``pid -> current view`` for settle-timeout diagnostics."""
    parts = []
    for pid in sorted(nodes):
        node = nodes[pid]
        view = getattr(node, "current_view", None)
        blocked = getattr(getattr(node, "runner", None), "blocked", None)
        tag = " blocked" if blocked else ""
        parts.append(f"{pid}={view!r}{tag}")
    return ", ".join(parts)


__all__ = [
    "DEFAULT_TIMEOUT",
    "await_settled",
    "describe_views",
    "uniform_view",
]
