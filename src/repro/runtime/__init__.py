"""asyncio runtime: the deployable face of the library (cf. the paper's
C++ implementation).

* :class:`AsyncGcsNode` - one group member with an async send/receive API;
* :class:`AsyncCluster` - in-process cluster with managed membership;
* :class:`AsyncHub` - lossless in-process transport;
* :class:`TcpTransport` - a length-prefixed TCP transport for
  cross-process deployments among trusted peers.
"""

from repro.runtime.cluster import AsyncCluster
from repro.runtime.node import AsyncGcsNode, Delivery, ViewChange
from repro.runtime.tcp import TcpTransport, encode_frame, read_frame
from repro.runtime.tcp_cluster import TcpCluster, TcpGcsNode
from repro.runtime.transport import AsyncHub

__all__ = [
    "AsyncCluster",
    "AsyncGcsNode",
    "AsyncHub",
    "Delivery",
    "TcpCluster",
    "TcpGcsNode",
    "TcpTransport",
    "ViewChange",
    "encode_frame",
    "read_frame",
]
