"""asyncio runtime: the deployable face of the library (cf. the paper's
C++ implementation).

* :class:`AsyncGcsNode` - one group member with an async send/receive API;
* :class:`AsyncCluster` - in-process cluster whose membership tier runs
  the real one-round MBRSHP protocol over :class:`HubTierLink`;
* :class:`AsyncHub` - lossless in-process transport;
* :class:`TcpTransport` - a length-prefixed TCP transport for
  cross-process deployments among trusted peers, with
  :class:`TcpCluster` driving the same membership tier over sockets;
* :func:`await_settled` - event-driven settling shared by both clusters.
"""

from repro.runtime.cluster import AsyncCluster, HubTierLink
from repro.runtime.node import AsyncGcsNode, Delivery, ViewChange
from repro.runtime.settle import await_settled, describe_views, uniform_view
from repro.runtime.tcp import TcpTransport, encode_frame, read_frame
from repro.runtime.tcp_cluster import TcpCluster, TcpGcsNode, TcpTierLink
from repro.runtime.transport import AsyncHub

__all__ = [
    "AsyncCluster",
    "AsyncGcsNode",
    "AsyncHub",
    "Delivery",
    "HubTierLink",
    "TcpCluster",
    "TcpGcsNode",
    "TcpTierLink",
    "TcpTransport",
    "ViewChange",
    "await_settled",
    "describe_views",
    "encode_frame",
    "read_frame",
    "uniform_view",
]
