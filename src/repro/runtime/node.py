"""An asyncio GCS node: the end-point automaton behind an async API.

``AsyncGcsNode`` is the deployment face of the library: applications
``await node.send(payload)`` and consume deliveries and views from
``node.events()``.  The blocking contract of Figure 12 is enforced for
the application automatically: while the end-point has requested a block,
``send`` waits; the node acknowledges the block (``block_ok``) once the
application has no send in flight.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, AsyncIterator, Callable, FrozenSet, Iterable, List, Optional, Tuple

from repro.checking.events import GcsTrace
from repro.core.forwarding import ForwardingStrategy
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.runner import EndpointRunner
from repro.membership.protocol import StartChangeNotice, ViewNotice
from repro.runtime.transport import AsyncHub
from repro.types import ProcessId, StartChangeId, View


@dataclass(frozen=True)
class Delivery:
    """An application message delivered to this node."""

    sender: ProcessId
    payload: Any


@dataclass(frozen=True)
class ViewChange:
    """A new view (with its transitional set) installed at this node."""

    view: View
    transitional: FrozenSet[ProcessId]


class AsyncGcsNode:
    """One group member running over an :class:`AsyncHub`."""

    def __init__(
        self,
        pid: ProcessId,
        hub: AsyncHub,
        *,
        forwarding: Optional[ForwardingStrategy] = None,
        trace: Optional[GcsTrace] = None,
        queue_views: bool = True,
        on_view_installed: Optional[Callable[["AsyncGcsNode", View], None]] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        self.pid = pid
        self.hub = hub
        kwargs = {"gc_views": True}
        if forwarding is not None:
            kwargs["forwarding"] = forwarding
        self.endpoint = GcsEndpoint(pid, **kwargs)
        self.events_queue: asyncio.Queue = asyncio.Queue()
        self.queue_views = queue_views
        self.delivered: List[Tuple[ProcessId, Any]] = []
        self.views: List[View] = []
        self._on_view_installed = on_view_installed
        self._unblocked = asyncio.Event()
        self._unblocked.set()
        self.runner = EndpointRunner(
            self.endpoint,
            send_wire=lambda targets, m: hub.send(pid, targets, m),
            set_reliable=lambda targets: None,  # hub is lossless in-process
            on_deliver=self._on_deliver,
            on_view=self._on_view,
            on_block=self._on_block,
            auto_block_ok=True,
            clock=time.monotonic,
            trace=trace,
            fastpath=fastpath,
        )
        hub.register(pid, self._on_wire)

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------

    async def send(self, payload: Any) -> None:
        """Multicast ``payload`` to the current view (waits while blocked)."""
        while self.runner.blocked:
            await self._unblocked.wait()
        self.runner.app_send(payload)
        await asyncio.sleep(0)  # let inbox pumps make progress

    def events(self) -> asyncio.Queue:
        """Queue of :class:`Delivery` and :class:`ViewChange` events."""
        return self.events_queue

    async def next_event(self, timeout: Optional[float] = None) -> Any:
        if timeout is None:
            return await self.events_queue.get()
        return await asyncio.wait_for(self.events_queue.get(), timeout)

    async def wait_for_view(self, predicate: Callable[[View], bool], timeout: float = 5.0) -> ViewChange:
        """Consume events until a view satisfying ``predicate`` arrives."""
        deadline = asyncio.get_event_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_event_loop().time()
            event = await asyncio.wait_for(self.events_queue.get(), max(0.01, remaining))
            if isinstance(event, ViewChange) and predicate(event.view):
                return event

    @property
    def current_view(self) -> View:
        return self.endpoint.current_view

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Crash the end-point: it ignores traffic until :meth:`recover`."""
        self.runner.crash()
        self._unblocked.set()  # do not leave senders waiting on a corpse

    def recover(self) -> None:
        self.runner.recover()
        if not self.runner.blocked:
            self._unblocked.set()

    @property
    def crashed(self) -> bool:
        return self.endpoint.crashed

    def _on_wire(self, src: ProcessId, message: Any) -> None:
        if self.endpoint.crashed:
            return  # a crashed end-point hears nothing (Section 8)
        if isinstance(message, StartChangeNotice):
            self.runner.membership_start_change(message.cid, message.members)
        elif isinstance(message, ViewNotice):
            self.runner.membership_view(message.view)
        else:
            self.runner.receive(src, message)
        if not self.runner.blocked:
            self._unblocked.set()

    def membership_start_change(self, cid: StartChangeId, members: Iterable[ProcessId]) -> None:
        self.runner.membership_start_change(cid, frozenset(members))
        if self.runner.blocked:
            self._unblocked.clear()

    def membership_view(self, view: View) -> None:
        self.runner.membership_view(view)
        if not self.runner.blocked:
            self._unblocked.set()

    def _on_deliver(self, sender: ProcessId, payload: Any) -> None:
        self.delivered.append((sender, payload))
        self.events_queue.put_nowait(Delivery(sender, payload))

    def _on_view(self, view: View, transitional: FrozenSet[ProcessId]) -> None:
        self.views.append(view)
        if self.queue_views:
            self.events_queue.put_nowait(ViewChange(view, transitional))
        self._unblocked.set()
        if self._on_view_installed is not None:
            self._on_view_installed(self, view)

    def _on_block(self) -> None:
        self._unblocked.clear()
