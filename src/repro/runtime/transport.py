"""In-process asyncio transport hub.

``AsyncHub`` is the asyncio analogue of the simulated network: a
per-ordered-pair FIFO fabric with optional artificial delay, delivering
to per-process inbox queues.  In-process delivery is lossless, so the
CO_RFIFO contract (Figure 3) holds trivially; partitions can still be
injected for tests (messages across a cut are dropped, which the
reliable-set semantics permit only for non-reliable peers - the paper's
algorithm re-establishes reliability through the membership service, so
tests pair partitions with reconfigurations, as a real WAN deployment
would).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.types import ProcessId

Handler = Callable[[ProcessId, Any], None]


class AsyncHub:
    """Routes messages between in-process asyncio nodes."""

    def __init__(self, *, delay: float = 0.0) -> None:
        self.delay = delay
        self._handlers: Dict[ProcessId, Handler] = {}
        self._queues: Dict[ProcessId, asyncio.Queue] = {}
        self._pumps: Dict[ProcessId, asyncio.Task] = {}
        self._groups: Dict[ProcessId, int] = {}
        self._closed = False

    def register(self, pid: ProcessId, handler: Handler) -> None:
        if pid in self._handlers:
            raise ValueError(f"duplicate process {pid!r}")
        self._handlers[pid] = handler
        self._queues[pid] = asyncio.Queue()
        self._groups[pid] = 0
        self._pumps[pid] = asyncio.get_event_loop().create_task(self._pump(pid))

    def connected(self, p: ProcessId, q: ProcessId) -> bool:
        return self._groups.get(p, 0) == self._groups.get(q, 0)

    def partition(self, groups: Iterable[Iterable[ProcessId]]) -> None:
        assignment: Dict[ProcessId, int] = {}
        for index, group in enumerate(groups, start=1):
            for pid in group:
                assignment[pid] = index
        for pid in self._handlers:
            self._groups[pid] = assignment.get(pid, 0)

    def heal(self) -> None:
        for pid in self._groups:
            self._groups[pid] = 0

    def send(self, src: ProcessId, targets: Iterable[ProcessId], message: Any) -> None:
        for dst in targets:
            if dst == src or dst not in self._queues:
                continue
            if not self.connected(src, dst):
                continue
            self._queues[dst].put_nowait((src, message))

    async def _pump(self, pid: ProcessId) -> None:
        queue = self._queues[pid]
        handler = self._handlers[pid]
        while not self._closed:
            src, message = await queue.get()
            if self.delay:
                await asyncio.sleep(self.delay)
            handler(src, message)

    async def close(self) -> None:
        self._closed = True
        for task in self._pumps.values():
            task.cancel()
        await asyncio.gather(*self._pumps.values(), return_exceptions=True)
        self._pumps.clear()

    async def quiesce(self, settle: float = 0.01, rounds: int = 200) -> None:
        """Wait until all inboxes drain and stay empty briefly."""
        for _ in range(rounds):
            if all(queue.empty() for queue in self._queues.values()):
                await asyncio.sleep(settle)
                if all(queue.empty() for queue in self._queues.values()):
                    return
            else:
                await asyncio.sleep(settle)
