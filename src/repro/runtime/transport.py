"""In-process asyncio transport hub.

``AsyncHub`` is the asyncio *driver* over the unified
:class:`~repro.links.LinkCore`: per-ordered-pair FIFO delivery through
per-process inbox queues and pump tasks, with all link semantics -
partition matrix, fault application, receiver-side deduplication,
message counters - delegated to the core.  In-process delivery is
lossless, so the CO_RFIFO contract (Figure 3) holds trivially;
partitions can still be injected for tests (messages across a cut are
dropped, which the reliable-set semantics permit only for non-reliable
peers - the paper's algorithm re-establishes reliability through the
membership service, so tests pair partitions with reconfigurations, as
a real WAN deployment would).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Iterable, Optional

from repro.chaos.faults import FaultInjector
from repro.errors import SettleTimeoutError
from repro.links import BATCH_LIMIT, LinkCore
from repro.runtime.settle import settle_timeout as env_settle_timeout
from repro.types import ProcessId

Handler = Callable[[ProcessId, Any], None]


class _InboxEntry:
    """One inbox-queue entry: a batch of wire copies from one sender.

    While the entry sits unpopped at the tail of a destination's queue
    (``open``), further zero-delay copies from the same sender coalesce
    onto it - one pump wakeup then handles the whole run.  The pump
    closes the entry the moment it pops it, so a copy can never join a
    batch that is already being delivered.
    """

    __slots__ = ("src", "copies", "extra", "open")

    def __init__(self, src: ProcessId, wire: Any, extra: float) -> None:
        self.src = src
        self.copies = [wire]
        self.extra = extra
        self.open = True


class AsyncHub:
    """Routes messages between in-process asyncio nodes."""

    def __init__(
        self,
        *,
        delay: float = 0.0,
        faults: Optional[FaultInjector] = None,
        core: Optional[LinkCore] = None,
    ) -> None:
        self.delay = delay
        self.core = core if core is not None else LinkCore(faults=faults)
        self._handlers: Dict[ProcessId, Handler] = {}
        self._queues: Dict[ProcessId, asyncio.Queue] = {}
        # Newest (possibly still open) inbox entry per destination.
        self._tails: Dict[ProcessId, _InboxEntry] = {}
        self._pumps: Dict[ProcessId, asyncio.Task] = {}
        self._closed = False
        # Messages enqueued but not yet fully handled.  ``_idle`` fires
        # whenever the count returns to zero, so ``quiesce`` can wait on
        # an event instead of sleep-polling the queues.
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()

    @property
    def faults(self) -> Optional[FaultInjector]:
        return self.core.faults

    def register(self, pid: ProcessId, handler: Handler) -> None:
        if pid in self._handlers:
            raise ValueError(f"duplicate process {pid!r}")
        self._handlers[pid] = handler
        self._queues[pid] = asyncio.Queue()
        self.core.ensure(pid)
        self._pumps[pid] = asyncio.get_event_loop().create_task(self._pump(pid))

    # ------------------------------------------------------------------
    # topology and statistics (delegated to the link core)
    # ------------------------------------------------------------------

    def connected(self, p: ProcessId, q: ProcessId) -> bool:
        return self.core.connected(p, q)

    def partition(self, groups: Iterable[Iterable[ProcessId]]) -> None:
        self.core.partition(groups)

    def heal(self) -> None:
        self.core.heal()

    def totals(self) -> Dict[str, int]:
        return self.core.totals()

    def reset_counters(self) -> None:
        self.core.reset_counters()

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def send(self, src: ProcessId, targets: Iterable[ProcessId], message: Any) -> None:
        # Sorted fan-out: targets is usually a frozenset, and hash-order
        # iteration would leak the interpreter's hash seed into
        # same-instant delivery order (traces must replay byte-for-byte).
        for dst in sorted(targets):
            if dst == src or dst not in self._queues:
                continue
            transmission = self.core.outbound(src, dst, message)
            if transmission is None:
                continue  # partitioned: the suffix is lost, as CO_RFIFO allows
            for wire, extra in transmission.copies:
                # A duplicated wire copy occupies the queue behind the
                # original; the pump hands it to the core's dedup.
                self._enqueue(dst, src, wire, extra)

    def _enqueue(self, dst: ProcessId, src: ProcessId, wire: Any, extra: float) -> None:
        self._inflight += 1
        self._idle.clear()
        tail = self._tails.get(dst)
        if (
            tail is not None
            and tail.open
            and tail.src == src
            and extra == 0.0
            and self.delay == 0.0
            and len(tail.copies) < BATCH_LIMIT
        ):
            # Zero-delay copy behind an undelivered run from the same
            # sender: ride the open tail entry instead of waking the pump
            # once per message.  Queue order per sender is unchanged, so
            # per-link FIFO holds across batch boundaries.
            tail.copies.append(wire)
            return
        entry = _InboxEntry(src, wire, extra)
        self._tails[dst] = entry
        self._queues[dst].put_nowait(entry)

    async def _pump(self, pid: ProcessId) -> None:
        queue = self._queues[pid]
        handler = self._handlers[pid]
        while not self._closed:
            entry = await queue.get()
            entry.open = False
            if self.delay or entry.extra:
                await asyncio.sleep(self.delay + entry.extra)
            try:
                for payload in self.core.inbound_batch(entry.src, pid, entry.copies):
                    handler(entry.src, payload)
            finally:
                self._inflight -= len(entry.copies)
                if self._inflight == 0:
                    self._idle.set()

    async def close(self) -> None:
        self._closed = True
        for task in self._pumps.values():
            task.cancel()
        await asyncio.gather(*self._pumps.values(), return_exceptions=True)
        self._pumps.clear()

    async def quiesce(self, timeout: Optional[float] = None) -> None:
        """Wait until no message is in flight anywhere on the hub.

        Handlers may send further messages while handling one; the
        in-flight counter covers those too, so when it hits zero the
        fabric is genuinely quiescent.  Raises
        :class:`SettleTimeoutError` instead of hanging if traffic never
        stops within ``timeout`` seconds (default: the
        ``$REPRO_SETTLE_TIMEOUT``-scaled settle deadline).
        """
        if timeout is None:
            timeout = env_settle_timeout(10.0)
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while True:
            # Yield once so a send scheduled in the current task's step
            # reaches the pumps before we sample the counter.
            await asyncio.sleep(0)
            if self._inflight == 0:
                return
            remaining = deadline - loop.time()
            if remaining <= 0:
                from repro.membership.protocol import SERVER_PREFIX

                pending = {
                    pid: queue.qsize()
                    for pid, queue in self._queues.items()
                    if queue.qsize()
                }
                # Tier traffic rides the same hub as data; a stall caused
                # by membership messages should say so, per server.
                tier = {
                    pid: depth
                    for pid, depth in pending.items()
                    if str(pid).startswith(SERVER_PREFIX)
                }
                tier_note = (
                    f"pending tier messages: {tier}"
                    if tier
                    else "no pending tier messages"
                )
                raise SettleTimeoutError(
                    f"hub still has {self._inflight} message(s) in flight "
                    f"after {timeout:.1f}s; pending inboxes: {pending}; "
                    f"{tier_note}; "
                    f"busiest links: {self.core.stats.describe_links()}"
                )
            try:
                await asyncio.wait_for(self._idle.wait(), remaining)
            except asyncio.TimeoutError:
                pass
