"""Many groups x many processes on the simulator, sharded membership.

:class:`ScaleWorld` is the group-axis counterpart of
:class:`~repro.net.world.SimWorld`: client processes are
:class:`~repro.groups.MultiGroupProcess` instances (one GCS end-point
per joined group over one shared transport, exactly as in
:mod:`repro.groups`), but membership comes from one
:class:`~repro.scale.sharding.ShardedMembershipTier` instead of a
private oracle per group.  That is the configuration the paper's
client-server architecture is *for*: a small membership tier serving a
number of groups far exceeding its own size, where a process crash
reconfigures only the shards owning one of the crashed process's groups.

E19's group-axis sweep drives this world at g=1000 concurrent groups
over n=1000 processes.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.checking.events import GcsTrace
from repro.groups import GroupName, MultiGroupProcess
from repro.net.latency import LatencyModel
from repro.net.network import SimNetwork
from repro.net.simclock import EventScheduler
from repro.scale.sharding import ShardedMembershipTier
from repro.types import ProcessId, View


def auto_shards(groups: int) -> int:
    """Default shard count for ``groups`` groups: ~sqrt(g), capped at 32."""
    return max(1, min(32, round(math.sqrt(max(groups, 1)))))


class ScaleWorld:
    """A simulated deployment hosting many groups over a sharded tier."""

    def __init__(
        self,
        *,
        latency: Optional[LatencyModel] = None,
        round_duration: float = 1.0,
        shards: int = 1,
    ) -> None:
        self.clock = EventScheduler()
        self.network = SimNetwork(self.clock, latency)
        self.trace = GcsTrace()
        self.round_duration = round_duration
        self.tier = ShardedMembershipTier(
            self.clock, shards=shards, round_duration=round_duration
        )
        self.processes: Dict[ProcessId, MultiGroupProcess] = {}
        self._attached: Set[Tuple[GroupName, ProcessId]] = set()

    # ------------------------------------------------------------------
    # construction and membership
    # ------------------------------------------------------------------

    def add_process(self, pid: ProcessId) -> MultiGroupProcess:
        if pid in self.processes:
            raise ValueError(f"duplicate process {pid!r}")
        process = MultiGroupProcess(pid, self)
        self.processes[pid] = process
        return process

    def add_processes(self, pids: Iterable[ProcessId]) -> List[MultiGroupProcess]:
        return [self.add_process(pid) for pid in pids]

    def _attach(self, group: GroupName, pid: ProcessId) -> None:
        if (group, pid) in self._attached:
            return
        process = self.processes[pid]
        process._runner_for(group)
        self.tier.attach_client(
            group,
            pid,
            on_start_change=lambda cid, members, g=group, pr=process:
                pr._membership_start_change(g, cid, members),
            on_view=lambda view, g=group, pr=process:
                pr._membership_view(g, view),
        )
        self._attached.add((group, pid))

    def join(self, pid: ProcessId, group: GroupName) -> None:
        """Add ``pid`` to ``group``; reconfigures that group only."""
        self._attach(group, pid)
        self.tier.join(group, pid)

    def leave(self, pid: ProcessId, group: GroupName) -> None:
        self.tier.leave(group, pid)

    def set_group(self, group: GroupName, members: Iterable[ProcessId]) -> Optional[View]:
        """Drive ``group`` to exactly ``members`` with a single round."""
        members = list(members)
        for pid in members:
            self._attach(group, pid)
        return self.tier.set_group(group, members)

    def members(self, group: GroupName) -> FrozenSet[ProcessId]:
        return self.tier.members(group)

    def group_view(self, group: GroupName) -> Optional[View]:
        return self.tier.group_view(group)

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------

    def crash(self, pid: ProcessId) -> int:
        """Crash ``pid`` in every group it joined.

        Returns the number of groups reconfigured - by construction only
        the crashed process's own groups, on only the shards owning
        them.
        """
        process = self.processes[pid]
        for runner in process._runners.values():
            if not runner.endpoint.crashed:
                runner.crash()
        return len(self.tier.client_crashed(pid))

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> int:
        return self.clock.run(max_events)

    def now(self) -> float:
        return self.clock.now

    def settled(self, group: GroupName) -> bool:
        """Every member of ``group``'s latest view has installed it."""
        view = self.group_view(group)
        if view is None:
            return False
        return all(
            self.processes[pid].current_view(group) == view for pid in view.members
        )

    def __repr__(self) -> str:
        return (
            f"<ScaleWorld processes={len(self.processes)} "
            f"tier={self.tier!r}>"
        )
