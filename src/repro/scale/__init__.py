"""The scale tier: running the algorithm at n=1000 x g=1000.

This package collects the pieces that make the reproduction *scale*
rather than change what it computes:

* :mod:`repro.scale.overlay` - the §9 two-tier synchronization overlay,
  substrate-agnostic (installs on the
  :class:`~repro.core.runner.EndpointRunner` interceptor seams of any
  deployment), with computed leadership that survives leader crashes;
* :func:`install_overlay` - one call to put the overlay on a
  :class:`~repro.deploy.base.Deployment`, whatever the substrate;
* :mod:`repro.scale.sharding` - group-sharded membership for the
  many-groups regime (see :class:`ShardedMembershipTier`).

See ``docs/ARCHITECTURE.md`` ("Scale tier") for the cost model and the
seams.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Optional, Tuple

from repro.core.runner import EndpointRunner
from repro.deploy.base import Deployment
from repro.scale.overlay import (
    AggregatedSync,
    GroupsLike,
    TwoTierOverlay,
    UpSync,
    auto_leaders,
    balanced_groups,
)
from repro.types import ProcessId

# Real-time substrates (asyncio hub, TCP) run the overlay's batching
# timer on the event loop; one simulated time unit maps to this many
# wall-clock seconds (matching repro.chaos.runner's TIME_SCALES).
REALTIME_SCALE = 0.003


def _overlay_seams(
    deployment: Deployment,
) -> Tuple[
    Dict[ProcessId, EndpointRunner],
    Callable[[float, Callable[[], None]], object],
    Callable[[ProcessId, ProcessId], bool],
]:
    """(runners, timer, connectivity) of a deployment, any substrate.

    The simulator schedules flushes on its virtual clock; the asyncio
    and TCP backends use ``loop.call_later`` scaled by
    :data:`REALTIME_SCALE`.  Connectivity always comes from the
    deployment's unified :class:`~repro.links.LinkCore`.
    """
    world = getattr(deployment, "world", None)
    if world is not None:
        runners = {pid: node.runner for pid, node in world.nodes.items()}
        return runners, world.clock.schedule, deployment.links.connected
    cluster = getattr(deployment, "cluster", None)
    if cluster is not None:
        runners = {pid: node.runner for pid, node in cluster.nodes.items()}

        def schedule(delay: float, callback: Callable[[], None]) -> object:
            return asyncio.get_event_loop().call_later(
                delay * REALTIME_SCALE, callback
            )

        return runners, schedule, deployment.links.connected
    raise TypeError(
        f"cannot find overlay seams on {type(deployment).__name__}; "
        "expected a .world (sim) or .cluster (async/tcp) attribute"
    )


def install_overlay(
    deployment: Deployment,
    *,
    leaders: Optional[int] = None,
    groups: Optional[GroupsLike] = None,
    flush_delay: float = 1.0,
) -> TwoTierOverlay:
    """Install the two-tier sync overlay on any deployment.

    Call after ``setup()`` (the runners must exist).  With neither
    ``leaders`` nor ``groups`` given, the leader count defaults to
    :func:`auto_leaders` (~sqrt(n)) over all processes, split into
    contiguous balanced groups.
    """
    runners, schedule, connected = _overlay_seams(deployment)
    if groups is None:
        pids = sorted(runners)
        count = leaders if leaders is not None else auto_leaders(len(pids))
        groups = balanced_groups(pids, max(1, min(count, len(pids))))
    return TwoTierOverlay(
        runners, schedule, groups, flush_delay=flush_delay, connected=connected
    )


__all__ = [
    "AggregatedSync",
    "REALTIME_SCALE",
    "TwoTierOverlay",
    "UpSync",
    "auto_leaders",
    "balanced_groups",
    "install_overlay",
]
