"""Substrate-agnostic two-tier synchronization overlay (the paper's §9).

    "In order to increase the scalability, we intend to explore ways to
    incorporate a two-tier hierarchy into our algorithm [...] messages
    will be sent by each process to its designated leader, which will in
    turn, aggregate the cut messages into a single message and forward it
    to the other leaders."

:class:`TwoTierOverlay` implements exactly that, over *any* substrate:
it installs on the :class:`~repro.core.runner.EndpointRunner` seams
(``wire_interceptor`` / ``receive_interceptor``), so synchronization
messages ride member -> leader -> other leaders -> members whether the
wire underneath is the discrete-event simulator, the asyncio hub, or
TCP sockets.  The GCS algorithm is untouched - the paper notes it "is
presented at an abstract level that would allow incorporating such
extensions without violating its correctness" - and the overlay
preserves the only property syncs rely on: every synchronization
message eventually reaches every intended recipient with its original
sender attribution.  Only :class:`~repro.core.messages.SyncMsg` is
relayed; view and application messages stay direct, because they carry
the per-channel FIFO discipline Figure 9 threads ``view_msg`` markers
through.

Cost model (n members, L leaders, groups of g = n/L): a
reconfiguration's sync traffic drops from n(n-1) point-to-point messages
to roughly n (up) + L(L-1) (aggregates) + nL (down) - a large saving
when L << n; :func:`auto_leaders` picks L ~ sqrt(n), which minimises the
total.  The price is up to two extra hops plus the leader's batching
delay.

Leadership is *computed, not configured*: the leader of a group, from
any member's standpoint, is the least group member that is alive and
reachable.  When a leader crashes, every member's next synchronization
message routes to the group's new minimum - re-election is a pure
function of the (in-process observable) crash and partition state, so
there is no election protocol to get wrong and no window in which two
members durably disagree.  A fallback timer still flushes incomplete
batches, so a silent member delays but never blocks a reconfiguration.

Aggregates reuse the link layer's batched framing: an
:class:`AggregatedSync` carries a :class:`~repro.links.MessageBatch` of
:class:`UpSync` entries, the same carrier object the three substrates
already coalesce same-link traffic into.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.core.messages import SyncMsg, WireMessage
from repro.core.runner import EndpointRunner
from repro.links import MessageBatch
from repro.types import ProcessId


@dataclass(frozen=True)
class UpSync:
    """Member -> leader: one synchronization message to aggregate."""

    origin: ProcessId
    sync: SyncMsg

    def estimated_size(self) -> int:
        return self.sync.estimated_size()


@dataclass(frozen=True)
class AggregatedSync:
    """Leader -> leader / leader -> member: a batch of :class:`UpSync`."""

    batch: MessageBatch  # of UpSync copies, origin-sorted
    final: bool  # True on the leader->member leg (do not re-forward)

    @property
    def entries(self) -> Tuple[Tuple[ProcessId, SyncMsg], ...]:
        return tuple((up.origin, up.sync) for up in self.batch)

    def estimated_size(self) -> int:
        return sum(up.estimated_size() for up in self.batch)


GroupsLike = Union[
    Mapping[ProcessId, Iterable[ProcessId]], Iterable[Iterable[ProcessId]]
]


def auto_leaders(n: int) -> int:
    """Default leader count for ``n`` members: ~sqrt(n).

    The two-tier sync cost n + L(L-1) + nL is minimised (over integer L)
    near sqrt(n); the exact optimum differs by at most one message in a
    thousand, so the round suffices.
    """
    return max(1, round(math.sqrt(n)))


def balanced_groups(pids: List[ProcessId], leaders: int) -> Dict[ProcessId, List[ProcessId]]:
    """Split ``pids`` into ``leaders`` contiguous groups; first of each leads."""
    pids = sorted(pids)
    if leaders < 1 or leaders > len(pids):
        raise ValueError("need 1 <= leaders <= len(pids)")
    size = (len(pids) + leaders - 1) // leaders
    groups = {}
    for start in range(0, len(pids), size):
        chunk = pids[start:start + size]
        groups[chunk[0]] = chunk
    return groups


class TwoTierOverlay:
    """Install sync aggregation on a set of endpoint runners.

    ``runners`` maps every process to its runner; ``schedule`` is the
    substrate's timer (``(delay, callback)`` in the substrate's own time
    units); ``groups`` is either a mapping of leader -> members (the
    leader key is only a grouping hint - actual leadership is the least
    alive member) or a plain iterable of member groups.  ``connected``
    lets the overlay route around partitions (defaults to
    fully-connected); pass the deployment's ``links.connected``.
    """

    def __init__(
        self,
        runners: Dict[ProcessId, EndpointRunner],
        schedule: Callable[[float, Callable[[], None]], object],
        groups: GroupsLike,
        *,
        flush_delay: float = 1.0,
        connected: Optional[Callable[[ProcessId, ProcessId], bool]] = None,
    ) -> None:
        self.runners = runners
        self.schedule = schedule
        self.flush_delay = flush_delay
        self._connected = connected if connected is not None else (lambda p, q: True)
        if isinstance(groups, Mapping):
            raw_groups = [set(members) | {leader} for leader, members in groups.items()]
        else:
            raw_groups = [set(members) for members in groups]
        self.groups: Tuple[Tuple[ProcessId, ...], ...] = tuple(
            tuple(sorted(group)) for group in raw_groups if group
        )
        self.group_of: Dict[ProcessId, FrozenSet[ProcessId]] = {}
        self._members_of: Dict[ProcessId, Tuple[ProcessId, ...]] = {}
        for group in self.groups:
            member_set = frozenset(group)
            for pid in group:
                self.group_of[pid] = member_set
                self._members_of[pid] = group
        # batch under construction at each aggregator: origin -> sync
        self._pending: Dict[ProcessId, Dict[ProcessId, SyncMsg]] = {}
        self._flush_scheduled: Set[ProcessId] = set()
        # Monotone per-aggregator accept counter; timer snapshots compare
        # against it to tell "still collecting" from "gone silent".
        self._accepts: Dict[ProcessId, int] = {}
        self.aggregates_sent = 0
        self._install()

    # ------------------------------------------------------------------
    # leadership (computed, not configured)
    # ------------------------------------------------------------------

    def _alive(self, pid: ProcessId) -> bool:
        runner = self.runners.get(pid)
        return runner is not None and not runner.endpoint.crashed

    def leader_for(self, pid: ProcessId) -> ProcessId:
        """The leader ``pid`` currently routes through: the least alive,
        reachable member of its group (itself included), falling back to
        the group minimum when the whole group looks dead."""
        members = self._members_of[pid]
        for candidate in members:
            if self._alive(candidate) and (
                candidate == pid or self._connected(pid, candidate)
            ):
                return candidate
        return members[0]

    def current_leaders(self) -> FrozenSet[ProcessId]:
        """The acting leader of each group (for display and tests)."""
        return frozenset(self.leader_for(group[0]) for group in self.groups)

    @property
    def leaders(self) -> FrozenSet[ProcessId]:
        return self.current_leaders()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _install(self) -> None:
        for pid, runner in self.runners.items():
            if pid not in self.group_of:
                continue  # processes outside the hierarchy keep direct syncs
            runner.wire_interceptor = self._make_send_interceptor(pid)
            runner.receive_interceptor = self._make_receive_interceptor(pid)

    def uninstall(self) -> None:
        """Detach from every runner (syncs go direct again)."""
        for pid, runner in self.runners.items():
            if pid in self.group_of:
                runner.wire_interceptor = None
                runner.receive_interceptor = None

    def _make_send_interceptor(self, pid: ProcessId):
        def intercept(targets: FrozenSet[ProcessId], message: WireMessage) -> bool:
            if not isinstance(message, SyncMsg):
                return False
            self._send_up(pid, message)
            return True

        return intercept

    def _make_receive_interceptor(self, pid: ProcessId):
        def intercept(src: ProcessId, message: WireMessage) -> bool:
            if isinstance(message, UpSync):
                self._accept_up(pid, message.origin, message.sync)
                return True
            if isinstance(message, AggregatedSync):
                self._accept_aggregate(pid, message)
                return True
            return False

        return intercept

    def _raw_send(self, src: ProcessId, targets: Iterable[ProcessId], message: object) -> None:
        # The runner's send_wire callback IS the substrate's raw send
        # (interception happens upstream, in the runner's _route), so the
        # overlay needs no per-substrate send adapter.
        self.runners[src]._send_wire(frozenset(targets), message)

    # ------------------------------------------------------------------
    # member logic
    # ------------------------------------------------------------------

    def _send_up(self, pid: ProcessId, sync: SyncMsg) -> None:
        leader = self.leader_for(pid)
        if leader == pid:
            self._accept_up(pid, pid, sync)
        else:
            self._raw_send(pid, {leader}, UpSync(pid, sync))

    # ------------------------------------------------------------------
    # aggregator logic
    # ------------------------------------------------------------------

    def _accept_up(self, aggregator: ProcessId, origin: ProcessId, sync: SyncMsg) -> None:
        pending = self._pending.setdefault(aggregator, {})
        pending[origin] = sync
        self._accepts[aggregator] = self._accepts.get(aggregator, 0) + 1
        if self._batch_complete(aggregator):
            self._flush(aggregator)
        elif aggregator not in self._flush_scheduled:
            self._arm_timer(aggregator)

    def _batch_complete(self, aggregator: ProcessId) -> bool:
        """All group members the aggregator expects to hear from have spoken.

        The expectation is read off the aggregator's own endpoint: the
        alive members of its current start_change that belong to this
        group *and currently route through it*.
        """
        endpoint = self.runners[aggregator].endpoint
        change = getattr(endpoint, "start_change", None)
        if change is None:
            return True  # nothing in progress: flush whatever arrived
        pending = self._pending.get(aggregator, ())
        for member in change.members & self.group_of[aggregator]:
            if member in pending or not self._alive(member):
                continue
            if self.leader_for(member) == aggregator:
                return False
        return True

    def _arm_timer(self, aggregator: ProcessId) -> None:
        """Arm the straggler-flush backstop for ``aggregator``.

        The timer fires in two hops - ``flush_delay`` later, then once
        more at zero delay - so that on a discrete-event substrate every
        message *arriving at the same instant* is processed first: a
        batch whose last sync lands exactly ``flush_delay`` after the
        first is completed and flushed once, not split in two.
        """
        self._flush_scheduled.add(aggregator)
        snapshot = self._accepts.get(aggregator, 0)
        self.schedule(
            self.flush_delay,
            lambda: self.schedule(0.0, lambda: self._timer_flush(aggregator, snapshot)),
        )

    def _timer_flush(self, aggregator: ProcessId, snapshot: int) -> None:
        self._flush_scheduled.discard(aggregator)
        if not self._pending.get(aggregator):
            return
        if (
            self._accepts.get(aggregator, 0) != snapshot
            and not self._batch_complete(aggregator)
        ):
            # Syncs arrived while the timer ran but the batch is still
            # short: progress is being made, give the stragglers one
            # more window instead of splitting the batch.
            self._arm_timer(aggregator)
            return
        self._flush(aggregator)

    def _flush(self, aggregator: ProcessId) -> None:
        pending = self._pending.get(aggregator)
        if not pending or not self._alive(aggregator):
            return
        batch = MessageBatch(
            tuple(UpSync(origin, sync) for origin, sync in sorted(pending.items()))
        )
        self._pending[aggregator] = {}
        remote = self._remote_leaders(aggregator)
        if remote:
            self._raw_send(aggregator, remote, AggregatedSync(batch, final=False))
            self.aggregates_sent += len(remote)
        self._distribute(aggregator, batch)

    def _remote_leaders(self, aggregator: ProcessId) -> Set[ProcessId]:
        """The acting leader of every *other* group the aggregator can reach."""
        own = self.group_of[aggregator]
        remote: Set[ProcessId] = set()
        for group in self.groups:
            if group[0] in own:
                continue
            for candidate in group:
                if self._alive(candidate) and self._connected(aggregator, candidate):
                    remote.add(candidate)
                    break
        return remote

    def _accept_aggregate(self, pid: ProcessId, aggregate: AggregatedSync) -> None:
        if not aggregate.final and self.leader_for(pid) == pid:
            self._distribute(pid, aggregate.batch)
        else:
            self._deliver_entries(pid, aggregate.batch)

    def _distribute(self, leader: ProcessId, batch: MessageBatch) -> None:
        """Leader -> reachable local members (and itself)."""
        followers = frozenset(
            member
            for member in self.group_of[leader]
            if member != leader
            and self._alive(member)
            and self._connected(leader, member)
        )
        if followers:
            self._raw_send(leader, followers, AggregatedSync(batch, final=True))
        self._deliver_entries(leader, batch)

    def _deliver_entries(self, pid: ProcessId, batch: MessageBatch) -> None:
        runner = self.runners[pid]
        if runner.endpoint.crashed:
            return
        runner.receive_batch(
            (up.origin, up.sync) for up in batch if up.origin != pid
        )
