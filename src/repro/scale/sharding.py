"""Group-sharded membership for the many-groups regime (§1, §9).

The paper motivates the client-server architecture with scalability "in
the number of groups": a small tier of membership servers tracks many
multicast groups.  :mod:`repro.groups` realises the client side (one
end-point per joined group over a shared transport) but gave every group
its own private oracle - O(groups) independent services.  This module
supplies the server side at scale:

* :class:`GroupShardMap` - a consistent group -> shard mapping
  (highest-random-weight over ``crc32``, so it is a pure deterministic
  function of the group name and the shard count, stable under resizes);
* :class:`MembershipShard` - one membership server serving many groups,
  with the oracle's Figure 2 discipline (fresh increasing cids, a
  start_change before every view, cancellation of superseded notices)
  and *seedable* counters;
* :class:`ShardedMembershipTier` - the tier: routes every group
  operation to the owning shard only, fans a process crash out to
  exactly the shards owning one of its groups, and - when the tier is
  resized - moves each relocated group with its counter *watermarks*, so
  the successor shard issues cids and view counters strictly above
  anything the predecessor did and Local Monotonicity (Property 3.1)
  survives the move.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro._collections import frozendict
from repro.types import ProcessId, StartChangeId, View, ViewId

GroupName = str

# Client-side hooks, per (group, process): (cid, members) and (view).
StartChangeSink = Callable[[StartChangeId, FrozenSet[ProcessId]], None]
ViewSink = Callable[[View], None]


class GroupShardMap:
    """Consistent group -> shard mapping by highest random weight.

    Every (group, shard) pair gets a deterministic weight; a group lives
    on its highest-weight shard.  Growing the tier from k to k+1 shards
    therefore relocates only the groups whose new shard outweighs all
    old ones - about 1/(k+1) of them - and the mapping needs no stored
    state at all.  Weights are ``crc32`` of the group name (stable
    across interpreter runs, unlike salted ``hash()``) mixed with the
    shard index through a murmur-style finalizer: CRC alone is linear,
    so ``crc32(g|i)`` and ``crc32(g|j)`` differ by a *constant* for all
    same-length names and the resulting placement is badly skewed.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards

    @staticmethod
    def _weight(group_hash: int, index: int) -> int:
        x = (group_hash ^ (index * 0x9E3779B9)) & 0xFFFFFFFF
        x = (x * 0x85EBCA6B) & 0xFFFFFFFF
        x ^= x >> 13
        x = (x * 0xC2B2AE35) & 0xFFFFFFFF
        x ^= x >> 16
        return x

    def shard_of(self, group: GroupName) -> int:
        group_hash = zlib.crc32(group.encode("utf-8"))
        return max(
            range(self.shards),
            key=lambda index: (self._weight(group_hash, index), -index),
        )

    def placement(self, groups: Iterable[GroupName]) -> Dict[GroupName, int]:
        return {group: self.shard_of(group) for group in groups}


class _SeededCounter:
    """A monotone counter whose floor can be raised (watermark seeding)."""

    __slots__ = ("next_value",)

    def __init__(self, start: int = 1) -> None:
        self.next_value = start

    def __next__(self) -> int:
        value = self.next_value
        self.next_value = value + 1
        return value

    def seed(self, floor: int) -> None:
        """Ensure every future value exceeds ``floor``."""
        if floor >= self.next_value:
            self.next_value = floor + 1

    @property
    def last(self) -> int:
        return self.next_value - 1


class MembershipShard:
    """One membership server of a sharded tier, serving many groups.

    Scheduling mirrors :class:`~repro.membership.oracle.OracleMembership`
    (start_change after ``detection_delay``, view after a further
    ``round_duration``, superseded notices cancelled), but all registries
    are keyed per ``(group, pid)`` end-point and both counters are
    :class:`_SeededCounter` instances, so a group arriving from another
    shard can raise the floors above its old watermarks.
    """

    def __init__(
        self,
        index: int,
        clock,
        crashed: Set[ProcessId],
        *,
        detection_delay: float = 0.0,
        round_duration: float = 1.0,
    ) -> None:
        self.index = index
        self.clock = clock
        self.detection_delay = detection_delay
        self.round_duration = round_duration
        # Shared with the tier: a crash is a process-level fact, visible
        # to every shard serving one of the process's groups.
        self._crashed = crashed
        self._cid = _SeededCounter()
        self._counter = _SeededCounter()
        self.groups: Set[GroupName] = set()
        self._sinks: Dict[Tuple[GroupName, ProcessId], Tuple[StartChangeSink, ViewSink]] = {}
        self._pending: Dict[Tuple[GroupName, ProcessId], List] = {}
        self._group_views: Dict[GroupName, View] = {}
        self.views_formed: List[View] = []

    # ------------------------------------------------------------------
    # group ownership
    # ------------------------------------------------------------------

    def adopt(self, group: GroupName, *, cid_floor: int = 0, counter_floor: int = 0) -> None:
        """Take ownership of ``group``, with its predecessor's watermarks."""
        self.groups.add(group)
        self._cid.seed(cid_floor)
        self._counter.seed(counter_floor)

    def release(self, group: GroupName) -> Tuple[int, int]:
        """Drop ``group``; return the ``(cid, counter)`` watermarks.

        Pending notices for the group are cancelled - a shard must never
        speak for a group it no longer owns.
        """
        self.groups.discard(group)
        for key in [key for key in self._pending if key[0] == group]:
            for event in self._pending.pop(key, []):
                event.cancel()
        for key in [key for key in self._sinks if key[0] == group]:
            del self._sinks[key]
        self._group_views.pop(group, None)
        return (self._cid.last, self._counter.last)

    def watermarks(self) -> Tuple[int, int]:
        return (self._cid.last, self._counter.last)

    # ------------------------------------------------------------------
    # clients and reconfiguration
    # ------------------------------------------------------------------

    def attach_client(
        self,
        group: GroupName,
        pid: ProcessId,
        on_start_change: StartChangeSink,
        on_view: ViewSink,
    ) -> None:
        self._sinks[(group, pid)] = (on_start_change, on_view)

    def group_view(self, group: GroupName) -> Optional[View]:
        return self._group_views.get(group)

    def reconfigure(self, group: GroupName, members: Iterable[ProcessId]) -> Optional[View]:
        """Form the next view of ``group``; notices are scheduled."""
        if group not in self.groups:
            raise ValueError(f"shard {self.index} does not own group {group!r}")
        member_set = frozenset(members) - self._crashed
        if not member_set:
            return None
        detect = self.detection_delay
        round_end = detect + self.round_duration
        for pid in member_set:
            self._cancel_pending(group, pid)
        cids: Dict[ProcessId, StartChangeId] = {}
        for pid in sorted(member_set):
            cids[pid] = next(self._cid)
        # The origin component records provenance; ordering is carried by
        # the counter alone (watermark seeding keeps it strictly
        # increasing per group, even across shard moves).
        view = View(
            ViewId(next(self._counter), f"s{self.index}"),
            member_set,
            frozendict(cids),
        )
        self._group_views[group] = view
        self.views_formed.append(view)
        for pid in sorted(member_set):
            self._schedule_start_change(group, pid, detect, cids[pid], member_set)
            self._schedule_view(group, pid, round_end, view)
        return view

    # ------------------------------------------------------------------
    # scheduling (the oracle's cancellable-notice discipline)
    # ------------------------------------------------------------------

    def _cancel_pending(self, group: GroupName, pid: ProcessId) -> None:
        for event in self._pending.pop((group, pid), []):
            event.cancel()

    def _schedule_start_change(
        self,
        group: GroupName,
        pid: ProcessId,
        delay: float,
        cid: StartChangeId,
        members: FrozenSet[ProcessId],
    ) -> None:
        def fire() -> None:
            if pid in self._crashed:
                return
            sink = self._sinks.get((group, pid))
            if sink is not None:
                sink[0](cid, members)

        event = self.clock.schedule(delay, fire)
        self._pending.setdefault((group, pid), []).append(event)

    def _schedule_view(self, group: GroupName, pid: ProcessId, delay: float, view: View) -> None:
        def fire() -> None:
            if pid in self._crashed:
                return
            sink = self._sinks.get((group, pid))
            if sink is not None:
                sink[1](view)

        event = self.clock.schedule(delay, fire)
        self._pending.setdefault((group, pid), []).append(event)

    def __repr__(self) -> str:
        return (
            f"<MembershipShard {self.index} groups={len(self.groups)} "
            f"watermarks={self.watermarks()}>"
        )


class ShardedMembershipTier:
    """Many groups, few membership servers: state sharded by group.

    Every group operation touches exactly one shard (the owner); a
    process-level event (crash, recovery) fans out to exactly the shards
    owning one of the process's groups - never the whole tier.
    """

    def __init__(
        self,
        clock,
        *,
        shards: int = 1,
        detection_delay: float = 0.0,
        round_duration: float = 1.0,
    ) -> None:
        self.clock = clock
        self.detection_delay = detection_delay
        self.round_duration = round_duration
        self._crashed: Set[ProcessId] = set()
        self.map = GroupShardMap(shards)
        self.shards: List[MembershipShard] = [
            self._make_shard(index) for index in range(shards)
        ]
        self._members: Dict[GroupName, Set[ProcessId]] = {}
        self._groups_of: Dict[ProcessId, Set[GroupName]] = {}
        # Master sink registry, so a relocated group can be re-attached
        # at its successor shard.
        self._sinks: Dict[Tuple[GroupName, ProcessId], Tuple[StartChangeSink, ViewSink]] = {}
        # The durable half of the sharded service: per-group (cid,
        # counter) floors recorded at every view formation and every
        # relocation.  A shard rebuilt after losing its volatile state
        # (:meth:`rebuild_shard`) is seeded from here, so the first cid
        # and view counter it issues are strictly above anything the
        # group's members have seen - the sharded analogue of
        # :class:`repro.membership.state.WatermarkStore`.
        self.floors: Dict[GroupName, Tuple[int, int]] = {}

    def _make_shard(self, index: int) -> MembershipShard:
        return MembershipShard(
            index,
            self.clock,
            self._crashed,
            detection_delay=self.detection_delay,
            round_duration=self.round_duration,
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def shard_of(self, group: GroupName) -> MembershipShard:
        shard = self.shards[self.map.shard_of(group)]
        if group not in shard.groups:
            cid_floor, counter_floor = self.floors.get(group, (0, 0))
            shard.adopt(group, cid_floor=cid_floor, counter_floor=counter_floor)
        return shard

    def _reconfigure(self, group: GroupName, members: Iterable[ProcessId]) -> Optional[View]:
        """Reconfigure at the owner and record the new durable floor."""
        shard = self.shard_of(group)
        view = shard.reconfigure(group, members)
        if view is not None:
            self._observe(group, shard)
        return view

    def _observe(self, group: GroupName, shard: MembershipShard) -> None:
        cid, counter = shard.watermarks()
        old_cid, old_counter = self.floors.get(group, (0, 0))
        self.floors[group] = (max(old_cid, cid), max(old_counter, counter))

    def members(self, group: GroupName) -> FrozenSet[ProcessId]:
        return frozenset(self._members.get(group, set()))

    def group_view(self, group: GroupName) -> Optional[View]:
        return self.shard_of(group).group_view(group)

    def views_formed(self) -> int:
        """Total views formed across all shards."""
        return sum(len(shard.views_formed) for shard in self.shards)

    # ------------------------------------------------------------------
    # group membership
    # ------------------------------------------------------------------

    def attach_client(
        self,
        group: GroupName,
        pid: ProcessId,
        on_start_change: StartChangeSink,
        on_view: ViewSink,
    ) -> None:
        self._sinks[(group, pid)] = (on_start_change, on_view)
        self.shard_of(group).attach_client(group, pid, on_start_change, on_view)

    def join(self, group: GroupName, pid: ProcessId) -> Optional[View]:
        """Add ``pid`` to ``group``; reconfigure that group (one shard)."""
        self._members.setdefault(group, set()).add(pid)
        self._groups_of.setdefault(pid, set()).add(group)
        return self._reconfigure(group, self._members[group])

    def set_group(self, group: GroupName, members: Iterable[ProcessId]) -> Optional[View]:
        """Drive ``group`` to exactly ``members`` with a single round.

        The bulk counterpart of :meth:`join`/:meth:`leave`: one
        reconfiguration however many members change - what E19 uses to
        populate a thousand groups without a thousand rounds each.
        """
        member_set = set(members)
        old = self._members.get(group, set())
        for pid in old - member_set:
            self._groups_of.get(pid, set()).discard(group)
        for pid in member_set - old:
            self._groups_of.setdefault(pid, set()).add(group)
        self._members[group] = member_set
        if not member_set:
            return None
        return self._reconfigure(group, member_set)

    def leave(self, group: GroupName, pid: ProcessId) -> Optional[View]:
        members = self._members.get(group, set())
        members.discard(pid)
        self._groups_of.get(pid, set()).discard(group)
        if not members:
            return None
        return self._reconfigure(group, members)

    def reconfigure_group(self, group: GroupName) -> Optional[View]:
        """Re-form ``group``'s view from its current (non-crashed) members."""
        members = self._members.get(group)
        if not members:
            return None
        return self._reconfigure(group, members)

    # ------------------------------------------------------------------
    # process-level events (fan out to owning shards only)
    # ------------------------------------------------------------------

    def client_crashed(self, pid: ProcessId, *, reconfigure: bool = True) -> List[View]:
        """Mark ``pid`` crashed; reconfigure exactly its groups' shards."""
        self._crashed.add(pid)
        views: List[View] = []
        if reconfigure:
            for group in sorted(self._groups_of.get(pid, ())):
                view = self.reconfigure_group(group)
                if view is not None:
                    views.append(view)
        return views

    def client_recovered(self, pid: ProcessId, *, reconfigure: bool = True) -> List[View]:
        self._crashed.discard(pid)
        views: List[View] = []
        if reconfigure:
            for group in sorted(self._groups_of.get(pid, ())):
                view = self.reconfigure_group(group)
                if view is not None:
                    views.append(view)
        return views

    # ------------------------------------------------------------------
    # resizing (watermark-seeded moves)
    # ------------------------------------------------------------------

    def resize(self, shards: int) -> Dict[GroupName, Tuple[int, int]]:
        """Grow (or shrink) the tier; relocate only the groups that move.

        Each relocated group leaves its old shard with that shard's
        counter watermarks and seeds them into its new owner, so the
        first cid and view counter issued after the move are strictly
        greater than anything the group's members have seen - Local
        Monotonicity holds across the move.  Returns the moved groups
        with the watermarks they carried.
        """
        old_map = self.map
        new_map = GroupShardMap(shards)
        while len(self.shards) < shards:
            self.shards.append(self._make_shard(len(self.shards)))
        moved: Dict[GroupName, Tuple[int, int]] = {}
        for group in sorted(self._members):
            old_index = old_map.shard_of(group)
            new_index = new_map.shard_of(group)
            if old_index == new_index:
                continue
            watermarks = self.shards[old_index].release(group)
            stored = self.floors.get(group, (0, 0))
            floors = (max(watermarks[0], stored[0]), max(watermarks[1], stored[1]))
            self.floors[group] = floors
            successor = self.shards[new_index]
            successor.adopt(group, cid_floor=floors[0], counter_floor=floors[1])
            for (sink_group, pid), sinks in self._sinks.items():
                if sink_group == group:
                    successor.attach_client(group, pid, *sinks)
            moved[group] = floors
        self.map = new_map
        return moved

    def rebuild_shard(self, index: int) -> MembershipShard:
        """Replace shard ``index`` with a fresh one that lost all
        volatile state - a shard crash, in the Section 8 sense.

        Pending notices of the dead shard are cancelled (it must never
        speak again) and its groups are re-adopted at the tier's durable
        floors with their client sinks reattached, so the first view the
        rebuilt shard forms is strictly above anything its predecessor
        issued.
        """
        old = self.shards[index]
        owned = sorted(old.groups)
        for group in owned:
            old.release(group)  # cancellation only; floors are the memory
        fresh = self._make_shard(index)
        self.shards[index] = fresh
        for group in owned:
            cid_floor, counter_floor = self.floors.get(group, (0, 0))
            fresh.adopt(group, cid_floor=cid_floor, counter_floor=counter_floor)
            for (sink_group, pid), sinks in self._sinks.items():
                if sink_group == group:
                    fresh.attach_client(group, pid, *sinks)
        return fresh

    def __repr__(self) -> str:
        return (
            f"<ShardedMembershipTier shards={len(self.shards)} "
            f"groups={len(self._members)} views={self.views_formed()}>"
        )
