"""Model-testing harness: the paper's Figure 8 composition, executable.

``ModelHarness`` assembles the complete closed system - MBRSHP and
CO_RFIFO specification automata as the environment, a GCS end-point and a
blocking client per process - exactly the composition the paper reasons
about, hides the internal interface, runs it under an adversarial or fair
scheduler, and exposes the observable behaviour as a
:class:`~repro.checking.events.GcsTrace` for the property checkers.

This is the workhorse of the test suite and the hypothesis properties:
one object builds a system, injects membership behaviours, runs seeded
schedules, and checks every safety property, invariant and refinement.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Type

from repro.checking.events import (
    BlockEvent,
    BlockOkEvent,
    CrashEvent,
    DeliverEvent,
    GcsTrace,
    MbrshpStartChangeEvent,
    MbrshpViewEvent,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.checking.invariants import WorldView, check_invariants, invariant_hook
from repro.checking.properties import check_all_safety, check_mbrshp_conformance
from repro.checking.refinement import attach_refinement_checkers
from repro.core.forwarding import ForwardingStrategy
from repro.core.gcs_endpoint import GcsEndpoint
from repro.ioa import Action, Composition, FairScheduler, RandomScheduler, Trace
from repro.spec.client import ScriptedClient
from repro.spec.co_rfifo import CoRfifoSpec
from repro.spec.mbrshp import MbrshpSpec, MembershipDriver
from repro.types import ProcessId, View


def ioa_trace_to_gcs_trace(trace: Trace) -> GcsTrace:
    """Project an IOA composition trace onto the observable GCS events."""
    out = GcsTrace()
    for event in trace:
        action = event.action
        time = float(event.index)
        name = action.name
        if name == "send":
            p, payload = action.params
            out.append(SendEvent(time, p, payload))
        elif name == "deliver":
            p, sender, payload = action.params
            out.append(DeliverEvent(time, p, sender, payload))
        elif name == "view":
            p, view = action.params[0], action.params[1]
            T = frozenset(action.params[2]) if len(action.params) > 2 else frozenset()
            out.append(ViewEvent(time, p, view, T))
        elif name == "block":
            out.append(BlockEvent(time, action.params[0]))
        elif name == "block_ok":
            out.append(BlockOkEvent(time, action.params[0]))
        elif name == "mbrshp.view":
            p, view = action.params
            out.append(MbrshpViewEvent(time, p, view))
        elif name == "mbrshp.start_change":
            p, cid, members = action.params
            out.append(MbrshpStartChangeEvent(time, p, cid, frozenset(members)))
        elif name == "crash":
            out.append(CrashEvent(time, action.params[0]))
        elif name == "recover":
            out.append(RecoverEvent(time, action.params[0]))
    return out


def enabled_cache_validation_hook(system: Composition, owner, action: Action) -> None:
    """Step hook asserting the incremental enabled-set cache is exact.

    After every executed step, the cached enabled set must equal the
    reflective no-cache oracle - same (owner, action) pairs, same order.
    Wire it into a scheduler (``scheduler(..., validate_cache=True)``)
    for differential testing; it is far too slow for production runs.
    """
    cached = [(c.name, a) for c, a in system.enabled_actions()]
    naive = [(c.name, a) for c, a in system.naive_enabled_actions()]
    assert cached == naive, (
        f"enabled-set cache diverged after {action!r}:\n"
        f"  cached: {cached}\n  oracle: {naive}"
    )


class ModelHarness:
    """A closed model of the whole service for one set of processes."""

    def __init__(
        self,
        processes: Sequence[ProcessId],
        *,
        seed: int = 0,
        strict: bool = True,
        forwarding: Optional[ForwardingStrategy] = None,
        endpoint_cls: Type[GcsEndpoint] = GcsEndpoint,
        scripts: Optional[Dict[ProcessId, List[Any]]] = None,
    ) -> None:
        self.processes = list(processes)
        self.seed = seed
        self.mbrshp = MbrshpSpec(self.processes)
        self.net = CoRfifoSpec(self.processes, link_membership=True)
        self.endpoints: Dict[ProcessId, GcsEndpoint] = {}
        for p in self.processes:
            kwargs: Dict[str, Any] = {"strict": strict}
            if forwarding is not None:
                kwargs["forwarding"] = forwarding
            self.endpoints[p] = endpoint_cls(p, **kwargs)
        scripts = scripts or {}
        self.clients = {
            p: ScriptedClient(p, script=scripts.get(p, [])) for p in self.processes
        }
        self.system = Composition(
            [self.mbrshp, self.net]
            + list(self.endpoints.values())
            + list(self.clients.values())
        )
        self.driver = MembershipDriver(self.mbrshp, seed=seed)
        self.world = WorldView.from_composition(self.system)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def scheduler(
        self,
        kind: str = "random",
        seed: Optional[int] = None,
        *,
        validate_cache: bool = False,
    ):
        seed = self.seed if seed is None else seed
        if kind == "random":
            scheduler = RandomScheduler(self.system, seed=seed)
        elif kind == "fair":
            scheduler = FairScheduler(self.system, seed=seed)
        else:
            raise ValueError(f"unknown scheduler kind {kind!r}")
        if validate_cache:
            scheduler.add_hook(enabled_cache_validation_hook)
        return scheduler

    def inject_membership(self, actions: Iterable[Action]) -> None:
        """Execute membership output actions through the composition."""
        for action in actions:
            self.system.execute(self.mbrshp, action)

    def form_view(self, members: Iterable[ProcessId]) -> View:
        view, actions = self.driver.form_view(members)
        self.inject_membership(actions)
        return view

    def run_to_quiescence(
        self,
        kind: str = "fair",
        max_steps: int = 50_000,
        hooks: Iterable[Any] = (),
    ) -> int:
        scheduler = self.scheduler(kind)
        for hook in hooks:
            scheduler.add_hook(hook)
        return scheduler.run(max_steps=max_steps)

    # ------------------------------------------------------------------
    # observation and checking
    # ------------------------------------------------------------------

    def gcs_trace(self) -> GcsTrace:
        return ioa_trace_to_gcs_trace(self.system.trace)

    def check_safety(self) -> None:
        check_all_safety(self.gcs_trace(), self.processes)

    def check_mbrshp(self) -> None:
        """Replay the membership notices through a fresh Figure 2 spec.

        Trivially true for behaviours generated by the in-model
        ``MbrshpSpec`` itself, but a real check for traces imported from
        deployments (and a guard against projection bugs in
        :func:`ioa_trace_to_gcs_trace`).
        """
        check_mbrshp_conformance(self.gcs_trace(), self.processes)

    def check_invariants(self) -> None:
        check_invariants(self.world)

    def invariant_hook(self):
        return invariant_hook(self.world)

    def attach_refinements(self, scheduler) -> None:
        attach_refinement_checkers(scheduler, self.world)

    def views_delivered(self, p: ProcessId) -> List[View]:
        return [e.view for e in self.gcs_trace().views_at(p)]
