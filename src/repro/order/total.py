"""Totally ordered multicast over the virtually synchronous FIFO service.

Fixed-sequencer protocol, per view:

* every member multicasts ``("to-data", k, payload)`` where ``k`` is its
  k-th data message in the current view;
* the *sequencer* - deterministically the least member of the view -
  multicasts ``("to-order", n, msg_id)`` assigning global sequence
  numbers in the order it delivers the data;
* everyone delivers payloads strictly in sequence-number order, buffering
  whichever of the data/order pair arrives first.

A data message is identified by ``(vid, sender, k)`` where ``vid`` is the
view in which the GCS delivered it - the same at every receiver, because
the service delivers messages in the view they were sent.

Virtual synchrony is what makes the view change safe: members moving
together deliver the *same* set of data and order messages in the old
view, so they agree exactly on which data remain unordered; the new
sequencer (least member of the new view) assigns those deterministically
sorted leftovers fresh numbers before any new-view data.  Members of the
transitional set therefore continue with identical total orders and no
extra agreement round - precisely the continuation the paper's Section
4.1.2 describes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ClientMisuseError
from repro.types import ProcessId, View, ViewId, initial_view

DATA = "to-data"
ORDER = "to-order"

# (view id at delivery, sender, per-sender index): globally unique.
MsgId = Tuple[ViewId, ProcessId, int]


class TotalOrderNode:
    """A group member delivering application payloads in total order."""

    def __init__(
        self,
        member: Any,
        on_deliver: Optional[Callable[[ProcessId, Any], None]] = None,
        on_view: Optional[Callable[[View, FrozenSet[ProcessId]], None]] = None,
    ) -> None:
        self.member = member
        self.pid: ProcessId = member.pid
        self._app_deliver = on_deliver
        self._app_view = on_view
        self.view: View = initial_view(self.pid)
        self.sequencer: ProcessId = self.pid
        # sending side
        self._next_local_index = 1
        # receiving side
        self._data: Dict[MsgId, Any] = {}
        self._order: Dict[int, MsgId] = {}
        self._delivered_ids: Set[MsgId] = set()
        self._next_seq_to_deliver = 1
        # sequencer side
        self._next_seq_to_assign = 1
        self._sequenced: Set[MsgId] = set()
        # payloads the application offered while the GCS had us blocked;
        # re-sent (with fresh indices) once the new view unblocks us.
        self._outbox: List[Any] = []
        self.delivered: List[Tuple[ProcessId, Any]] = []
        member.set_app(on_deliver=self._gcs_deliver, on_view=self._gcs_view)

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------

    def broadcast(self, payload: Any) -> None:
        """Multicast ``payload`` for totally ordered delivery.

        If a view change has the GCS blocked, the payload is parked and
        re-sent as soon as the new view unblocks the application.
        """
        try:
            self.member.send((DATA, self._next_local_index, payload))
        except ClientMisuseError:
            self._outbox.append(payload)
            return
        self._next_local_index += 1

    def total_order(self) -> List[Tuple[ProcessId, Any]]:
        """The totally ordered (sender, payload) deliveries so far."""
        return list(self.delivered)

    # ------------------------------------------------------------------
    # GCS callbacks
    # ------------------------------------------------------------------

    def _gcs_deliver(self, sender: ProcessId, message: Any) -> None:
        kind = message[0]
        if kind == DATA:
            _tag, index, payload = message
            msg_id: MsgId = (self.view.vid, sender, index)
            self._data[msg_id] = payload
            if self.pid == self.sequencer:
                self._assign(msg_id)
            self._drain()
        elif kind == ORDER:
            _tag, seq, msg_id = message
            self._order[seq] = msg_id
            self._drain()

    def _gcs_view(self, view: View, transitional: FrozenSet[ProcessId]) -> None:
        # Everyone moving together processed identical data/order sets in
        # the old view (Virtual Synchrony), so this handover computes the
        # same leftovers - data delivered but never ordered - everywhere.
        leftovers = sorted(m for m in self._data if m not in self._delivered_ids)
        self.view = view
        self.sequencer = min(view.members)
        self._next_local_index = 1
        self._order = {}
        self._next_seq_to_deliver = 1
        self._next_seq_to_assign = 1
        self._sequenced = set()
        self._data = {m: self._data[m] for m in leftovers}
        if self._app_view is not None:
            self._app_view(view, transitional)
        if self.pid == self.sequencer:
            for msg_id in leftovers:
                self._assign(msg_id)
        self._drain()
        outbox, self._outbox = self._outbox, []
        for payload in outbox:
            self.broadcast(payload)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _assign(self, msg_id: MsgId) -> None:
        if msg_id in self._sequenced or msg_id in self._delivered_ids:
            return
        try:
            self.member.send((ORDER, self._next_seq_to_assign, msg_id))
        except ClientMisuseError:
            # Blocked mid-change: the data stays unordered and becomes a
            # leftover that the (possibly new) sequencer reassigns after
            # the view - dropping here is safe, not lossy.
            return
        self._sequenced.add(msg_id)
        self._next_seq_to_assign += 1

    def _drain(self) -> None:
        while self._next_seq_to_deliver in self._order:
            msg_id = self._order[self._next_seq_to_deliver]
            if msg_id in self._delivered_ids:
                # stale assignment (e.g. a recovered ex-sequencer re-offered
                # an id we already delivered): skip the slot
                self._next_seq_to_deliver += 1
                continue
            if msg_id not in self._data:
                return  # order arrived before the data; wait for it
            payload = self._data.pop(msg_id)
            self._delivered_ids.add(msg_id)
            self._next_seq_to_deliver += 1
            self.delivered.append((msg_id[1], payload))
            if self._app_deliver is not None:
                self._app_deliver(msg_id[1], payload)
