"""Stronger ordering layers built on the FIFO service.

The paper deliberately provides FIFO multicast "since FIFO is a basic
service upon which one can build stronger services", citing the totally
ordered multicast of [13] as implementable atop WV_RFIFO (Section 4.1.1).
This package supplies two such layers, as library-grade applications of
the GCS:

* :class:`~repro.order.total.TotalOrderNode` - total order within each
  view via a deterministic fixed sequencer (the least view member);
  virtual synchrony makes the sequencer handover safe.
* :class:`~repro.order.causal.CausalOrderNode` - causal order within each
  view via vector clocks; the GCS's per-sender FIFO covers the
  same-sender component, the vector delays cross-sender deliveries.

Both work against any object with the group-member interface (``pid``,
``send(payload)``, ``set_app(on_deliver, on_view)``) - e.g. a
:class:`~repro.net.world.SimNode`.
"""

from repro.order.causal import CausalOrderNode
from repro.order.total import TotalOrderNode

__all__ = ["CausalOrderNode", "TotalOrderNode"]
