"""Causally ordered multicast over the virtually synchronous FIFO service.

Vector-clock protocol, per view: each member tags its k-th data message
with the vector of messages it had *delivered* from each member before
sending.  A receiver delays a message until its own delivered-vector
dominates the tag (excluding the sender's own component, which the GCS's
per-sender FIFO already sequences).

Virtual synchrony makes the per-view vectors sound: members moving
together delivered identical message sets in the old view, so starting
every vector from zero at each view change preserves causality across
views for the surviving members - any message causally before ``m`` and
sent in an earlier view was delivered before the view change everywhere.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ClientMisuseError
from repro.types import ProcessId, View, initial_view

CAUSAL = "co-data"


class CausalOrderNode:
    """A group member delivering application payloads in causal order."""

    def __init__(
        self,
        member: Any,
        on_deliver: Optional[Callable[[ProcessId, Any], None]] = None,
        on_view: Optional[Callable[[View, FrozenSet[ProcessId]], None]] = None,
    ) -> None:
        self.member = member
        self.pid: ProcessId = member.pid
        self._app_deliver = on_deliver
        self._app_view = on_view
        self.view: View = initial_view(self.pid)
        self._delivered_counts: Dict[ProcessId, int] = {}
        self._pending: List[Tuple[ProcessId, Dict[ProcessId, int], Any]] = []
        self._outbox: List[Any] = []
        self.delivered: List[Tuple[ProcessId, Any]] = []
        member.set_app(on_deliver=self._gcs_deliver, on_view=self._gcs_view)

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------

    def broadcast(self, payload: Any) -> None:
        """Multicast ``payload`` for causally ordered delivery."""
        tag = dict(self._delivered_counts)
        try:
            self.member.send((CAUSAL, tag, payload))
        except ClientMisuseError:
            self._outbox.append(payload)

    # ------------------------------------------------------------------
    # GCS callbacks
    # ------------------------------------------------------------------

    def _gcs_deliver(self, sender: ProcessId, message: Any) -> None:
        if message[0] != CAUSAL:
            return
        _tag, vector, payload = message
        self._pending.append((sender, vector, payload))
        self._drain()

    def _gcs_view(self, view: View, transitional: FrozenSet[ProcessId]) -> None:
        # Within-view delivery plus Virtual Synchrony means nothing causal
        # can be pending across the change for co-movers; reset vectors.
        self.view = view
        self._delivered_counts = {}
        self._pending = []
        if self._app_view is not None:
            self._app_view(view, transitional)
        outbox, self._outbox = self._outbox, []
        for payload in outbox:
            self.broadcast(payload)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _deliverable(self, sender: ProcessId, vector: Dict[ProcessId, int]) -> bool:
        for origin, count in vector.items():
            if origin == sender:
                continue  # same-sender order is the GCS's FIFO guarantee
            if self._delivered_counts.get(origin, 0) < count:
                return False
        return True

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for entry in list(self._pending):
                sender, vector, payload = entry
                if not self._deliverable(sender, vector):
                    continue
                self._pending.remove(entry)
                self._delivered_counts[sender] = self._delivered_counts.get(sender, 0) + 1
                self.delivered.append((sender, payload))
                if self._app_deliver is not None:
                    self._app_deliver(sender, payload)
                progressed = True
