"""Small immutable / specialised collections used across the package.

Two data structures recur throughout the paper's pseudo-code:

* an immutable mapping (views carry a ``startId`` function; views must be
  hashable and compare by value), provided here as :class:`frozendict`;
* the per-sender, per-view message buffer ``msgs[q][v]`` which the paper
  indexes from 1 and which may contain *holes* when forwarded messages
  arrive out of order, provided here as :class:`MessageLog`.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class frozendict(Mapping[K, V]):
    """A hashable, immutable mapping.

    Equality and hashing are by value, so two views built independently
    with the same ``startId`` bindings compare equal - exactly the paper's
    "two views are the same iff they consist of identical triples".
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        self._data: dict[K, V] = dict(*args, **kwargs)
        self._hash: Optional[int] = None

    def __getitem__(self, key: K) -> V:
        return self._data[key]

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._data.items()))
        return self._hash

    def __reduce__(self):
        # Tuple-based pickling: much cheaper than the generic slotted-class
        # protocol, and views (which embed frozendicts) are pickled on the
        # strict-mode hot path.  The cached hash is recomputed on demand.
        return (frozendict, (self._data,))

    def __repr__(self) -> str:
        items = ", ".join(f"{k!r}: {v!r}" for k, v in sorted(self._data.items(), key=repr))
        return f"frozendict({{{items}}})"

    def set(self, key: K, value: V) -> "frozendict[K, V]":
        """Return a copy with ``key`` bound to ``value``."""
        data = dict(self._data)
        data[key] = value
        return frozendict(data)

    def discard(self, key: K) -> "frozendict[K, V]":
        """Return a copy without ``key`` (no error if absent)."""
        data = dict(self._data)
        data.pop(key, None)
        return frozendict(data)


class MessageLog:
    """The paper's ``msgs[q][v]`` buffer: a 1-indexed sequence with holes.

    Original messages are appended in FIFO order; forwarded messages may be
    stored at an arbitrary index (possibly creating holes that are filled
    later).  The key derived quantity is :meth:`longest_prefix` - the paper's
    ``LongestPrefixOf(msgs[q][v])`` - the largest ``i`` such that indices
    ``1..i`` all hold messages.
    """

    __slots__ = ("_items", "_prefix", "_base")

    def __init__(self) -> None:
        self._items: list[Any] = []
        # Number of leading indices discarded by :meth:`truncate_through`
        # (acknowledgement-based garbage collection); logical index i lives
        # at physical slot i - _base - 1.
        self._base = 0
        # Cached length (logical) of the gap-free prefix; only advances.
        self._prefix = 0

    def __len__(self) -> int:
        """Highest logical index that has ever been written (holes included)."""
        return self._base + len(self._items)

    def __bool__(self) -> bool:
        return len(self) > 0

    def get(self, index: int) -> Any:
        """The message at 1-based ``index``; ``None`` for holes or truncated."""
        slot = index - self._base - 1
        if slot < 0 or slot >= len(self._items):
            return None
        return self._items[slot]

    def append(self, message: Any) -> int:
        """Append at the next index and return that index."""
        self._items.append(message)
        self._advance_prefix()
        return len(self)

    def put(self, index: int, message: Any) -> None:
        """Store ``message`` at 1-based ``index``, growing with holes if needed.

        Storing ``None`` is disallowed; re-storing an occupied slot keeps the
        existing message (forwarded copies are identical by Invariant 6.6),
        and writes at or below the truncation point are dropped (the message
        is already known to be delivered everywhere).
        """
        if message is None:
            raise ValueError("cannot store None in a MessageLog")
        if index < 1:
            raise IndexError(f"MessageLog indices start at 1, got {index}")
        slot = index - self._base - 1
        if slot < 0:
            return  # below the acknowledged floor: globally delivered
        while len(self._items) <= slot:
            self._items.append(None)
        if self._items[slot] is None:
            self._items[slot] = message
            self._advance_prefix()

    def longest_prefix(self) -> int:
        """The paper's ``LongestPrefixOf``: length of the gap-free prefix.

        Logical: truncated entries still count (they were present).
        """
        return self._prefix

    def last_index(self) -> int:
        """The paper's ``LastIndexOf``: the highest written logical index."""
        return len(self)

    def has(self, index: int) -> bool:
        """True when 1-based ``index`` currently holds a message."""
        slot = index - self._base - 1
        return 0 <= slot < len(self._items) and self._items[slot] is not None

    def prefix_items(self) -> list[Any]:
        """The *retained* messages of the gap-free prefix, in order."""
        return self._items[: max(0, self._prefix - self._base)]

    def truncate_through(self, index: int) -> int:
        """Discard entries at logical indices <= ``index``; return count.

        Only the known gap-free prefix may be truncated - callers GC
        messages proven delivered everywhere, which are necessarily below
        ``longest_prefix()``.
        """
        upto = min(index, self._prefix)
        drop = upto - self._base
        if drop <= 0:
            return 0
        del self._items[:drop]
        self._base = upto
        return drop

    @property
    def truncated_through(self) -> int:
        """The highest logical index discarded by garbage collection."""
        return self._base

    def retained(self) -> int:
        """Entries currently held in memory (the GC experiments' metric)."""
        return sum(1 for item in self._items if item is not None)

    def _advance_prefix(self) -> None:
        items = self._items
        i = max(self._prefix - self._base, 0)
        while i < len(items) and items[i] is not None:
            i += 1
        self._prefix = self._base + i

    def __getstate__(self):
        return (self._items, self._base, self._prefix)

    def __setstate__(self, state) -> None:
        self._items, self._base, self._prefix = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MessageLog):
            return NotImplemented
        return self._base == other._base and self._items == other._items

    def __repr__(self) -> str:
        return f"MessageLog(base={self._base}, {self._items!r})"
