"""Actions of the I/O automaton model (Section 2).

An action is identified by a name and a tuple of parameters.  By the
paper's convention, external actions of per-process automata carry the
process subscript as their *first* parameter (``view_p(v)`` becomes
``Action("view", (p, v))``), except where the paper itself uses two
subscripts (``deliver_{p,q}(m)`` becomes ``Action("co_rfifo.deliver",
(p, q, m))`` with sender first, as in Figure 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.errors import AmbiguousActionName


class ActionKind(enum.Enum):
    """Classification of actions in an automaton signature."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"


def _param_repr(value: Any) -> str:
    """``repr``, but with sets rendered in sorted order.

    Set reprs follow hash order, which varies with the interpreter's
    hash seed; action reprs end up in violation messages that must be
    byte-stable across processes (verdict JSON, shrunk chaos findings).
    """
    if isinstance(value, (set, frozenset)):
        name = type(value).__name__
        if not value:
            return f"{name}()"
        inner = ", ".join(repr(v) for v in sorted(value, key=repr))
        return f"{name}({{{inner}}})"
    return repr(value)


@dataclass(frozen=True)
class Action:
    """A named action instance with bound parameters."""

    name: str
    params: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        inner = ", ".join(_param_repr(p) for p in self.params)
        return f"{self.name}({inner})"


# suffix -> the action name that first claimed it.  The mapping from
# action name to suffix is lossy ("a.b_c" and "a_b.c" both become
# "a_b_c"); the registry makes the round trip injective in practice by
# rejecting the second claimant instead of silently sharing methods.
_suffix_owner: Dict[str, str] = {}
_suffix_cache: Dict[str, str] = {}


def method_suffix(action_name: str) -> str:
    """Translate an action name to a Python method-name suffix.

    Dotted names such as ``co_rfifo.send`` map to ``co_rfifo_send`` so
    that automata can declare ``_pre_co_rfifo_send`` and friends.

    Memoized: action vocabularies are tiny and fixed, and the compiled
    transition chains aside, the reflective oracle paths still build
    method names per call.  Raises :class:`AmbiguousActionName` if a
    *different* action name already resolved to the same suffix, so two
    actions can never share a ``_pre_``/``_eff_``/``_candidates_``
    family (the static analyzer's R3 collision rule catches the same
    situation without executing anything).
    """
    suffix = _suffix_cache.get(action_name)
    if suffix is None:
        suffix = action_name.replace(".", "_")
        owner = _suffix_owner.setdefault(suffix, action_name)
        if owner != action_name:
            raise AmbiguousActionName(
                f"action names {owner!r} and {action_name!r} both map to "
                f"method suffix {suffix!r}; rename one of them"
            )
        _suffix_cache[action_name] = suffix
    return suffix
