"""Actions of the I/O automaton model (Section 2).

An action is identified by a name and a tuple of parameters.  By the
paper's convention, external actions of per-process automata carry the
process subscript as their *first* parameter (``view_p(v)`` becomes
``Action("view", (p, v))``), except where the paper itself uses two
subscripts (``deliver_{p,q}(m)`` becomes ``Action("co_rfifo.deliver",
(p, q, m))`` with sender first, as in Figure 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Tuple


class ActionKind(enum.Enum):
    """Classification of actions in an automaton signature."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"


@dataclass(frozen=True)
class Action:
    """A named action instance with bound parameters."""

    name: str
    params: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.params)
        return f"{self.name}({inner})"


@lru_cache(maxsize=None)
def method_suffix(action_name: str) -> str:
    """Translate an action name to a Python method-name suffix.

    Dotted names such as ``co_rfifo.send`` map to ``co_rfifo_send`` so
    that automata can declare ``_pre_co_rfifo_send`` and friends.

    Memoized: action vocabularies are tiny and fixed, and the compiled
    transition chains aside, the reflective oracle paths still build
    method names per call.
    """
    return action_name.replace(".", "_")
