"""Executable I/O automata with the inheritance construct of [26].

An automaton subclass declares, per class in its inheritance chain:

``SIGNATURE``
    mapping of action name to :class:`~repro.ioa.action.ActionKind`.  The
    effective signature merges the chain (derived classes may add actions
    or re-declare an action they modify).

``PARAM_PROJECTIONS``
    mapping of action name to a function that projects *this* class's
    parameter tuple for the action onto the parameter tuple expected by
    the parent level (used when a child extends an action's signature,
    e.g. ``view_p(v, T) modifies wv_rfifo.view_p(v)``).

``_state(self)``
    creates this class's state variables as instance attributes.  The
    framework calls these base-first and records which class *owns* each
    variable, which lets strict mode enforce the rule of [26] that a
    child's added effects never modify parent state.

``_pre_<action>(self, *params)`` / ``_eff_<action>(self, *params)``
    this class's contribution to the action's precondition / effect.
    Along the chain, preconditions are conjoined and effects run
    child-first, then parent - exactly the transition-restriction
    semantics of the paper's Section 2.  Dots in action names map to
    underscores (:func:`~repro.ioa.action.method_suffix`).

``_candidates_<action>(self)``
    yields parameter tuples for which a locally controlled action might
    currently be enabled (the most-derived definition wins).  This is what
    makes the automata *executable*: rather than scanning an infinite
    parameter space, each automaton proposes the finitely many bindings
    its state makes relevant.

Transition chains are *compiled* once per class: the ordered
``(precondition, effect, projection)`` pieces along the MRO, the merged
signature, and the candidate-method lookup are resolved the first time an
action is exercised and cached on the class, so the per-step hot path
(:meth:`Automaton.precondition`, :meth:`Automaton.enabled_actions`) never
walks the MRO or builds method names.  The reflective walk survives as
:meth:`Automaton.naive_enabled_actions`, the oracle the differential
tests compare the compiled engine against.

Every state change that goes through :meth:`apply`, :meth:`reset_state`
or an explicit :meth:`touch` bumps ``_state_version``; compositions use
the counter to keep per-component enabled-set caches honest (see
:class:`~repro.ioa.composition.Composition`).
"""

from __future__ import annotations

import copy
import pickle
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.errors import ActionNotEnabled, InheritanceError, UnknownAction
from repro.ioa.action import Action, ActionKind, method_suffix

_Projection = Callable[..., Tuple[Any, ...]]

_LOCALLY_CONTROLLED = (ActionKind.OUTPUT, ActionKind.INTERNAL)


class CompiledAction:
    """The per-class compilation of one action's transition chain.

    ``pre_chain`` / ``eff_chain`` hold the inheritance pieces in MRO
    order (most-derived first), interleaved with the parameter
    projections that rebind the parameters for the levels below - the
    exact traversal :meth:`Automaton._walk` performs reflectively.
    """

    __slots__ = ("name", "pre_chain", "eff_chain", "candidates")

    def __init__(
        self,
        name: str,
        pre_chain: Tuple[Tuple[Optional[Callable], Optional[_Projection]], ...],
        eff_chain: Tuple[Tuple[Optional[Callable], Type, Optional[_Projection]], ...],
        candidates: Optional[Callable],
    ) -> None:
        self.name = name
        self.pre_chain = pre_chain
        self.eff_chain = eff_chain
        self.candidates = candidates


def _compile_action(cls: Type["Automaton"], action_name: str) -> CompiledAction:
    """Resolve one action's chain along ``cls.__mro__`` once."""
    suffix = method_suffix(action_name)
    pre_name = f"_pre_{suffix}"
    eff_name = f"_eff_{suffix}"
    pre_chain: List[Tuple[Optional[Callable], Optional[_Projection]]] = []
    eff_chain: List[Tuple[Optional[Callable], Type, Optional[_Projection]]] = []
    for klass in cls.__mro__:
        if not (isinstance(klass, type) and issubclass(klass, Automaton)):
            continue
        pre_fn = klass.__dict__.get(pre_name)
        eff_fn = klass.__dict__.get(eff_name)
        projection = klass.__dict__.get("PARAM_PROJECTIONS", {}).get(action_name)
        if pre_fn is not None or projection is not None:
            pre_chain.append((pre_fn, projection))
        if eff_fn is not None or projection is not None:
            eff_chain.append((eff_fn, klass, projection))
    candidates = getattr(cls, f"_candidates_{suffix}", None)
    return CompiledAction(action_name, tuple(pre_chain), tuple(eff_chain), candidates)


class Automaton:
    """Base class of all executable I/O automata."""

    SIGNATURE: Dict[str, ActionKind] = {}
    # Actions an *instance* may opt into after construction (e.g. the
    # Figure 8 membership linkage of CoRfifoSpec).  Declaring them here
    # keeps the vocabulary statically visible - the analyzer treats the
    # union of SIGNATURE and OPTIONAL_SIGNATURE as the set of legal
    # `_pre_`/`_eff_`/`_candidates_` targets - while the merged runtime
    # signature only contains them once enable_optional_actions ran.
    OPTIONAL_SIGNATURE: Dict[str, ActionKind] = {}
    PARAM_PROJECTIONS: Dict[str, _Projection] = {}
    # Documented ordering barrier for locally controlled actions: drivers
    # that drain to quiescence (repro.core.runner.EndpointRunner) execute
    # same-batch actions in this tuple's order (earlier first), which
    # serialises otherwise-concurrent interfering actions.  The static
    # interference rule (R5 in repro.analysis) exempts action pairs that
    # both appear here; most-derived declaration wins, empty means the
    # driver's default order.
    ORDERING: Tuple[str, ...] = ()

    def __init__(self, name: str, *, strict: bool = False) -> None:
        self.name = name
        # When True, every effect piece is checked against the ownership
        # rule of the inheritance construct (slow; meant for tests).
        self.strict = strict
        self._signature = self._merged_signature()
        # Class-level chain cache, shared by all instances of this class;
        # entries compile lazily so instance-extended signatures (e.g.
        # CoRfifoSpec's membership linkage) resolve their chains too.
        self._chain_cache = type(self)._class_chains()
        # (name, CompiledAction) for the locally controlled actions, in
        # signature order; built lazily because signatures may gain
        # instance-level input actions after construction.
        self._lc_compiled: Optional[List[Tuple[str, CompiledAction]]] = None
        # Monotone counter bumped by every apply/reset/touch; composition
        # enabled-set caches compare it to spot stale entries.
        self._state_version = 0
        # Callbacks fired on every version bump.  Compositions subscribe
        # so a dirty component pushes its index into the composition's
        # dirty set instead of every enabled_actions() call scanning all
        # component versions (O(system) per call at n=1000).
        self._version_observers: List[Callable[[], None]] = []
        self._owners: Dict[str, Type[Automaton]] = {}
        # klass -> names of variables owned by its strict ancestors, the
        # set strict mode guards; cached because it is scanned twice per
        # strict effect piece.
        self._ancestor_attrs: Dict[Type[Automaton], Tuple[str, ...]] = {}
        self._init_state_chain()

    # ------------------------------------------------------------------
    # signature
    # ------------------------------------------------------------------

    @classmethod
    def _class_chains(cls) -> Dict[str, CompiledAction]:
        """This class's own compiled-chain cache (never inherited)."""
        chains = cls.__dict__.get("_ioa_chains")
        if chains is None:
            chains = {}
            cls._ioa_chains = chains
        return chains

    @classmethod
    def _merged_signature(cls) -> Dict[str, ActionKind]:
        template = cls.__dict__.get("_ioa_signature")
        if template is None:
            template = {}
            for klass in reversed(cls.__mro__):
                template.update(klass.__dict__.get("SIGNATURE", {}))
            cls._ioa_signature = template
        # Per-instance copy: some automata overlay instance-specific
        # inputs after construction (see CoRfifoSpec.link_membership).
        return dict(template)

    @property
    def signature(self) -> Dict[str, ActionKind]:
        """The effective (merged) signature of this automaton."""
        return dict(self._signature)

    @classmethod
    def optional_signature(cls) -> Dict[str, ActionKind]:
        """The merged OPTIONAL_SIGNATURE declarations along the chain."""
        optional: Dict[str, ActionKind] = {}
        for klass in reversed(cls.__mro__):
            optional.update(klass.__dict__.get("OPTIONAL_SIGNATURE", {}))
        return optional

    def enable_optional_actions(self, *names: str) -> None:
        """Overlay declared-optional actions onto this instance's signature.

        Only actions listed in some class's ``OPTIONAL_SIGNATURE`` along
        the inheritance chain may be enabled; asking for anything else is
        an :class:`UnknownAction` error, so instance-level signature
        growth stays within the statically declared vocabulary.
        """
        optional = self.optional_signature()
        for name in names:
            kind = optional.get(name)
            if kind is None:
                raise UnknownAction(
                    f"{self.name}: {name!r} is not declared in OPTIONAL_SIGNATURE"
                )
            self._signature[name] = kind
        self._lc_compiled = None

    def kind_of(self, action_name: str) -> ActionKind:
        try:
            return self._signature[action_name]
        except KeyError:
            raise UnknownAction(f"{self.name}: unknown action {action_name!r}") from None

    def locally_controlled(self) -> List[str]:
        """Names of this automaton's output and internal actions."""
        return [
            name
            for name, kind in self._signature.items()
            if kind in _LOCALLY_CONTROLLED
        ]

    def accepts(self, action: Action) -> bool:
        """Whether this automaton takes ``action`` as an input.

        Per-process automata override this to claim only the actions
        subscripted with their own process identifier.
        """
        return self._signature.get(action.name) is ActionKind.INPUT

    # ------------------------------------------------------------------
    # compiled chains
    # ------------------------------------------------------------------

    def _compiled_for(self, action_name: str) -> CompiledAction:
        entry = self._chain_cache.get(action_name)
        if entry is None:
            entry = _compile_action(type(self), action_name)
            self._chain_cache[action_name] = entry
        return entry

    def _locally_controlled_compiled(self) -> List[Tuple[str, CompiledAction]]:
        compiled = self._lc_compiled
        if compiled is None:
            compiled = [
                (name, self._compiled_for(name))
                for name, kind in self._signature.items()
                if kind in _LOCALLY_CONTROLLED
            ]
            self._lc_compiled = compiled
        return compiled

    # ------------------------------------------------------------------
    # state ownership
    # ------------------------------------------------------------------

    def _init_state_chain(self) -> None:
        for klass in reversed(type(self).__mro__):
            if "_state" not in klass.__dict__:
                continue
            before = set(self.__dict__)
            klass.__dict__["_state"](self)
            # Sorted: _owners insertion order (and with it every strict-mode
            # fingerprint tuple) must not depend on set hash order.
            for attr in sorted(set(self.__dict__) - before):
                self._owners[attr] = klass

    def _state(self) -> None:
        """Declare state variables (override per class)."""

    def reset_state(self) -> None:
        """Reset all state variables to their initial values (Section 8)."""
        for attr in list(self._owners):
            delattr(self, attr)
        self._owners.clear()
        self._ancestor_attrs.clear()
        self._init_state_chain()
        self._state_version += 1
        for observer in self._version_observers:
            observer()

    def touch(self) -> int:
        """Declare an out-of-band state change (e.g. a test poking a
        variable directly), so composition enabled-set caches refresh.
        Returns the new state version."""
        self._state_version += 1
        for observer in self._version_observers:
            observer()
        return self._state_version

    def subscribe_version(self, observer: Callable[[], None]) -> None:
        """Register a callback fired after every state-version bump.

        Used by :class:`~repro.ioa.composition.Composition` for push-based
        dirty tracking; observers must be cheap and must not step the
        automaton.
        """
        self._version_observers.append(observer)

    def unsubscribe_version(self, observer: Callable[[], None]) -> None:
        """Remove a previously registered version observer (idempotent)."""
        try:
            self._version_observers.remove(observer)
        except ValueError:
            pass

    @property
    def state_version(self) -> int:
        """Monotone counter of state changes seen by the framework."""
        return self._state_version

    def state_vars(self) -> Dict[str, Any]:
        """A shallow snapshot of the declared state variables."""
        return {attr: getattr(self, attr) for attr in self._owners}

    def _ancestor_attr_names(self, klass: Type["Automaton"]) -> Tuple[str, ...]:
        """Names of variables owned by strict ancestors of ``klass``."""
        attrs = self._ancestor_attrs.get(klass)
        if attrs is None:
            attrs = tuple(
                attr
                for attr, owner in self._owners.items()
                if owner is not klass and issubclass(klass, owner)
            )
            self._ancestor_attrs[klass] = attrs
        return attrs

    def _ancestor_vars(self, klass: Type["Automaton"]) -> Dict[str, Any]:
        """Variables owned by strict ancestors of ``klass``."""
        return {attr: getattr(self, attr) for attr in self._ancestor_attr_names(klass)}

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def _walk(self, prefix: str, action: Action) -> Iterator[Tuple[Type["Automaton"], Callable, Tuple]]:
        """Yield (class, piece, params-at-that-level), applying projections.

        The reflective traversal the compiled chains replace; kept as the
        oracle for differential tests (see naive_enabled_actions).
        """
        params = action.params
        projected_below: List[Type[Automaton]] = []
        for klass in type(self).__mro__:
            if not issubclass(klass, Automaton):
                continue
            fn = klass.__dict__.get(f"{prefix}{method_suffix(action.name)}")
            if fn is not None:
                yield klass, fn, params
            projection = klass.__dict__.get("PARAM_PROJECTIONS", {}).get(action.name)
            if projection is not None and klass not in projected_below:
                params = tuple(projection(*params))
                projected_below.append(klass)

    def precondition(self, action: Action) -> bool:
        """Conjunction of all precondition pieces along the chain."""
        kind = self._signature.get(action.name)
        if kind is None:
            raise UnknownAction(f"{self.name}: unknown action {action.name!r}")
        if kind is ActionKind.INPUT:
            return True  # input actions are enabled in every state
        params = action.params
        for fn, projection in self._compiled_for(action.name).pre_chain:
            if fn is not None and not fn(self, *params):
                return False
            if projection is not None:
                params = tuple(projection(*params))
        return True

    def _run_effects(self, action: Action) -> None:
        params = action.params
        if self.strict:
            for fn, klass, projection in self._compiled_for(action.name).eff_chain:
                if fn is not None:
                    self._run_strict_effect(fn, klass, action, params)
                if projection is not None:
                    params = tuple(projection(*params))
        else:
            for fn, _klass, projection in self._compiled_for(action.name).eff_chain:
                if fn is not None:
                    fn(self, *params)
                if projection is not None:
                    params = tuple(projection(*params))

    def _run_strict_effect(
        self, fn: Callable, klass: Type["Automaton"], action: Action, params: Tuple
    ) -> None:
        """Run one effect piece under the ownership rule of [26].

        Fast path: fingerprint the ancestor variables with pickle (a C
        round-trip, ~7x cheaper than deepcopy); identical bytes prove the
        piece left them untouched.  Only when the fingerprint moves (or
        the state is unpicklable) fall back to the precise per-variable
        equality check, so legal effects pay near-nothing and offending
        ones are reported exactly as before.
        """
        attrs = self._ancestor_attr_names(klass)
        if not attrs:
            fn(self, *params)
            return
        before = tuple(getattr(self, attr) for attr in attrs)
        try:
            before_blob = pickle.dumps(before, pickle.HIGHEST_PROTOCOL)
        except Exception:
            before_blob = None
            before = copy.deepcopy(before)
        fn(self, *params)
        after = tuple(getattr(self, attr) for attr in attrs)
        if before_blob is not None:
            try:
                if pickle.dumps(after, pickle.HIGHEST_PROTOCOL) == before_blob:
                    return
            except Exception:
                pass
            # The bytes moved (or the after-state became unpicklable):
            # materialise the snapshot and compare precisely, so encoding
            # noise can never raise a spurious violation.
            before = pickle.loads(before_blob)
        for attr, old, new in zip(attrs, before, after):
            if new != old:
                raise InheritanceError(
                    f"{self.name}: effect of {klass.__name__} for action "
                    f"{action.name!r} modified parent variable {attr!r}"
                )

    def is_enabled(self, action: Action) -> bool:
        """Whether ``action`` can be taken in the current state."""
        kind = self._signature.get(action.name)
        if kind is None:
            return False
        if kind is ActionKind.INPUT:
            return self.accepts(action)
        return self.precondition(action)

    def apply(self, action: Action) -> None:
        """Take a step with ``action``, executing its effects atomically."""
        kind = self.kind_of(action.name)
        if kind is not ActionKind.INPUT and not self.precondition(action):
            raise ActionNotEnabled(f"{self.name}: {action!r} is not enabled")
        self._run_effects(action)
        self._state_version += 1
        for observer in self._version_observers:
            observer()

    # ------------------------------------------------------------------
    # candidate enumeration
    # ------------------------------------------------------------------

    def candidates(self, action_name: str) -> Iterable[Tuple[Any, ...]]:
        """Parameter tuples worth testing for a locally controlled action."""
        fn = getattr(self, f"_candidates_{method_suffix(action_name)}", None)
        if fn is None:
            return ()
        return fn()

    def enabled_actions(self) -> List[Action]:
        """All currently enabled locally controlled actions (one per binding).

        Hot path: uses the compiled chains; action ordering (signature
        order, then candidate order) is identical to
        :meth:`naive_enabled_actions`.
        """
        enabled = []
        for name, compiled in self._locally_controlled_compiled():
            candidates = compiled.candidates
            if candidates is None:
                continue
            pre_chain = compiled.pre_chain
            for raw in candidates(self):
                params = tuple(raw)
                level_params = params
                satisfied = True
                for fn, projection in pre_chain:
                    if fn is not None and not fn(self, *level_params):
                        satisfied = False
                        break
                    if projection is not None:
                        level_params = tuple(projection(*level_params))
                if satisfied:
                    enabled.append(Action(name, params))
        return enabled

    def naive_enabled_actions(self) -> List[Action]:
        """Reflective-oracle twin of :meth:`enabled_actions`.

        Recomputes the enabled set with the original getattr/MRO walk;
        differential tests assert it matches the compiled path exactly
        (same actions, same order).
        """
        enabled = []
        for name in self.locally_controlled():
            for params in self.candidates(name):
                action = Action(name, tuple(params))
                if self._naive_precondition(action):
                    enabled.append(action)
        return enabled

    def _naive_precondition(self, action: Action) -> bool:
        if action.name not in self._signature:
            raise UnknownAction(f"{self.name}: unknown action {action.name!r}")
        if self._signature[action.name] is ActionKind.INPUT:
            return True
        for _klass, fn, params in self._walk("_pre_", action):
            if not fn(self, *params):
                return False
        return True

    # ------------------------------------------------------------------
    # tasks (fairness)
    # ------------------------------------------------------------------

    def tasks(self) -> Dict[str, List[str]]:
        """Task partition: by default each locally controlled action is a task.

        This is the convention the paper uses for its end-point automata
        ("each locally controlled action is defined to be a task by
        itself").
        """
        return {name: [name] for name in self.locally_controlled()}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
