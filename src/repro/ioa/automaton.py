"""Executable I/O automata with the inheritance construct of [26].

An automaton subclass declares, per class in its inheritance chain:

``SIGNATURE``
    mapping of action name to :class:`~repro.ioa.action.ActionKind`.  The
    effective signature merges the chain (derived classes may add actions
    or re-declare an action they modify).

``PARAM_PROJECTIONS``
    mapping of action name to a function that projects *this* class's
    parameter tuple for the action onto the parameter tuple expected by
    the parent level (used when a child extends an action's signature,
    e.g. ``view_p(v, T) modifies wv_rfifo.view_p(v)``).

``_state(self)``
    creates this class's state variables as instance attributes.  The
    framework calls these base-first and records which class *owns* each
    variable, which lets strict mode enforce the rule of [26] that a
    child's added effects never modify parent state.

``_pre_<action>(self, *params)`` / ``_eff_<action>(self, *params)``
    this class's contribution to the action's precondition / effect.
    Along the chain, preconditions are conjoined and effects run
    child-first, then parent - exactly the transition-restriction
    semantics of the paper's Section 2.  Dots in action names map to
    underscores (:func:`~repro.ioa.action.method_suffix`).

``_candidates_<action>(self)``
    yields parameter tuples for which a locally controlled action might
    currently be enabled (the most-derived definition wins).  This is what
    makes the automata *executable*: rather than scanning an infinite
    parameter space, each automaton proposes the finitely many bindings
    its state makes relevant.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.errors import ActionNotEnabled, InheritanceError, UnknownAction
from repro.ioa.action import Action, ActionKind, method_suffix

_Projection = Callable[..., Tuple[Any, ...]]


class Automaton:
    """Base class of all executable I/O automata."""

    SIGNATURE: Dict[str, ActionKind] = {}
    PARAM_PROJECTIONS: Dict[str, _Projection] = {}

    def __init__(self, name: str, *, strict: bool = False) -> None:
        self.name = name
        # When True, every effect piece is checked against the ownership
        # rule of the inheritance construct (slow; meant for tests).
        self.strict = strict
        self._signature = self._merged_signature()
        self._owners: Dict[str, Type[Automaton]] = {}
        self._init_state_chain()

    # ------------------------------------------------------------------
    # signature
    # ------------------------------------------------------------------

    @classmethod
    def _merged_signature(cls) -> Dict[str, ActionKind]:
        merged: Dict[str, ActionKind] = {}
        for klass in reversed(cls.__mro__):
            merged.update(klass.__dict__.get("SIGNATURE", {}))
        return merged

    @property
    def signature(self) -> Dict[str, ActionKind]:
        """The effective (merged) signature of this automaton."""
        return dict(self._signature)

    def kind_of(self, action_name: str) -> ActionKind:
        try:
            return self._signature[action_name]
        except KeyError:
            raise UnknownAction(f"{self.name}: unknown action {action_name!r}") from None

    def locally_controlled(self) -> List[str]:
        """Names of this automaton's output and internal actions."""
        return [
            name
            for name, kind in self._signature.items()
            if kind in (ActionKind.OUTPUT, ActionKind.INTERNAL)
        ]

    def accepts(self, action: Action) -> bool:
        """Whether this automaton takes ``action`` as an input.

        Per-process automata override this to claim only the actions
        subscripted with their own process identifier.
        """
        return self._signature.get(action.name) is ActionKind.INPUT

    # ------------------------------------------------------------------
    # state ownership
    # ------------------------------------------------------------------

    def _init_state_chain(self) -> None:
        for klass in reversed(type(self).__mro__):
            if "_state" not in klass.__dict__:
                continue
            before = set(self.__dict__)
            klass.__dict__["_state"](self)
            for attr in set(self.__dict__) - before:
                self._owners[attr] = klass

    def _state(self) -> None:
        """Declare state variables (override per class)."""

    def reset_state(self) -> None:
        """Reset all state variables to their initial values (Section 8)."""
        for attr in list(self._owners):
            delattr(self, attr)
        self._owners.clear()
        self._init_state_chain()

    def state_vars(self) -> Dict[str, Any]:
        """A shallow snapshot of the declared state variables."""
        return {attr: getattr(self, attr) for attr in self._owners}

    def _ancestor_vars(self, klass: Type["Automaton"]) -> Dict[str, Any]:
        """Variables owned by strict ancestors of ``klass``."""
        return {
            attr: getattr(self, attr)
            for attr, owner in self._owners.items()
            if owner is not klass and issubclass(klass, owner)
        }

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def _walk(self, prefix: str, action: Action) -> Iterator[Tuple[Type["Automaton"], Callable, Tuple]]:
        """Yield (class, piece, params-at-that-level), applying projections."""
        params = action.params
        projected_below: List[Type[Automaton]] = []
        for klass in type(self).__mro__:
            if not issubclass(klass, Automaton):
                continue
            fn = klass.__dict__.get(f"{prefix}{method_suffix(action.name)}")
            if fn is not None:
                yield klass, fn, params
            projection = klass.__dict__.get("PARAM_PROJECTIONS", {}).get(action.name)
            if projection is not None and klass not in projected_below:
                params = tuple(projection(*params))
                projected_below.append(klass)

    def precondition(self, action: Action) -> bool:
        """Conjunction of all precondition pieces along the chain."""
        if action.name not in self._signature:
            raise UnknownAction(f"{self.name}: unknown action {action.name!r}")
        if self._signature[action.name] is ActionKind.INPUT:
            return True  # input actions are enabled in every state
        for _klass, fn, params in self._walk("_pre_", action):
            if not fn(self, *params):
                return False
        return True

    def _run_effects(self, action: Action) -> None:
        for klass, fn, params in self._walk("_eff_", action):
            if self.strict:
                before = copy.deepcopy(self._ancestor_vars(klass))
                fn(self, *params)
                after = self._ancestor_vars(klass)
                for attr, old in before.items():
                    if after[attr] != old:
                        raise InheritanceError(
                            f"{self.name}: effect of {klass.__name__} for action "
                            f"{action.name!r} modified parent variable {attr!r}"
                        )
            else:
                fn(self, *params)

    def is_enabled(self, action: Action) -> bool:
        """Whether ``action`` can be taken in the current state."""
        if action.name not in self._signature:
            return False
        if self._signature[action.name] is ActionKind.INPUT:
            return self.accepts(action)
        return self.precondition(action)

    def apply(self, action: Action) -> None:
        """Take a step with ``action``, executing its effects atomically."""
        kind = self.kind_of(action.name)
        if kind is not ActionKind.INPUT and not self.precondition(action):
            raise ActionNotEnabled(f"{self.name}: {action!r} is not enabled")
        self._run_effects(action)

    # ------------------------------------------------------------------
    # candidate enumeration
    # ------------------------------------------------------------------

    def candidates(self, action_name: str) -> Iterable[Tuple[Any, ...]]:
        """Parameter tuples worth testing for a locally controlled action."""
        fn = getattr(self, f"_candidates_{method_suffix(action_name)}", None)
        if fn is None:
            return ()
        return fn()

    def enabled_actions(self) -> List[Action]:
        """All currently enabled locally controlled actions (one per binding)."""
        enabled = []
        for name in self.locally_controlled():
            for params in self.candidates(name):
                action = Action(name, tuple(params))
                if self.precondition(action):
                    enabled.append(action)
        return enabled

    # ------------------------------------------------------------------
    # tasks (fairness)
    # ------------------------------------------------------------------

    def tasks(self) -> Dict[str, List[str]]:
        """Task partition: by default each locally controlled action is a task.

        This is the convention the paper uses for its end-point automata
        ("each locally controlled action is defined to be a task by
        itself").
        """
        return {name: [name] for name in self.locally_controlled()}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
