"""Composition and hiding of I/O automata (Section 2).

The composition operation matches output and input actions with the same
name across component automata: when a component performs a step
involving an output action, every component that has the action as an
input takes the same step.  The result of composing an output with inputs
remains an output (allowing further composition); the :meth:`hide`
operator re-classifies outputs as internal.

The execution machinery is incremental: the composition keeps one cached
enabled-set per component, keyed by the component's ``state_version``
counter, and subscribes to each component's version bumps so dirtiness is
*pushed* into a dirty-index set rather than discovered by scanning every
component's version on every call.  A composed step can only change the
state of the acting owner and the components that accept the action as an
input - exactly the automata whose version counters move - so a scheduler
step re-enumerates candidates for O(dirty components) instead of
O(system), and a call with nothing dirty returns the cached flat list
without touching the components at all (the property that keeps a
thousand-component system from paying a thousand version reads per
event).  :meth:`naive_enabled_actions` recomputes everything reflectively
and is the oracle differential tests compare the cache against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ActionNotEnabled, CompositionError
from repro.ioa.action import Action, ActionKind
from repro.ioa.automaton import Automaton
from repro.ioa.trace import Trace

# Composed classification precedence: any OUTPUT controller makes the
# composed action an OUTPUT; otherwise INTERNAL wins over INPUT.
_KIND_RANK = {ActionKind.INPUT: 0, ActionKind.INTERNAL: 1, ActionKind.OUTPUT: 2}

_NO_COMPONENTS: Tuple[Automaton, ...] = ()


class Composition:
    """A closed system of component automata executing matched steps."""

    def __init__(self, components: Sequence[Automaton], name: str = "system") -> None:
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise CompositionError(f"duplicate component names: {names}")
        self.name = name
        self.components: List[Automaton] = list(components)
        self._by_name: Dict[str, Automaton] = {c.name: c for c in components}
        self._hidden: Set[str] = set()
        self.trace = Trace()
        self._validate_signatures()
        # action name -> components that take it as an input, in
        # component order (signatures are fixed once composed).
        self._inputs_by_name: Dict[str, List[Automaton]] = {}
        for component in self.components:
            for action_name, kind in component._signature.items():
                if kind is ActionKind.INPUT:
                    self._inputs_by_name.setdefault(action_name, []).append(component)
        # Composed action classification, built lazily and invalidated by
        # hide(); spares trace recording a scan over all components.
        self._kind_map: Optional[Dict[str, ActionKind]] = None
        # Per-component enabled-set cache with the state version it was
        # computed at; -1 forces the first computation.
        self._component_index: Dict[str, int] = {
            c.name: i for i, c in enumerate(self.components)
        }
        self._enabled_cache: List[Optional[List[Action]]] = [None] * len(self.components)
        self._enabled_versions: List[int] = [-1] * len(self.components)
        # Push-based dirty tracking: every component version bump lands
        # its index here; enabled_actions() re-enumerates only these and
        # serves the concatenated flat list from cache otherwise.
        self._dirty: Set[int] = set(range(len(self.components)))
        self._flat_cache: Optional[List[Tuple[Automaton, Action]]] = None
        for index, component in enumerate(self.components):
            component.subscribe_version(self._dirty_marker(index))

    def _dirty_marker(self, index: int):
        dirty = self._dirty

        def mark() -> None:
            dirty.add(index)

        return mark

    def _validate_signatures(self) -> None:
        # An action name may be an output of several *per-process* automata
        # (distinguished by their parameters), but the same *bound* action
        # must have a single controller; we check the cheap static part
        # here and the dynamic part when executing.
        for component in self.components:
            for action_name, kind in component._signature.items():
                if kind is ActionKind.INTERNAL:
                    for other in self.components:
                        if other is component:
                            continue
                        if action_name in other._signature:
                            raise CompositionError(
                                f"internal action {action_name!r} of {component.name} "
                                f"also appears in {other.name}"
                            )

    def component(self, name: str) -> Automaton:
        return self._by_name[name]

    def hide(self, action_names: Iterable[str]) -> "Composition":
        """Re-classify the given output actions as internal."""
        self._hidden.update(action_names)
        self._kind_map = None
        return self

    def _build_kind_map(self) -> Dict[str, ActionKind]:
        kind_map: Dict[str, ActionKind] = {}
        for component in self.components:
            for action_name, kind in component._signature.items():
                current = kind_map.get(action_name)
                if current is None or _KIND_RANK[kind] > _KIND_RANK[current]:
                    kind_map[action_name] = kind
        self._kind_map = kind_map
        return kind_map

    def kind_of(self, action: Action) -> ActionKind:
        """The composed system's classification of ``action``."""
        if action.name in self._hidden:
            return ActionKind.INTERNAL
        kind_map = self._kind_map
        if kind_map is None:
            kind_map = self._build_kind_map()
        return kind_map.get(action.name, ActionKind.INPUT)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def controllers(self, action: Action) -> List[Automaton]:
        """Components for which ``action`` is a locally controlled action."""
        return [
            c
            for c in self.components
            if c._signature.get(action.name) in (ActionKind.OUTPUT, ActionKind.INTERNAL)
            and c.is_enabled(action)
        ]

    def _refreshed_enabled(self, index: int, component: Automaton, refresh: bool) -> List[Action]:
        """The cached enabled set of one component, recomputed if stale.

        The returned list is owned by the cache - callers must not
        mutate it.
        """
        version = component._state_version
        cached = self._enabled_cache[index]
        if refresh or cached is None or self._enabled_versions[index] != version:
            cached = component.enabled_actions()
            self._enabled_cache[index] = cached
            self._enabled_versions[index] = version
            self._flat_cache = None
        return cached

    def enabled_actions(self, refresh: bool = False) -> List[Tuple[Automaton, Action]]:
        """All enabled locally controlled actions across components.

        Served from the per-component cache; only components whose state
        version moved since the last call (pushed into the dirty set by
        their version observers) are re-enumerated, and when nothing is
        dirty the concatenated list itself is served from cache without
        visiting any component.  Pass ``refresh=True`` to force a full
        recomputation (needed after mutating component state directly
        without ``apply``/``touch``).  Ordering is identical to
        :meth:`naive_enabled_actions`.
        """
        if not refresh and not self._dirty and self._flat_cache is not None:
            return list(self._flat_cache)
        if refresh:
            for index, component in enumerate(self.components):
                self._refreshed_enabled(index, component, True)
        else:
            for index in self._dirty:
                self._refreshed_enabled(index, self.components[index], False)
        self._dirty.clear()
        enabled: List[Tuple[Automaton, Action]] = []
        for index, component in enumerate(self.components):
            cached = self._enabled_cache[index]
            if cached:
                for action in cached:
                    enabled.append((component, action))
        self._flat_cache = enabled
        return list(enabled)

    def enabled_for(self, component: Automaton, refresh: bool = False) -> List[Action]:
        """The cached enabled set of one component (do not mutate)."""
        index = self._component_index[component.name]
        return self._refreshed_enabled(index, component, refresh)

    def naive_enabled_actions(self) -> List[Tuple[Automaton, Action]]:
        """Cache-free oracle: recompute every component's enabled set
        through the reflective MRO walk (see differential tests)."""
        enabled: List[Tuple[Automaton, Action]] = []
        for component in self.components:
            for action in component.naive_enabled_actions():
                enabled.append((component, action))
        return enabled

    def execute(self, owner: Automaton, action: Action, record: bool = True) -> None:
        """Perform one composed step: ``owner`` plus all accepting inputs."""
        owner.apply(action)
        for component in self._inputs_by_name.get(action.name, _NO_COMPONENTS):
            if component is not owner and component.accepts(action):
                component.apply(action)
        if record:
            self.trace.record(action, owner.name, self.kind_of(action))

    def inject(self, action: Action, record: bool = True) -> None:
        """Feed an environment input action to every accepting component.

        Used when the composition is *open*: the environment (a test, a
        driver, hypothesis) plays the missing output side.
        """
        accepted = False
        for component in self._inputs_by_name.get(action.name, _NO_COMPONENTS):
            if component.accepts(action):
                component.apply(action)
                accepted = True
        if not accepted:
            raise ActionNotEnabled(f"no component accepts input {action!r}")
        if record:
            self.trace.record(action, "env", ActionKind.INPUT)

    def quiescent(self) -> bool:
        """True when no locally controlled action is enabled anywhere."""
        return not self.enabled_actions()

    def __repr__(self) -> str:
        inner = ", ".join(c.name for c in self.components)
        return f"<Composition {self.name}: {inner}>"
