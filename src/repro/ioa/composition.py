"""Composition and hiding of I/O automata (Section 2).

The composition operation matches output and input actions with the same
name across component automata: when a component performs a step
involving an output action, every component that has the action as an
input takes the same step.  The result of composing an output with inputs
remains an output (allowing further composition); the :meth:`hide`
operator re-classifies outputs as internal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ActionNotEnabled, CompositionError
from repro.ioa.action import Action, ActionKind
from repro.ioa.automaton import Automaton
from repro.ioa.trace import Trace


class Composition:
    """A closed system of component automata executing matched steps."""

    def __init__(self, components: Sequence[Automaton], name: str = "system") -> None:
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise CompositionError(f"duplicate component names: {names}")
        self.name = name
        self.components: List[Automaton] = list(components)
        self._by_name: Dict[str, Automaton] = {c.name: c for c in components}
        self._hidden: Set[str] = set()
        self.trace = Trace()
        self._validate_signatures()

    def _validate_signatures(self) -> None:
        # An action name may be an output of several *per-process* automata
        # (distinguished by their parameters), but the same *bound* action
        # must have a single controller; we check the cheap static part
        # here and the dynamic part when executing.
        for component in self.components:
            for action_name, kind in component.signature.items():
                if kind is ActionKind.INTERNAL:
                    for other in self.components:
                        if other is component:
                            continue
                        if action_name in other.signature:
                            raise CompositionError(
                                f"internal action {action_name!r} of {component.name} "
                                f"also appears in {other.name}"
                            )

    def component(self, name: str) -> Automaton:
        return self._by_name[name]

    def hide(self, action_names: Iterable[str]) -> "Composition":
        """Re-classify the given output actions as internal."""
        self._hidden.update(action_names)
        return self

    def kind_of(self, action: Action) -> ActionKind:
        """The composed system's classification of ``action``."""
        if action.name in self._hidden:
            return ActionKind.INTERNAL
        kinds = {
            component.signature[action.name]
            for component in self.components
            if action.name in component.signature
        }
        if ActionKind.OUTPUT in kinds:
            return ActionKind.OUTPUT
        if ActionKind.INTERNAL in kinds:
            return ActionKind.INTERNAL
        return ActionKind.INPUT

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def controllers(self, action: Action) -> List[Automaton]:
        """Components for which ``action`` is a locally controlled action."""
        return [
            c
            for c in self.components
            if c.signature.get(action.name) in (ActionKind.OUTPUT, ActionKind.INTERNAL)
            and c.is_enabled(action)
        ]

    def enabled_actions(self) -> List[Tuple[Automaton, Action]]:
        """All enabled locally controlled actions across components."""
        enabled = []
        for component in self.components:
            for action in component.enabled_actions():
                enabled.append((component, action))
        return enabled

    def execute(self, owner: Automaton, action: Action, record: bool = True) -> None:
        """Perform one composed step: ``owner`` plus all accepting inputs."""
        owner.apply(action)
        for component in self.components:
            if component is owner:
                continue
            if component.signature.get(action.name) is ActionKind.INPUT and component.accepts(action):
                component.apply(action)
        if record:
            self.trace.record(action, owner.name, self.kind_of(action))

    def inject(self, action: Action, record: bool = True) -> None:
        """Feed an environment input action to every accepting component.

        Used when the composition is *open*: the environment (a test, a
        driver, hypothesis) plays the missing output side.
        """
        accepted = False
        for component in self.components:
            if component.signature.get(action.name) is ActionKind.INPUT and component.accepts(action):
                component.apply(action)
                accepted = True
        if not accepted:
            raise ActionNotEnabled(f"no component accepts input {action!r}")
        if record:
            self.trace.record(action, "env", ActionKind.INPUT)

    def quiescent(self) -> bool:
        """True when no locally controlled action is enabled anywhere."""
        return not self.enabled_actions()

    def __repr__(self) -> str:
        inner = ", ".join(c.name for c in self.components)
        return f"<Composition {self.name}: {inner}>"
