"""Execution traces of composed automata (Section 2).

A *trace* is the subsequence of an execution consisting of external
actions.  :class:`Trace` records every step the scheduler executes,
tagging each with the component that controlled it, and offers the
projections the paper's proofs rely on (per-process subsequences,
projection onto a signature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.ioa.action import Action, ActionKind


@dataclass(frozen=True)
class TraceEvent:
    """One step of an execution: who performed which action, when."""

    index: int
    action: Action
    owner: str
    kind: ActionKind

    def __repr__(self) -> str:
        return f"[{self.index}] {self.owner}: {self.action!r}"


class Trace:
    """An append-only record of executed steps."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, action: Action, owner: str, kind: ActionKind) -> TraceEvent:
        event = TraceEvent(len(self._events), action, owner, kind)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    def events(
        self,
        name: Optional[str] = None,
        where: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events filtered by action name and/or an arbitrary predicate."""
        selected: Iterable[TraceEvent] = self._events
        if name is not None:
            selected = (e for e in selected if e.action.name == name)
        if where is not None:
            selected = (e for e in selected if where(e))
        return list(selected)

    def external(self) -> List[TraceEvent]:
        """The trace proper: external (input/output) actions only."""
        return [e for e in self._events if e.kind is not ActionKind.INTERNAL]

    def project(self, names: Iterable[str]) -> List[TraceEvent]:
        """Projection onto a sub-signature, as used for trace inclusion."""
        wanted = set(names)
        return [e for e in self._events if e.action.name in wanted]

    def actions(self) -> List[Action]:
        return [e.action for e in self._events]

    def __repr__(self) -> str:
        return f"<Trace of {len(self._events)} events>"
