"""Schedulers: adversarial and fair executions of a composition.

Safety properties must hold in *every* execution, so tests drive the
system with :class:`RandomScheduler` (an adversarial, seed-reproducible
interleaving).  Liveness properties are promised only for *fair*
executions, so liveness tests use :class:`FairScheduler`, which realises
the paper's task-based weak fairness: every task that stays enabled is
eventually given a turn.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.ioa.action import Action
from repro.ioa.automaton import Automaton
from repro.ioa.composition import Composition

# A hook invoked after every executed step, e.g. an invariant checker.
StepHook = Callable[[Composition, Automaton, Action], None]


class SchedulerBase:
    """Shared machinery for stepping a composition."""

    def __init__(self, system: Composition, hooks: Optional[List[StepHook]] = None) -> None:
        self.system = system
        self.hooks: List[StepHook] = list(hooks or [])
        self.steps_taken = 0

    def add_hook(self, hook: StepHook) -> None:
        self.hooks.append(hook)

    def _execute(self, owner: Automaton, action: Action) -> None:
        self.system.execute(owner, action)
        self.steps_taken += 1
        for hook in self.hooks:
            hook(self.system, owner, action)

    def step(self) -> bool:
        """Execute one step; return False when the system is quiescent."""
        raise NotImplementedError

    def run(self, max_steps: int = 10_000) -> int:
        """Step until quiescence or ``max_steps``; return steps executed."""
        executed = 0
        while executed < max_steps and self.step():
            executed += 1
        return executed


class RandomScheduler(SchedulerBase):
    """Uniformly random choice among all enabled locally controlled actions.

    Reproducible from the seed, so a failing interleaving found by a
    property-based test can be replayed exactly.
    """

    def __init__(
        self,
        system: Composition,
        seed: int = 0,
        hooks: Optional[List[StepHook]] = None,
    ) -> None:
        super().__init__(system, hooks)
        self.rng = random.Random(seed)

    def step(self) -> bool:
        enabled = self.system.enabled_actions()
        if not enabled:
            return False
        owner, action = self.rng.choice(enabled)
        self._execute(owner, action)
        return True


class FairScheduler(SchedulerBase):
    """Round-robin over (component, task) pairs.

    Each visit executes at most one enabled action of the task, so an
    infinite execution produced by this scheduler is fair in the sense of
    Section 2: every continuously enabled task takes infinitely many
    steps.  With the paper's per-action task partition, this means every
    persistently enabled action eventually runs - the "low-level
    fairness" the liveness proof of Section 7 invokes.
    """

    def __init__(
        self,
        system: Composition,
        seed: int = 0,
        hooks: Optional[List[StepHook]] = None,
    ) -> None:
        super().__init__(system, hooks)
        self.rng = random.Random(seed)
        self._queue: Deque[Tuple[Automaton, str, object]] = deque()
        for component in system.components:
            for task_name, selector in component.tasks().items():
                self._queue.append((component, task_name, selector))

    @staticmethod
    def _in_task(action: Action, selector: object) -> bool:
        # A task is either a list of action names or a predicate on actions.
        if callable(selector):
            return bool(selector(action))
        return action.name in selector  # type: ignore[operator]

    def step(self) -> bool:
        # One full cycle over the task queue looking for an enabled task;
        # rotate so progress is spread across tasks.  Each visit reads the
        # composition's per-component cache, so a cycle over n tasks
        # re-enumerates candidates only for components whose state
        # actually changed since their last visit.
        queue = self._queue
        for _ in range(len(queue)):
            component, _task_name, selector = queue[0]
            queue.rotate(-1)
            actions = [
                action
                for action in self.system.enabled_for(component)
                if self._in_task(action, selector)
            ]
            if actions:
                self._execute(component, self.rng.choice(actions))
                return True
        return False
