"""Executable I/O automaton framework (paper Section 2 and Appendix A).

Exports the pieces needed to state, compose, and execute the paper's
specification and algorithm automata: actions, the automaton base class
with the inheritance construct of [26], composition/hiding, schedulers,
and trace recording.
"""

from repro.ioa.action import Action, ActionKind, method_suffix
from repro.ioa.automaton import Automaton
from repro.ioa.composition import Composition
from repro.ioa.scheduler import FairScheduler, RandomScheduler, SchedulerBase
from repro.ioa.trace import Trace, TraceEvent

__all__ = [
    "Action",
    "ActionKind",
    "Automaton",
    "Composition",
    "FairScheduler",
    "RandomScheduler",
    "SchedulerBase",
    "Trace",
    "TraceEvent",
    "method_suffix",
]
