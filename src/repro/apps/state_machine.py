"""Replicated state machines over virtually synchronous total order.

Commands are disseminated through the total-order layer
(:class:`~repro.order.total.TotalOrderNode`), so every replica applies the
same command sequence.  View changes exploit the service's guarantees:

* members of the transitional set have, by Virtual Synchrony, applied
  identical command sequences - no synchronisation needed among them;
* when a view contains *newcomers* (members outside the transitional
  set, i.e. arriving from other views), each co-mover group's leader (its
  least transitional-set member) broadcasts a state snapshot; because
  snapshots travel in the same total order as commands, the **first**
  snapshot delivered after the view wins at every replica, and commands
  delivered before it are buffered and re-applied on top - a fully
  deterministic merge, identical everywhere.

With ``universe`` given, the machine is *primary-partition*: commands are
accepted only while the current view holds a strict majority of the
universe, so divergent minority histories can never win a merge.

Failure semantics: if a merge's snapshot leader crashes before its offer
is delivered, the commands buffered while waiting are dropped - by every
co-mover identically, so replicas stay consistent - and the next view's
merge protocol re-runs.  Commands are therefore at-most-once across
leader failures; applications needing exactly-once must retry through
their own request ids.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ReproError
from repro.order.total import TotalOrderNode
from repro.types import ProcessId, View, ViewId

COMMAND = "rsm-cmd"
SNAPSHOT = "rsm-snap"

ApplyFn = Callable[[Any, Any], Any]  # (state, operation) -> new state


class NotPrimaryError(ReproError):
    """A command was submitted while the view lacks a universe majority."""


class ReplicatedStateMachine:
    """One replica of a deterministic state machine."""

    def __init__(
        self,
        member: Any,
        initial_state: Any,
        apply_fn: ApplyFn,
        *,
        universe: Optional[FrozenSet[ProcessId]] = None,
        on_apply: Optional[Callable[[Any, Any], None]] = None,
    ) -> None:
        self.pid: ProcessId = member.pid
        self.state = initial_state
        self.applied = 0
        self._apply_fn = apply_fn
        self._on_apply = on_apply
        self.universe = frozenset(universe) if universe is not None else None
        self.view: Optional[View] = None
        self.transitional: FrozenSet[ProcessId] = frozenset()
        # Set while waiting for the winning snapshot of a merge view;
        # commands delivered meanwhile are buffered in total order.
        self._awaiting_snapshot_for: Optional[ViewId] = None
        self._buffered: List[Any] = []
        self.order = TotalOrderNode(
            member, on_deliver=self._deliver, on_view=self._view_change
        )

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------

    def command(self, operation: Any) -> None:
        """Submit ``operation`` for replicated, totally ordered execution."""
        if not self.is_primary:
            raise NotPrimaryError(
                f"{self.pid}: view {self.view} lacks a majority of {sorted(self.universe)}"
            )
        self.order.broadcast((COMMAND, operation))

    @property
    def is_primary(self) -> bool:
        """Whether commands are currently accepted (majority rule)."""
        if self.universe is None:
            return True
        if self.view is None:
            return False
        return len(self.view.members & self.universe) * 2 > len(self.universe)

    # ------------------------------------------------------------------
    # total-order callbacks
    # ------------------------------------------------------------------

    def _deliver(self, sender: ProcessId, message: Any) -> None:
        kind = message[0]
        if kind == COMMAND:
            operation = message[1]
            if self._awaiting_snapshot_for is not None:
                self._buffered.append(operation)
            else:
                self._apply(operation)
        elif kind == SNAPSHOT:
            _tag, view_id, state, applied = message
            if self._awaiting_snapshot_for == view_id:
                # the first snapshot for this merge view wins, everywhere
                self.state = state
                self.applied = applied
                self._awaiting_snapshot_for = None
                buffered, self._buffered = self._buffered, []
                for operation in buffered:
                    self._apply(operation)

    def _view_change(self, view: View, transitional: FrozenSet[ProcessId]) -> None:
        self.view = view
        self.transitional = transitional
        self._awaiting_snapshot_for = None
        self._buffered = []
        newcomers = view.members - transitional
        if not newcomers:
            return  # co-movers are already consistent (Virtual Synchrony)
        self._awaiting_snapshot_for = view.vid
        if self.pid == min(transitional):
            # this group's leader offers its state; the total order picks
            # one winner among the merging groups' offers
            self.order.broadcast((SNAPSHOT, view.vid, self.state, self.applied))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _apply(self, operation: Any) -> None:
        self.state = self._apply_fn(self.state, operation)
        self.applied += 1
        if self._on_apply is not None:
            self._on_apply(self.state, operation)
