"""Application-level building blocks over the group communication service.

The paper motivates virtual synchrony with applications that "maintain
consistent replicated state of some sort" (Section 1) and notes that
transitional sets let co-movers skip costly synchronisation (Section
4.1.2).  :class:`~repro.apps.state_machine.ReplicatedStateMachine`
packages that recipe: totally ordered commands, transitional-set-driven
state transfer at merges, and an optional primary-partition policy.
"""

from repro.apps.state_machine import NotPrimaryError, ReplicatedStateMachine

__all__ = ["NotPrimaryError", "ReplicatedStateMachine"]
