"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the broad failure classes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro package."""


class SpecificationViolation(ReproError):
    """A trace or a step violates one of the paper's specifications.

    Raised by the checkers in :mod:`repro.checking` and by specification
    automata in :mod:`repro.spec` when asked to take a disabled step.
    """


class InvariantViolation(SpecificationViolation):
    """One of the paper's invariants (6.1-6.13, 7.1, 7.2) failed to hold."""


class RefinementViolation(SpecificationViolation):
    """A refinement mapping could not simulate an algorithm step."""


class ActionNotEnabled(ReproError):
    """An automaton was asked to perform an action whose precondition is false."""


class UnknownAction(ReproError):
    """An action name does not appear in an automaton's signature."""


class AmbiguousActionName(ReproError):
    """Two distinct action names collide onto one method suffix.

    ``method_suffix`` maps dots to underscores (``co_rfifo.send`` ->
    ``co_rfifo_send``), which is lossy: ``a.b_c`` and ``a_b.c`` would
    both resolve ``_pre_a_b_c``.  The registry in
    :mod:`repro.ioa.action` rejects the second name so the wrong
    precondition can never be silently attached to an action.
    """


class CompositionError(ReproError):
    """Automata cannot be composed (e.g. clashing output actions)."""


class InheritanceError(ReproError):
    """The inheritance construct of [26] was violated.

    The most important case: a child automaton's added effects modified a
    state variable owned by its parent, which would void the Proof
    Extension theorem.
    """


class TransportError(ReproError):
    """A transport-layer failure in the runtime or simulator."""


class SettleTimeoutError(ReproError):
    """A deployment failed to reach the awaited state within its timeout.

    Raised by the event-driven settling helpers (in place of the former
    unbounded sleep-polling loops) with a description of which processes
    were still unsettled and what state they were observed in.

    When the stall happened under a chaos schedule, ``schedule``
    describes the fault model and the operations still pending at the
    time of the timeout, so a CI log alone is enough to see what the
    deployment was being subjected to when it stopped converging.
    """

    def __init__(self, message: str = "", *, schedule: str | None = None) -> None:
        if schedule:
            message = f"{message}\npending fault schedule: {schedule}"
        super().__init__(message)
        self.schedule = schedule


class ClientMisuseError(ReproError):
    """The application violated the blocking-client contract (Fig. 12).

    For example, it sent a message while blocked, or acknowledged a block
    request it never received.
    """


class CrashedError(ReproError):
    """An operation was attempted on a crashed end-point (Section 8)."""
