"""Discrete-event network simulation substrate (paper Section 3.2).

Provides the deterministic clock, latency models, partitionable FIFO
network, per-process CO_RFIFO transports, and the :class:`SimWorld`
assembly of the full client-server deployment.
"""

from repro.net.latency import ConstantLatency, LatencyModel, LognormalLatency, UniformLatency
from repro.net.network import SimNetwork
from repro.net.simclock import EventScheduler, ScheduledEvent
from repro.net.transport import SimTransport
from repro.net.world import SimNode, SimWorld

__all__ = [
    "ConstantLatency",
    "EventScheduler",
    "LatencyModel",
    "LognormalLatency",
    "ScheduledEvent",
    "SimNetwork",
    "SimNode",
    "SimTransport",
    "SimWorld",
    "UniformLatency",
]
