"""Two-tier synchronization-message aggregation (the paper's Section 9).

    "In order to increase the scalability, we intend to explore ways to
    incorporate a two-tier hierarchy into our algorithm [...] messages
    will be sent by each process to its designated leader, which will in
    turn, aggregate the cut messages into a single message and forward it
    to the other leaders."

``TwoTierOverlay`` implements exactly that, as a transparent transport
overlay over :class:`~repro.net.world.SimWorld`: synchronization messages
ride member -> leader -> other leaders -> members, with each leader
*batching* its group's syncs into one aggregate per exchange.  The GCS
algorithm is untouched - the paper notes it "is presented at an abstract
level that would allow incorporating such extensions without violating
its correctness", and the overlay preserves the only property syncs rely
on: every synchronization message eventually reaches every intended
recipient with its original sender attribution.

Cost model (n members, L leaders, groups of g = n/L): a reconfiguration's
sync traffic drops from n(n-1) point-to-point messages to roughly
n (up) + L(L-1) (aggregates) + nL (down) - a large saving when L << n.
The price is up to two extra hops plus the leader's batching delay.

Scope: leaders are assumed stable (like the membership servers).  A
fallback timer flushes incomplete batches, so a silent member delays but
never blocks a reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.messages import SyncMsg
from repro.net.world import SimNode, SimWorld
from repro.types import ProcessId


@dataclass(frozen=True)
class UpSync:
    """Member -> leader: one synchronization message to aggregate."""

    origin: ProcessId
    sync: SyncMsg


@dataclass(frozen=True)
class AggregatedSync:
    """Leader -> leader / leader -> member: a batch of (origin, sync)."""

    entries: Tuple[Tuple[ProcessId, SyncMsg], ...]
    final: bool  # True on the leader->member leg (do not re-forward)


class TwoTierOverlay:
    """Install sync aggregation on a simulated world."""

    def __init__(
        self,
        world: SimWorld,
        groups: Dict[ProcessId, Iterable[ProcessId]],
        *,
        flush_delay: float = 1.0,
    ) -> None:
        """``groups`` maps each leader to its members (leader included)."""
        self.world = world
        self.flush_delay = flush_delay
        self.leader_of: Dict[ProcessId, ProcessId] = {}
        self.group_of: Dict[ProcessId, FrozenSet[ProcessId]] = {}
        for leader, members in groups.items():
            member_set = frozenset(members) | {leader}
            for pid in member_set:
                self.leader_of[pid] = leader
                self.group_of[pid] = member_set
        self.leaders = frozenset(groups)
        # per-leader batch under construction: origin -> sync
        self._pending: Dict[ProcessId, Dict[ProcessId, SyncMsg]] = {
            leader: {} for leader in self.leaders
        }
        self._flush_scheduled: Dict[ProcessId, bool] = {leader: False for leader in self.leaders}
        self.aggregates_sent = 0
        self._install()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _install(self) -> None:
        for pid, node in self.world.nodes.items():
            if pid not in self.leader_of:
                continue  # nodes outside the hierarchy keep direct syncs
            node.wire_interceptor = self._make_send_interceptor(node)
            node.receive_interceptor = self._make_receive_interceptor(node)

    def _make_send_interceptor(self, node: SimNode):
        def intercept(targets: FrozenSet[ProcessId], message: Any) -> bool:
            if not isinstance(message, SyncMsg):
                return False
            leader = self.leader_of[node.pid]
            if node.pid == leader:
                self._accept_up(leader, node.pid, message)
            else:
                node.transport.send({leader}, UpSync(node.pid, message))
            return True

        return intercept

    def _make_receive_interceptor(self, node: SimNode):
        def intercept(src: ProcessId, message: Any) -> bool:
            if isinstance(message, UpSync):
                self._accept_up(node.pid, message.origin, message.sync)
                return True
            if isinstance(message, AggregatedSync):
                self._accept_aggregate(node, message)
                return True
            return False

        return intercept

    # ------------------------------------------------------------------
    # leader logic
    # ------------------------------------------------------------------

    def _accept_up(self, leader: ProcessId, origin: ProcessId, sync: SyncMsg) -> None:
        pending = self._pending[leader]
        pending[origin] = sync
        if self._batch_complete(leader):
            self._flush(leader)
        elif not self._flush_scheduled[leader]:
            self._flush_scheduled[leader] = True
            self.world.clock.schedule(self.flush_delay, lambda: self._timer_flush(leader))

    def _batch_complete(self, leader: ProcessId) -> bool:
        """All group members the leader expects to hear from have spoken.

        The expectation is read off the leader's own endpoint: the members
        of its current start_change that belong to this group.
        """
        endpoint = self.world.nodes[leader].endpoint
        change = getattr(endpoint, "start_change", None)
        if change is None:
            return True  # nothing in progress: flush whatever arrived
        expected = change.members & self.group_of[leader]
        return expected <= set(self._pending[leader])

    def _timer_flush(self, leader: ProcessId) -> None:
        self._flush_scheduled[leader] = False
        if self._pending[leader]:
            self._flush(leader)

    def _flush(self, leader: ProcessId) -> None:
        pending = self._pending[leader]
        if not pending:
            return
        entries = tuple(sorted(pending.items()))
        self._pending[leader] = {}
        node = self.world.nodes[leader]
        remote_leaders = self.leaders - {leader}
        if remote_leaders:
            node.transport.send(remote_leaders, AggregatedSync(entries, final=False))
            self.aggregates_sent += len(remote_leaders)
        self._distribute(node, entries)

    def _accept_aggregate(self, node: SimNode, aggregate: AggregatedSync) -> None:
        if node.pid in self.leaders and not aggregate.final:
            self._distribute(node, aggregate.entries)
        else:
            self._deliver_entries(node, aggregate.entries)

    def _distribute(self, leader_node: SimNode, entries) -> None:
        """Leader -> local members (and itself)."""
        locals_ = self.group_of[leader_node.pid] - {leader_node.pid}
        if locals_:
            leader_node.transport.send(locals_, AggregatedSync(entries, final=True))
        self._deliver_entries(leader_node, entries)

    @staticmethod
    def _deliver_entries(node: SimNode, entries) -> None:
        for origin, sync in entries:
            if origin != node.pid:
                node.runner.receive(origin, sync)


def balanced_groups(pids: List[ProcessId], leaders: int) -> Dict[ProcessId, List[ProcessId]]:
    """Split ``pids`` into ``leaders`` contiguous groups; first of each leads."""
    pids = sorted(pids)
    if leaders < 1 or leaders > len(pids):
        raise ValueError("need 1 <= leaders <= len(pids)")
    size = (len(pids) + leaders - 1) // leaders
    groups = {}
    for start in range(0, len(pids), size):
        chunk = pids[start:start + size]
        groups[chunk[0]] = chunk
    return groups
