"""Compatibility shim: the two-tier overlay moved to :mod:`repro.scale`.

The §9 sync-aggregation overlay used to be simulator-only; it is now
substrate-agnostic (it installs on the
:class:`~repro.core.runner.EndpointRunner` interceptor seams instead of
on :class:`~repro.net.world.SimNode`).  This module keeps the historical
entry point - ``TwoTierOverlay(world, groups)`` over a
:class:`~repro.net.world.SimWorld` - and re-exports the wire types, so
existing experiments and tests run unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.net.world import SimWorld
from repro.scale.overlay import (  # noqa: F401  (re-exports)
    AggregatedSync,
    UpSync,
    auto_leaders,
    balanced_groups,
)
from repro.scale.overlay import TwoTierOverlay as _ScaleOverlay
from repro.types import ProcessId


def TwoTierOverlay(
    world: SimWorld,
    groups: Dict[ProcessId, Iterable[ProcessId]],
    *,
    flush_delay: float = 1.0,
) -> _ScaleOverlay:
    """Install sync aggregation on a simulated world (legacy signature)."""
    runners = {pid: node.runner for pid, node in world.nodes.items()}
    return _ScaleOverlay(
        runners,
        world.clock.schedule,
        groups,
        flush_delay=flush_delay,
        connected=world.network.connected,
    )
