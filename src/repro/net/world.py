"""The complete simulated deployment (the paper's Figure 1, executable).

``SimWorld`` assembles, on one discrete-event clock:

* a :class:`~repro.net.network.SimNetwork` with a latency model and
  partition support;
* one :class:`SimNode` per client process - a GCS end-point automaton
  driven reactively by an :class:`~repro.core.runner.EndpointRunner`
  over a :class:`~repro.net.transport.SimTransport`;
* a membership service: either the centralized
  :class:`~repro.membership.oracle.OracleMembership` (scripted timing,
  for controlled experiments) or a tier of
  :class:`~repro.membership.server.MembershipServer` processes with a
  topology failure detector (the full client-server architecture).

All externally observable behaviour lands in a single time-stamped
:class:`~repro.checking.events.GcsTrace`, so the property checkers of
:mod:`repro.checking` apply to simulated runs unchanged.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple, Type

from repro.chaos.faults import FaultInjector
from repro.checking.events import GcsTrace
from repro.core.forwarding import ForwardingStrategy
from repro.core.gcs_endpoint import GcsEndpoint
from repro.core.messages import WireMessage
from repro.core.runner import EndpointRunner
from repro.errors import SettleTimeoutError, TransportError
from repro.membership.failure_detector import TopologyFailureDetector
from repro.membership.oracle import OracleMembership
from repro.membership.protocol import StartChangeNotice, ViewNotice, server_id
from repro.membership.server import MembershipServer
from repro.membership.tier import MembershipTier
from repro.net.latency import LatencyModel
from repro.net.network import SimNetwork
from repro.net.simclock import EventScheduler
from repro.types import ProcessId, View


class SimTierLink:
    """Hosts a :class:`~repro.membership.tier.MembershipTier` on the
    simulated network.

    ``transmit`` rides ``network.send``, which admits every tier message
    through the shared :class:`~repro.links.LinkCore` (``outbound`` on
    entry, ``inbound_batch`` on carrier arrival) - proposals and notices
    see the same latency model, partition matrix, fault pipeline, dedup
    and counters as data traffic.
    """

    def __init__(self, network: SimNetwork) -> None:
        self.network = network

    async def attach(
        self, sid: ProcessId, handler: Callable[[ProcessId, Any], None]
    ) -> None:
        self.attach_sync(sid, handler)

    def attach_sync(self, sid: ProcessId, handler: Callable[[ProcessId, Any], None]) -> None:
        self.network.register(sid, handler)

    def transmit(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        self.network.send(src, dst, message)


class SimNode:
    """One client process: endpoint + runner + transport, wired up."""

    def __init__(
        self,
        pid: ProcessId,
        world: "SimWorld",
        endpoint: GcsEndpoint,
    ) -> None:
        self.pid = pid
        self.world = world
        self.endpoint = endpoint
        self.delivered: List[Tuple[ProcessId, Any]] = []
        self.views: List[Tuple[View, FrozenSet[ProcessId]]] = []
        # Optional application hooks, invoked after the node's own
        # bookkeeping; see :meth:`set_app`.
        self._app_on_deliver: Optional[Callable[[ProcessId, Any], None]] = None
        self._app_on_view: Optional[Callable[[View, FrozenSet[ProcessId]], None]] = None
        # Optional overlay interceptors (e.g. the two-tier hierarchy of
        # repro.net.hierarchy): return True to consume the send/receive.
        self.wire_interceptor: Optional[Callable[[FrozenSet[ProcessId], Any], bool]] = None
        self.receive_interceptor: Optional[Callable[[ProcessId, Any], bool]] = None
        self.transport = world.network and None  # replaced below
        from repro.net.transport import SimTransport  # local import: no cycle

        self.transport = SimTransport(pid, world.network, self._on_wire_message)
        self.runner = EndpointRunner(
            endpoint,
            send_wire=self._send_wire,
            set_reliable=self.transport.set_reliable,
            on_deliver=self._record_delivery,
            on_view=self._record_view,
            auto_block_ok=True,
            clock=lambda: world.clock.now,
            trace=world.trace,
            fastpath=world.fastpath,
        )

    # -- outbound ---------------------------------------------------------

    def _send_wire(self, targets: FrozenSet[ProcessId], message: WireMessage) -> None:
        if self.wire_interceptor is not None and self.wire_interceptor(targets, message):
            return
        self.transport.send(targets, message)

    def send(self, payload: Any) -> None:
        """Application-level multicast to the current view."""
        self.runner.app_send(payload)

    # -- inbound ----------------------------------------------------------

    def _on_wire_message(self, src: ProcessId, message: Any) -> None:
        if self.receive_interceptor is not None and self.receive_interceptor(src, message):
            return
        if isinstance(message, StartChangeNotice):
            self.runner.membership_start_change(message.cid, message.members)
        elif isinstance(message, ViewNotice):
            self.runner.membership_view(message.view)
        else:
            self.runner.receive(src, message)

    def set_app(
        self,
        on_deliver: Optional[Callable[[ProcessId, Any], None]] = None,
        on_view: Optional[Callable[[View, FrozenSet[ProcessId]], None]] = None,
    ) -> None:
        """Attach application callbacks for deliveries and view changes."""
        self._app_on_deliver = on_deliver
        self._app_on_view = on_view

    def _record_delivery(self, sender: ProcessId, payload: Any) -> None:
        self.delivered.append((sender, payload))
        if self._app_on_deliver is not None:
            self._app_on_deliver(sender, payload)

    def _record_view(self, view: View, transitional: FrozenSet[ProcessId]) -> None:
        self.views.append((view, transitional))
        if self._app_on_view is not None:
            self._app_on_view(view, transitional)

    # -- fault injection ----------------------------------------------------

    def crash(self) -> None:
        self.runner.crash()
        self.transport.crash()

    def recover(self) -> None:
        self.transport.recover()
        self.runner.recover()

    @property
    def current_view(self) -> View:
        return self.endpoint.current_view

    def __repr__(self) -> str:
        return f"<SimNode {self.pid} view={self.endpoint.current_view.vid!r}>"


class SimWorld:
    """A simulated cluster of GCS clients plus a membership service."""

    def __init__(
        self,
        *,
        latency: Optional[LatencyModel] = None,
        membership: str = "oracle",
        detection_delay: float = 0.0,
        round_duration: float = 1.0,
        servers: int = 1,
        forwarding: Optional[ForwardingStrategy] = None,
        endpoint_cls: Type[GcsEndpoint] = GcsEndpoint,
        gc_views: bool = True,
        strict: bool = False,
        compact_syncs: bool = False,
        ack_gc_interval: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        self.clock = EventScheduler()
        self.network = SimNetwork(self.clock, latency, faults)
        # None defers to $REPRO_FASTPATH (default on); False forces every
        # node through the general engine - the differential tests run
        # both and compare traces.
        self.fastpath = fastpath
        self.trace = GcsTrace()
        self.nodes: Dict[ProcessId, SimNode] = {}
        self._endpoint_cls = endpoint_cls
        self._endpoint_kwargs: Dict[str, Any] = {"gc_views": gc_views, "strict": strict}
        if forwarding is not None:
            self._endpoint_kwargs["forwarding"] = forwarding
        if compact_syncs:
            self._endpoint_kwargs["compact_syncs"] = True
        if ack_gc_interval is not None:
            self._endpoint_kwargs["ack_gc_interval"] = ack_gc_interval
        self.membership_mode = membership
        self.servers: Dict[ProcessId, MembershipServer] = {}
        # sorted(self.servers) cache behind a version counter: client
        # placement consults the server list per add_node, which at
        # n=1000 clients must not re-sort per call.
        self._servers_version = 0
        self._sorted_servers: Tuple[int, List[ProcessId]] = (-1, [])
        self.oracle: Optional[OracleMembership] = None
        self.failure_detector: Optional[TopologyFailureDetector] = None
        self.tier: Optional[MembershipTier] = None
        if membership == "oracle":
            self.oracle = OracleMembership(
                self.clock,
                detection_delay=detection_delay,
                round_duration=round_duration,
            )
        elif membership == "servers":
            self.failure_detector = TopologyFailureDetector(
                self.clock, self.network, detection_delay
            )
            for index in range(servers):
                self._add_server(server_id(str(index)))
        elif membership == "tier":
            # The full substrate-neutral tier - the same MembershipTier
            # (durable watermark store, crashable servers) the asyncio
            # and TCP clusters run, over the simulated network.
            self.tier = MembershipTier(
                SimTierLink(self.network),
                servers=servers,
                links=self.network.core,
                trace=self.trace,
                clock=lambda: self.clock.now,
            )
        else:
            raise ValueError(
                f"membership must be 'oracle', 'servers' or 'tier', got {membership!r}"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _add_server(self, sid: ProcessId) -> MembershipServer:
        server = MembershipServer(sid, send=self._server_send(sid))
        self.servers[sid] = server
        self._servers_version += 1
        self.network.register(sid, lambda src, msg, s=server: s.on_message(src, msg))
        assert self.failure_detector is not None
        self.failure_detector.attach(server)
        return server

    def sorted_servers(self) -> List[ProcessId]:
        """The server ids in sorted order (cached; do not mutate)."""
        version, cached = self._sorted_servers
        if version != self._servers_version:
            cached = sorted(self.servers)
            self._sorted_servers = (self._servers_version, cached)
        return cached

    def _server_send(self, sid: ProcessId) -> Callable[[ProcessId, Any], None]:
        def send(dst: ProcessId, message: Any) -> None:
            self.network.send(sid, dst, message)

        return send

    def add_node(self, pid: ProcessId, server: Optional[ProcessId] = None) -> SimNode:
        """Create a client process; in server mode, attach it to ``server``."""
        if pid in self.nodes:
            raise ValueError(f"duplicate process {pid!r}")
        endpoint = self._endpoint_cls(pid, **self._endpoint_kwargs)
        node = SimNode(pid, self, endpoint)
        self.nodes[pid] = node
        if self.oracle is not None:
            self.oracle.attach_client(
                pid,
                on_start_change=node.runner.membership_start_change,
                on_view=node.runner.membership_view,
            )
        elif self.tier is not None:
            if server is not None:
                raise ValueError("tier mode assigns homes itself")
            self.tier.add_client(pid)
        else:
            sids = self.sorted_servers()
            if not sids:
                raise TransportError("no membership servers configured")
            # crc32, not hash(): client placement must be stable across
            # interpreter runs (PYTHONHASHSEED varies) for deterministic
            # replay.
            digest = zlib.crc32(str(pid).encode("utf-8"))
            home = server or sids[digest % len(sids)]
            self.servers[home].add_client(pid)
            node.home_server = home  # type: ignore[attr-defined]
        return node

    def add_nodes(self, pids: Iterable[ProcessId]) -> List[SimNode]:
        return [self.add_node(pid) for pid in pids]

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Kick off the initial view formation for all registered clients."""
        if self.oracle is not None:
            self.oracle.reconfigure([list(self.nodes)])
        elif self.tier is not None:
            self.tier.start_sync()
        else:
            assert self.failure_detector is not None
            self.failure_detector.bootstrap()

    def set_members(self, members: Iterable[ProcessId]) -> bool:
        """Drive the registered client set (tier mode only)."""
        if self.tier is None:
            raise ValueError("set_members requires membership='tier'")
        return self.tier.set_members(members)

    @property
    def views_formed(self) -> List[View]:
        """Views the membership service has formed (oracle or tier mode)."""
        if self.oracle is not None:
            return self.oracle.views_formed
        if self.tier is not None:
            return self.tier.views_formed
        raise ValueError("views_formed is tracked by the oracle or the tier")

    def run(self, max_events: Optional[int] = None) -> int:
        return self.clock.run(max_events)

    def settle(self, max_events: int = 2_000_000) -> int:
        """Run the clock until no events remain; bounded, never hangs.

        The discrete-event analogue of the runtime clusters' quiescence
        waits: raises :class:`SettleTimeoutError` if the event queue is
        still non-empty after ``max_events`` steps (a livelocked
        protocol), instead of spinning forever.
        """
        executed = self.clock.run(max_events)
        remaining = self.clock.pending()
        if remaining:
            raise SettleTimeoutError(
                f"simulation still has {remaining} pending event(s) "
                f"after {executed} steps at t={self.clock.now:.3f}; "
                f"busiest links: {self.network.core.stats.describe_links()}; "
                f"{self.network.core.stats.describe_tier_links()}"
            )
        return executed

    @property
    def links(self):
        """The network's unified :class:`~repro.links.LinkCore`."""
        return self.network.core

    def run_until(self, time: float) -> int:
        return self.clock.run_until(time)

    def now(self) -> float:
        return self.clock.now

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[ProcessId]], *, reconfigure: bool = True) -> None:
        """Split client (and, in server mode, server) processes into groups.

        In server mode each listed group should contain the servers meant
        to serve it; clients of a group are reported to those servers by
        the failure detector.
        """
        groups = [list(group) for group in groups]
        if self.tier is not None:
            # The tier cuts the shared link core along its computed
            # components itself (clients plus their assigned server).
            client_groups = [
                [pid for pid in group if pid in self.nodes] for group in groups
            ]
            plan = self.tier.plan_partition([g for g in client_groups if g])
            self.tier.apply_partition(plan)
            return
        self.network.partition(groups)
        if reconfigure and self.oracle is not None:
            client_groups = [
                [pid for pid in group if pid in self.nodes] for group in groups
            ]
            self.oracle.reconfigure([g for g in client_groups if g])

    def heal(self, *, reconfigure: bool = True) -> None:
        if self.tier is not None:
            self.tier.heal()  # heals the network's link core too
            return
        self.network.heal()
        if reconfigure and self.oracle is not None:
            self.oracle.reconfigure([list(self.nodes)])

    def crash(self, pid: ProcessId, *, reconfigure: bool = True) -> None:
        node = self.nodes[pid]
        node.crash()
        if self.oracle is not None:
            self.oracle.client_crashed(pid)
            if reconfigure:
                self.oracle.reconfigure([[p for p in self.nodes if p != pid]])
        elif self.tier is not None:
            self.tier.client_crashed(pid)
        else:
            home = getattr(node, "home_server")
            self.servers[home].client_crashed(pid)

    def recover(self, pid: ProcessId, *, reconfigure: bool = True) -> None:
        node = self.nodes[pid]
        node.recover()
        if self.oracle is not None:
            self.oracle.client_recovered(pid)
            if reconfigure:
                self.oracle.reconfigure([list(self.nodes)])
        elif self.tier is not None:
            self.tier.client_recovered(pid)
        else:
            home = getattr(node, "home_server")
            self.servers[home].client_recovered(pid)

    # -- server faults (tier mode) ------------------------------------------

    def server_crash(self, sid: Optional[ProcessId] = None) -> ProcessId:
        """Crash a membership server (tier mode); clients fail over."""
        if self.tier is None:
            raise ValueError("server faults require membership='tier'")
        return self.tier.crash_server(sid)

    def server_recover(self, sid: ProcessId) -> None:
        """Recover a crashed membership server from the durable store."""
        if self.tier is None:
            raise ValueError("server faults require membership='tier'")
        self.tier.recover_server(sid)

    def server_partition(self, groups: Iterable[Iterable[ProcessId]]):
        """Partition the server tier; clients follow their home server."""
        if self.tier is None:
            raise ValueError("server faults require membership='tier'")
        return self.tier.partition_servers(groups)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def node(self, pid: ProcessId) -> SimNode:
        return self.nodes[pid]

    def current_views(self) -> Dict[ProcessId, View]:
        return {pid: node.endpoint.current_view for pid, node in self.nodes.items()}

    def all_in_view(self, view: View) -> bool:
        return all(
            self.nodes[pid].endpoint.current_view == view for pid in view.members
        )

    def message_counts(self) -> Dict[str, int]:
        return self.network.totals()
