"""Deterministic discrete-event clock.

A tiny event-driven scheduler: callbacks are executed in timestamp order
(FIFO among equal timestamps, by insertion sequence), and the clock jumps
from event to event.  Everything in :mod:`repro.net` - message
deliveries, failure-detector timeouts, membership rounds, fault
injections - runs on one of these, which makes simulated runs exactly
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class ScheduledEvent:
    """Handle returned by :meth:`EventScheduler.schedule`; cancellable."""

    def __init__(self, entry: _Entry, scheduler: "Optional[EventScheduler]" = None) -> None:
        self._entry = entry
        self._scheduler = scheduler

    @property
    def time(self) -> float:
        return self._entry.time

    def cancel(self) -> None:
        if not self._entry.cancelled:
            self._entry.cancelled = True
            if self._scheduler is not None:
                self._scheduler.note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class EventScheduler:
    """A timestamp-ordered callback queue with a virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[_Entry] = []
        self._seq = itertools.count()
        self.executed = 0
        self._cancelled = 0  # cancelled entries still parked in the heap

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback`` at ``now + delay`` (delay must be >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        entry = _Entry(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        return ScheduledEvent(entry, self)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        return self.schedule(max(0.0, time - self.now), callback)

    def note_cancelled(self) -> None:
        """Account one cancelled-in-place entry; compact when they dominate.

        Cancelled entries normally die lazily at pop time, which is fine
        until a workload cancels faster than it pops (per-client timers
        across a thousand-member reconfiguration): the heap then carries
        a majority of dead weight and every push/pop pays log of it.
        """
        self._cancelled += 1
        if self._cancelled > 64 and self._cancelled * 2 > len(self._heap):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def pending(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def step(self) -> bool:
        """Execute the next event; return False when the queue is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry.cancelled:
                self._cancelled -= 1
                continue
            self.now = entry.time
            entry.callback()
            self.executed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``); return count.

        The unbounded form inlines the pop loop: at n=1000 scale a settle
        drains millions of events and the per-event ``step()`` dispatch
        (call + bound-method rebinds) is measurable against the callback
        itself.
        """
        if max_events is not None:
            count = 0
            while count < max_events and self.step():
                count += 1
            return count
        count = 0
        pop = heapq.heappop
        while True:
            heap = self._heap  # re-read: compaction may swap the list
            if not heap:
                break
            entry = pop(heap)
            if entry.cancelled:
                self._cancelled -= 1
                continue
            self.now = entry.time
            entry.callback()
            count += 1
        self.executed += count
        return count

    def run_until(self, time: float) -> int:
        """Run events with timestamps <= ``time``; advance the clock to it."""
        count = 0
        while self._heap:
            entry = self._heap[0]
            if entry.cancelled:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            if entry.time > time:
                break
            self.step()
            count += 1
        self.now = max(self.now, time)
        return count
