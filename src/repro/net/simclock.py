"""Deterministic discrete-event clock.

A tiny event-driven scheduler: callbacks are executed in timestamp order
(FIFO among equal timestamps, by insertion sequence), and the clock jumps
from event to event.  Everything in :mod:`repro.net` - message
deliveries, failure-detector timeouts, membership rounds, fault
injections - runs on one of these, which makes simulated runs exactly
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class ScheduledEvent:
    """Handle returned by :meth:`EventScheduler.schedule`; cancellable."""

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry.time

    def cancel(self) -> None:
        self._entry.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class EventScheduler:
    """A timestamp-ordered callback queue with a virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[_Entry] = []
        self._seq = itertools.count()
        self.executed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback`` at ``now + delay`` (delay must be >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        entry = _Entry(self.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        return ScheduledEvent(entry)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        return self.schedule(max(0.0, time - self.now), callback)

    def pending(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def step(self) -> bool:
        """Execute the next event; return False when the queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self.now = entry.time
            entry.callback()
            self.executed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``); return count."""
        count = 0
        while (max_events is None or count < max_events) and self.step():
            count += 1
        return count

    def run_until(self, time: float) -> int:
        """Run events with timestamps <= ``time``; advance the clock to it."""
        count = 0
        while self._heap:
            entry = self._heap[0]
            if entry.cancelled:
                heapq.heappop(self._heap)
                continue
            if entry.time > time:
                break
            self.step()
            count += 1
        self.now = max(self.now, time)
        return count
