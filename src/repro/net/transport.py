"""Per-process CO_RFIFO transport over the simulated network.

``SimTransport`` gives each process the interface the GCS end-point
expects from the connection-oriented reliable FIFO service of Figure 3:

* ``send(targets, message)`` - FIFO multicast;
* ``set_reliable(targets)`` - declare to whom gap-free delivery must be
  maintained (messages to them are buffered across partitions and
  retransmitted after a heal); to anyone else, a partition may drop an
  arbitrary suffix - exactly CO_RFIFO's ``lose`` action.

Internally each destination has two queues: ``retransmit`` (messages
bounced back by the network when a partition cut the link; they precede
everything) and ``pending`` (messages that could not even be handed to
the network).  The pump drains retransmit-then-pending whenever the link
is up, preserving per-destination FIFO without gaps.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, FrozenSet, Iterable, Optional

from repro.net.network import SimNetwork
from repro.types import ProcessId

ReceiveHandler = Callable[[ProcessId, Any], None]


class SimTransport:
    """CO_RFIFO client endpoint for one simulated process."""

    def __init__(
        self,
        pid: ProcessId,
        network: SimNetwork,
        on_receive: Optional[ReceiveHandler] = None,
    ) -> None:
        self.pid = pid
        self.network = network
        self.on_receive = on_receive
        self.reliable_set: FrozenSet[ProcessId] = frozenset({pid})
        self._retransmit: Dict[ProcessId, Deque[Any]] = {}
        self._pending: Dict[ProcessId, Deque[Any]] = {}
        self.crashed = False
        network.register(pid, self._handle_delivery, self._handle_bounce)
        network.on_topology_change(self._pump_all)

    # ------------------------------------------------------------------
    # the CO_RFIFO client interface
    # ------------------------------------------------------------------

    def send(self, targets: Iterable[ProcessId], message: Any) -> None:
        """FIFO multicast ``message`` to every process in ``targets``.

        Fan-out is in sorted order: ``targets`` is usually a frozenset,
        and iterating it directly would make same-instant delivery order
        depend on the interpreter's hash seed (traces must replay
        byte-for-byte across processes).
        """
        if self.crashed:
            return
        for dst in sorted(targets):
            if dst == self.pid:
                continue
            if self._queues_empty(dst) and self.network.send(self.pid, dst, message):
                continue
            if dst in self.reliable_set or self.network.connected(self.pid, dst):
                self._pending.setdefault(dst, deque()).append(message)
                self._pump(dst)
            # else: destination is neither reliable nor connected - the
            # suffix is lost (CO_RFIFO.lose).

    def set_reliable(self, targets: Iterable[ProcessId]) -> None:
        """Declare the reliable set; may drop suffixes to dropped peers."""
        self.reliable_set = frozenset(targets)
        for dst in list(self._pending):
            if dst not in self.reliable_set and not self.network.connected(self.pid, dst):
                del self._pending[dst]
        for dst in list(self._retransmit):
            if dst not in self.reliable_set and not self.network.connected(self.pid, dst):
                del self._retransmit[dst]

    # ------------------------------------------------------------------
    # crash / recovery (Section 8)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        self.crashed = True
        self.reliable_set = frozenset()
        self._pending.clear()
        self._retransmit.clear()

    def recover(self) -> None:
        self.crashed = False
        self.reliable_set = frozenset({self.pid})

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _queues_empty(self, dst: ProcessId) -> bool:
        return not self._retransmit.get(dst) and not self._pending.get(dst)

    def _handle_delivery(self, src: ProcessId, message: Any) -> None:
        if self.crashed:
            return
        if self.on_receive is not None:
            self.on_receive(src, message)

    def _handle_bounce(self, dst: ProcessId, message: Any) -> None:
        """The network failed to transmit ``message`` (partition mid-flight).

        Bounces arrive in original send order, so appending to the
        retransmit queue preserves FIFO.
        """
        if self.crashed:
            return
        if dst in self.reliable_set:
            self._retransmit.setdefault(dst, deque()).append(message)
        # else: lost - dst is outside the reliable set.

    def _pump(self, dst: ProcessId) -> None:
        if self.crashed or not self.network.connected(self.pid, dst):
            return
        retransmit = self._retransmit.get(dst)
        while retransmit:
            if not self.network.send(self.pid, dst, retransmit[0]):
                return
            retransmit.popleft()
        pending = self._pending.get(dst)
        while pending:
            if not self.network.send(self.pid, dst, pending[0]):
                return
            pending.popleft()

    def _pump_all(self) -> None:
        for dst in set(self._retransmit) | set(self._pending):
            self._pump(dst)

    def backlog(self, dst: ProcessId) -> int:
        """Messages queued (not yet on the wire) towards ``dst``."""
        return len(self._retransmit.get(dst, ())) + len(self._pending.get(dst, ()))
