"""The simulated point-to-point network.

``SimNetwork`` carries messages between registered processes with
per-link latency and FIFO ordering, and models *partitions*: processes in
different partition groups cannot exchange messages.  When a partition
cuts a link, every message still in flight on it is *bounced back* to the
sending transport at that instant (a failed transmission); the transport
decides, based on its reliable set, whether to retransmit after the heal
or to drop (realising CO_RFIFO's ``lose``).  Bouncing at partition time -
rather than silently checking connectivity at arrival - keeps the
per-link FIFO/no-gap discipline easy to preserve across flapping links.

The network also keeps per-kind message counters; the benchmark harness
reads them to reproduce the paper's message-cost claims.

For chaos testing a :class:`~repro.chaos.faults.FaultInjector` can be
attached: dropped datagrams become retransmission-penalty latency,
duplicated ones travel the wire as :class:`DuplicateCopy` markers that
are discarded on arrival (receiver-side dedup), and delay/reorder faults
add jitter - all without breaking the per-link FIFO clamp, so the
CO_RFIFO contract the end-points assume keeps holding.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.chaos.faults import DuplicateCopy, FaultInjector
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.simclock import EventScheduler, ScheduledEvent
from repro.types import ProcessId

# receiver callback: (src, message) -> None
DeliveryHandler = Callable[[ProcessId, Any], None]
# bounce callback: (dst, message) -> None, invoked on failed transmission
BounceHandler = Callable[[ProcessId, Any], None]

Link = Tuple[ProcessId, ProcessId]


class SimNetwork:
    """Latency-modelled, partitionable, per-link-FIFO message fabric."""

    def __init__(
        self,
        clock: EventScheduler,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.clock = clock
        self.latency = latency or ConstantLatency(1.0)
        self.faults = faults
        self._handlers: Dict[ProcessId, DeliveryHandler] = {}
        self._bounce: Dict[ProcessId, BounceHandler] = {}
        self._group: Dict[ProcessId, int] = {}
        self._partition_listeners: List[Callable[[], None]] = []
        # Messages on the wire, per link, in arrival order.
        self._in_flight: Dict[Link, Deque[Tuple[ScheduledEvent, Any]]] = {}
        # Last scheduled arrival per link, to keep per-link FIFO even with
        # jittered latencies.
        self._last_arrival: Dict[Link, float] = {}
        self.sent = Counter()  # message-kind -> count handed to the network
        self.delivered = Counter()  # message-kind -> count delivered
        self.bounced = Counter()  # message-kind -> count bounced by partitions
        # message-kind -> estimated wire volume, for kinds that define
        # estimated_size() (currently synchronization messages)
        self.volume = Counter()

    # ------------------------------------------------------------------
    # registration and topology
    # ------------------------------------------------------------------

    def register(
        self,
        pid: ProcessId,
        handler: DeliveryHandler,
        bounce: Optional[BounceHandler] = None,
    ) -> None:
        self._handlers[pid] = handler
        if bounce is not None:
            self._bounce[pid] = bounce
        self._group.setdefault(pid, 0)

    def processes(self) -> List[ProcessId]:
        return sorted(self._handlers)

    def connected(self, p: ProcessId, q: ProcessId) -> bool:
        return self._group.get(p, 0) == self._group.get(q, 0)

    def reachable_from(self, p: ProcessId) -> Set[ProcessId]:
        group = self._group.get(p, 0)
        return {q for q in self._handlers if self._group.get(q, 0) == group}

    def partition(self, groups: Iterable[Iterable[ProcessId]]) -> None:
        """Split the network; unmentioned processes join group 0."""
        assignment: Dict[ProcessId, int] = {}
        for index, group in enumerate(groups, start=1):
            for pid in group:
                assignment[pid] = index
        for pid in self._handlers:
            self._group[pid] = assignment.get(pid, 0)
        self._flush_cut_links()
        self._notify_topology()

    def heal(self) -> None:
        """Merge all partitions back into one connected component."""
        for pid in self._group:
            self._group[pid] = 0
        self._notify_topology()

    def on_topology_change(self, listener: Callable[[], None]) -> None:
        self._partition_listeners.append(listener)

    def _notify_topology(self) -> None:
        for listener in list(self._partition_listeners):
            listener()

    def _flush_cut_links(self) -> None:
        """Bounce everything in flight on links the new topology cuts."""
        for (src, dst), flight in self._in_flight.items():
            if self.connected(src, dst):
                continue
            bounce = self._bounce.get(src)
            while flight:
                event, message = flight.popleft()
                event.cancel()
                self.bounced[self.kind_of(message)] += 1
                if isinstance(message, DuplicateCopy):
                    continue  # the original copy is bounced; the dup is moot
                if bounce is not None:
                    bounce(dst, message)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    @staticmethod
    def kind_of(message: Any) -> str:
        return type(message).__name__

    def send(self, src: ProcessId, dst: ProcessId, message: Any) -> bool:
        """Put ``message`` on the wire; False if src and dst are partitioned."""
        if not self.connected(src, dst):
            return False
        kind = self.kind_of(message)
        self.sent[kind] += 1
        size = getattr(message, "estimated_size", None)
        if size is not None:
            self.volume[kind] += size()
        decision = None
        if self.faults is not None and not isinstance(message, DuplicateCopy):
            decision = self.faults.decide(src, dst)
        link = (src, dst)
        arrival = self.clock.now + self.latency.sample(src, dst)
        if decision is not None:
            arrival += decision.extra_delay
        arrival = max(arrival, self._last_arrival.get(link, 0.0))
        self._last_arrival[link] = arrival
        flight = self._in_flight.setdefault(link, deque())

        def deliver() -> None:
            # Retire exactly this transmission's entry, keyed by the
            # scheduled event: matching by message identity pops a
            # different transmission's entry when the same message object
            # is on the link twice, leaving a live event that a later
            # partition flush cannot cancel.
            if flight and flight[0] is entry:
                flight.popleft()
            else:
                try:
                    flight.remove(entry)
                except ValueError:
                    pass
            self.delivered[kind] += 1
            if isinstance(message, DuplicateCopy):
                if self.faults is not None:
                    self.faults.suppressed_duplicate()
                return  # receiver-side dedup: the second copy dies here
            handler = self._handlers.get(dst)
            if handler is not None:
                handler(src, message)

        event = self.clock.schedule_at(arrival, deliver)
        entry = (event, message)
        flight.append(entry)
        if decision is not None and decision.duplicate:
            self.send(src, dst, DuplicateCopy(message))
        return True

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def reset_counters(self) -> None:
        self.sent.clear()
        self.delivered.clear()
        self.bounced.clear()
        self.volume.clear()

    def totals(self) -> Dict[str, int]:
        return dict(self.sent)
