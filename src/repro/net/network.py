"""The simulated point-to-point network.

``SimNetwork`` is the discrete-event *driver* over the unified
:class:`~repro.links.LinkCore`: the core owns link semantics (the
partition/reachability matrix, the fault-application pipeline,
receiver-side deduplication, the per-link FIFO clamp, message
counters), while this class owns what is genuinely scheduling - the
event queue that carries messages with per-link latency, and the
*bounce* discipline: when a partition cuts a link, every message still
in flight on it is bounced back to the sending transport at that
instant (a failed transmission); the transport decides, based on its
reliable set, whether to retransmit after the heal or to drop
(realising CO_RFIFO's ``lose``).  Bouncing at partition time - rather
than silently checking connectivity at arrival - keeps the per-link
FIFO/no-gap discipline easy to preserve across flapping links.

The per-kind message counters live in the core's
:class:`~repro.links.LinkStats`; the benchmark harness reads them to
reproduce the paper's message-cost claims, and the legacy ``sent`` /
``delivered`` / ``bounced`` / ``volume`` attributes remain as views.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.chaos.faults import FaultInjector
from repro.links import BATCH_LIMIT, Link, LinkCore, kind_of
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.simclock import EventScheduler, ScheduledEvent
from repro.types import ProcessId

# receiver callback: (src, message) -> None
DeliveryHandler = Callable[[ProcessId, Any], None]
# bounce callback: (dst, message) -> None, invoked on failed transmission
BounceHandler = Callable[[ProcessId, Any], None]


class _Carrier:
    """One scheduled transmission on one link: a batch of wire copies.

    Same-instant sends on one ordered link whose (FIFO-clamped) arrival
    coincides share a carrier - one scheduler event for up to
    ``BATCH_LIMIT`` copies - which is what makes a steady-state multicast
    burst O(links) events instead of O(messages).  ``closed`` flips when
    the carrier fires (or bounces): a later send at the same virtual
    instant must then open a fresh carrier rather than append to one that
    has already delivered.
    """

    __slots__ = ("copies", "arrival", "opened_at", "closed")

    def __init__(self, wire: Any, arrival: float, opened_at: float) -> None:
        self.copies = [wire]
        self.arrival = arrival
        self.opened_at = opened_at
        self.closed = False


class SimNetwork:
    """Latency-modelled, partitionable, per-link-FIFO message fabric."""

    def __init__(
        self,
        clock: EventScheduler,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultInjector] = None,
        core: Optional[LinkCore] = None,
    ) -> None:
        self.clock = clock
        self.latency = latency or ConstantLatency(1.0)
        self.core = core if core is not None else LinkCore(faults=faults)
        self._handlers: Dict[ProcessId, DeliveryHandler] = {}
        # processes() cache: sorting a thousand handlers per call turns
        # every O(1) lookup into O(n log n); the version counter moves on
        # registration only.
        self._handlers_version = 0
        self._sorted_handlers: Tuple[int, List[ProcessId]] = (-1, [])
        self._bounce: Dict[ProcessId, BounceHandler] = {}
        # Carriers on the wire, per link, in arrival order.
        self._in_flight: Dict[Link, Deque[Tuple[ScheduledEvent, _Carrier]]] = {}
        # The newest (possibly still joinable) carrier per link.
        self._open: Dict[Link, _Carrier] = {}
        # The flush must observe topology changes before any transport
        # pump does, so it is the core's first listener.
        self.core.on_topology_change(self._flush_cut_links)

    @property
    def faults(self) -> Optional[FaultInjector]:
        return self.core.faults

    # ------------------------------------------------------------------
    # registration and topology (delegated to the link core)
    # ------------------------------------------------------------------

    def register(
        self,
        pid: ProcessId,
        handler: DeliveryHandler,
        bounce: Optional[BounceHandler] = None,
    ) -> None:
        if pid not in self._handlers:
            self._handlers_version += 1
        self._handlers[pid] = handler
        if bounce is not None:
            self._bounce[pid] = bounce
        self.core.ensure(pid)

    def processes(self) -> List[ProcessId]:
        version, cached = self._sorted_handlers
        if version != self._handlers_version:
            cached = sorted(self._handlers)
            self._sorted_handlers = (self._handlers_version, cached)
        return list(cached)

    def connected(self, p: ProcessId, q: ProcessId) -> bool:
        return self.core.connected(p, q)

    def reachable_from(self, p: ProcessId) -> Set[ProcessId]:
        return self.core.reachable_from(p)

    def partition(self, groups: Iterable[Iterable[ProcessId]]) -> None:
        """Split the network; unmentioned processes join group 0."""
        self.core.partition(groups)

    def heal(self) -> None:
        """Merge all partitions back into one connected component."""
        self.core.heal()

    def on_topology_change(self, listener: Callable[[], None]) -> None:
        self.core.on_topology_change(listener)

    def _flush_cut_links(self) -> None:
        """Bounce everything in flight on links the new topology cuts.

        A carrier bounces *whole* - each of its copies accounted and
        handed back in channel order - so a cut never splits a batch into
        a delivered prefix and a bounced suffix.
        """
        for (src, dst), flight in self._in_flight.items():
            if self.core.connected(src, dst):
                continue
            bounce = self._bounce.get(src)
            while flight:
                event, carrier = flight.popleft()
                event.cancel()
                carrier.closed = True
                for wire in carrier.copies:
                    original = self.core.bounced(src, dst, wire)
                    if original is not None and bounce is not None:
                        bounce(dst, original)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    @staticmethod
    def kind_of(message: Any) -> str:
        return kind_of(message)

    def send(self, src: ProcessId, dst: ProcessId, message: Any) -> bool:
        """Put ``message`` on the wire; False if src and dst are partitioned."""
        transmission = self.core.outbound(src, dst, message)
        if transmission is None:
            return False
        for wire, extra in transmission.copies:
            self._schedule(src, dst, wire, extra)
        return True

    def _schedule(self, src: ProcessId, dst: ProcessId, wire: Any, extra: float) -> None:
        link = (src, dst)
        now = self.clock.now
        # The FIFO clamp must see every proposed arrival (it is stateful),
        # so sample and clamp before deciding whether to coalesce.
        arrival = self.core.fifo_arrival(
            src, dst, now + self.latency.sample(src, dst) + extra
        )
        carrier = self._open.get(link)
        if (
            carrier is not None
            and not carrier.closed
            and extra == 0.0
            and carrier.opened_at == now
            and carrier.arrival == arrival
            and len(carrier.copies) < BATCH_LIMIT
        ):
            # Same instant, same (clamped) arrival, same link: the copy
            # rides the already-scheduled carrier.  Channel order within
            # the carrier is append order, so per-link FIFO is untouched.
            carrier.copies.append(wire)
            return
        flight = self._in_flight.setdefault(link, deque())
        carrier = _Carrier(wire, arrival, now)
        self._open[link] = carrier

        def deliver() -> None:
            # Retire exactly this carrier's entry, keyed by the scheduled
            # event: matching by message identity pops a different
            # transmission's entry when the same message object is on the
            # link twice, leaving a live event that a later partition
            # flush cannot cancel.
            carrier.closed = True
            if flight and flight[0] is entry:
                flight.popleft()
            else:
                try:
                    flight.remove(entry)
                except ValueError:
                    pass
            handler = self._handlers.get(dst)
            for payload in self.core.inbound_batch(src, dst, carrier.copies):
                if handler is not None:
                    handler(src, payload)

        event = self.clock.schedule_at(arrival, deliver)
        entry = (event, carrier)
        flight.append(entry)

    # ------------------------------------------------------------------
    # statistics (views over the core's LinkStats)
    # ------------------------------------------------------------------

    @property
    def sent(self) -> Counter:
        return self.core.stats.sent

    @property
    def delivered(self) -> Counter:
        return self.core.stats.delivered

    @property
    def bounced(self) -> Counter:
        return self.core.stats.bounced

    @property
    def volume(self) -> Counter:
        return self.core.stats.volume

    def reset_counters(self) -> None:
        self.core.reset_counters()

    def totals(self) -> Dict[str, int]:
        return self.core.totals()
