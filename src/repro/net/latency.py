"""Link latency models for the simulated network.

The paper's implementation ran on a LAN ([36]); its design targets WANs
(Section 1).  The latency models here let the benchmarks sweep both
regimes: a constant LAN-like delay, a uniform jitter band, and a
heavy-tailed lognormal WAN-like distribution.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.types import ProcessId


class LatencyModel:
    """Samples a one-way delay for a (src, dst) message."""

    def sample(self, src: ProcessId, dst: ProcessId) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Expected one-way delay, used by benchmarks for round estimates."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def sample(self, src: ProcessId, dst: ProcessId) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from [low, high]."""

    def __init__(self, low: float = 0.5, high: float = 1.5, seed: int = 0) -> None:
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self.rng = random.Random(seed)

    def sample(self, src: ProcessId, dst: ProcessId) -> float:
        return self.rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class LognormalLatency(LatencyModel):
    """Heavy-tailed WAN-like delays with median ``median`` and shape ``sigma``."""

    def __init__(self, median: float = 1.0, sigma: float = 0.5, seed: int = 0) -> None:
        if median <= 0:
            raise ValueError("median must be positive")
        self.median = median
        self.sigma = sigma
        self.rng = random.Random(seed)

    def sample(self, src: ProcessId, dst: ProcessId) -> float:
        return self.rng.lognormvariate(math.log(self.median), self.sigma)

    def mean(self) -> float:
        return self.median * math.exp(self.sigma**2 / 2)

    def __repr__(self) -> str:
        return f"LognormalLatency({self.median}, {self.sigma})"
