"""Execute chaos plans on any deployment backend and audit the traces.

``ChaosRunner`` is the bridge between a :class:`~repro.chaos.plan.ChaosPlan`
and the substrate-agnostic :class:`~repro.deploy.base.Deployment`
contract: it replays the plan's operations on a fresh deployment of the
chosen backend with the plan's fault model injected into the substrate's
transport, then holds the recorded :class:`GcsTrace` to the full safety
battery plus MBRSHP (Figure 2) conformance.  A settle timeout during the
episode is reported as a violation too - under a *masked* fault model
(drops become retransmission latency, duplicates are deduplicated) the
protocol has no excuse to stall, so a stall is as much a finding as a
broken property, and the raised
:class:`~repro.errors.SettleTimeoutError` carries the pending fault
schedule for diagnosis.

The ``mutate_trace`` hook applies a transformation to the trace before
checking.  Its production use is the self-test: inject a known-bad
mutation (:func:`forge_nonmonotonic_view`) and confirm the pipeline
catches it and shrinks it - proof that a green chaos sweep is green
because the protocol is correct, not because the checkers are asleep.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.faults import FaultInjector
from repro.chaos.plan import ChaosOp, ChaosPlan
from repro.checking.events import GcsTrace, ViewEvent
from repro.checking.verdict import Verdict, run_verdict
from repro.errors import SettleTimeoutError

#: The violation code of a stalled episode (settle timeout) - a runtime
#: finding, not a trace rule; see :data:`repro.checking.codes.REGISTRY`.
STALL_CODE = "RUN-STALL"

# One latency unit of the fault model, in each substrate's own time.
# The simulator's virtual clock ticks in model units; the asyncio and TCP
# runtimes run in real seconds, where a few milliseconds already reorder
# traffic without stretching CI wall-clock.
TIME_SCALES: Dict[str, float] = {"sim": 1.0, "async": 0.003, "tcp": 0.003}

TraceMutator = Callable[[GcsTrace], GcsTrace]


def forge_nonmonotonic_view(trace: GcsTrace) -> GcsTrace:
    """The canonical known-bad mutation: re-deliver the last view.

    Appending a copy of the final :class:`ViewEvent` makes the view
    identifiers at that process non-increasing, which Local Monotonicity
    (Section 3.1) must reject on every schedule - so this mutation is
    catchable regardless of what the episode otherwise did.
    """
    views = trace.of_type(ViewEvent)
    if not views:
        return trace
    mutated = GcsTrace(trace)
    mutated.append(views[-1])
    return mutated


@dataclass
class Episode:
    """The outcome of one chaos plan on one backend."""

    plan: ChaosPlan
    backend: str
    violation: Optional[str] = None  # None == the full battery passed
    counters: Dict[str, int] = field(default_factory=dict)  # injected faults
    events: int = 0  # trace length
    trace: Optional[GcsTrace] = None
    link_totals: Dict[str, int] = field(default_factory=dict)  # per-kind wire counters
    verdict: Optional[Verdict] = None  # absent when the episode stalled

    @property
    def ok(self) -> bool:
        return self.violation is None

    @property
    def code(self) -> Optional[str]:
        """The stable violation code of the primary finding, if any."""
        if self.violation is None:
            return None
        if self.verdict is not None and not self.verdict.ok:
            return self.verdict.primary.code
        return STALL_CODE

    @property
    def witness_index(self) -> Optional[int]:
        """Earliest violating event index; None for ok or stalled runs."""
        if self.verdict is not None and not self.verdict.ok:
            return self.verdict.primary.witness_index
        return None

    def summary(self) -> str:
        status = "ok" if self.ok else f"VIOLATION: {self.violation}"
        injected = {k: v for k, v in self.counters.items() if k != "messages"}
        return (
            f"[{self.backend}] seed={self.plan.seed} ops={len(self.plan.ops)} "
            f"events={self.events} faults={injected} -> {status}"
        )


class ChaosRunner:
    """Runs :class:`ChaosPlan` episodes on one backend and checks them."""

    def __init__(
        self,
        backend: str = "sim",
        *,
        mutate_trace: Optional[TraceMutator] = None,
    ) -> None:
        if backend not in TIME_SCALES:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {sorted(TIME_SCALES)}"
            )
        self.backend = backend
        self.mutate_trace = mutate_trace

    # ------------------------------------------------------------------
    # episodes
    # ------------------------------------------------------------------

    def run(self, plan: ChaosPlan) -> Episode:
        """Execute ``plan`` once; never raises on a violation, reports it."""
        injector = FaultInjector(
            plan.faults, time_scale=TIME_SCALES[self.backend]
        )
        try:
            deployment = asyncio.run(self._execute(plan, injector))
        except SettleTimeoutError as exc:
            return Episode(
                plan=plan,
                backend=self.backend,
                violation=f"settle timeout: {exc}",
                counters=injector.snapshot(),
            )
        trace = deployment.trace
        if self.mutate_trace is not None:
            trace = self.mutate_trace(trace)
        verdict = run_verdict(trace, list(plan.processes))
        violation: Optional[str] = None
        if not verdict.ok:
            primary = verdict.primary
            violation = (
                f"{primary.code} @ event {primary.witness_index}: {primary.message}"
            )
        return Episode(
            plan=plan,
            backend=self.backend,
            violation=violation,
            counters=injector.snapshot(),
            events=len(trace),
            trace=trace,
            link_totals=deployment.link_totals(),
            verdict=verdict,
        )

    def run_seed(self, seed: int, *, intensity: float = 1.0, **generate_kwargs: Any) -> Episode:
        """Generate the plan for ``seed`` and run it."""
        plan = ChaosPlan.generate(seed, intensity=intensity, **generate_kwargs)
        return self.run(plan)

    def sweep(
        self,
        seeds: List[int],
        *,
        intensity: float = 1.0,
        on_episode: Optional[Callable[[Episode], None]] = None,
        **generate_kwargs: Any,
    ) -> List[Episode]:
        """Run one episode per seed; collect every outcome."""
        episodes = []
        for seed in seeds:
            episode = self.run_seed(seed, intensity=intensity, **generate_kwargs)
            episodes.append(episode)
            if on_episode is not None:
                on_episode(episode)
        return episodes

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------

    async def _execute(self, plan: ChaosPlan, injector: FaultInjector) -> Any:
        from repro.deploy import make_deployment  # local import: no cycle

        kwargs: Dict[str, Any] = {"faults": injector}
        if plan.servers:
            # The episode targets the server fault domain: deploy a
            # crashable membership tier of the plan's size (the runtime
            # backends always run a tier; the simulator needs opting out
            # of its default oracle).
            kwargs["servers"] = plan.servers
            if self.backend == "sim":
                kwargs["membership"] = "tier"
        deployment = make_deployment(self.backend, **kwargs)
        try:
            await deployment.setup(list(plan.processes))
            if plan.overlay_leaders:
                from repro.scale import install_overlay

                install_overlay(deployment, leaders=plan.overlay_leaders)
            for index, op in enumerate(plan.ops):
                try:
                    await self._apply(deployment, op)
                except SettleTimeoutError as exc:
                    raise SettleTimeoutError(
                        f"chaos op {index} ({op.describe()}) stalled: {exc}",
                        schedule=self._pending_schedule(plan, index, injector),
                    ) from exc
        finally:
            await deployment.close()
        return deployment

    @staticmethod
    async def _apply(deployment: Any, op: ChaosOp) -> None:
        if op.kind == "send":
            await deployment.send(op.pid, op.payload)
        elif op.kind == "settle":
            await deployment.settle()
        elif op.kind == "partition":
            await deployment.partition([list(g) for g in op.groups])
        elif op.kind == "heal":
            await deployment.heal()
        elif op.kind in ("crash", "leader_crash"):
            # leader_crash is a crash whose pid was an acting overlay
            # leader at generation time; the overlay re-elects.
            await deployment.crash(op.pid)
        elif op.kind == "recover":
            await deployment.recover(op.pid)
        elif op.kind == "reconfigure":
            await deployment.reconfigure(list(op.members))
        elif op.kind in ("server_crash", "server_recover", "server_partition"):
            # Plans address membership servers by tier index; resolve to
            # this substrate's server ids at execution time.
            sids = deployment.server_ids()
            if op.kind == "server_crash":
                await deployment.server_crash(sids[op.server])
            elif op.kind == "server_recover":
                await deployment.server_recover(sids[op.server])
            else:
                await deployment.server_partition(
                    [[sids[i] for i in group] for group in op.server_groups]
                )
        else:
            raise ValueError(f"unknown chaos op kind {op.kind!r}")

    @staticmethod
    def _pending_schedule(plan: ChaosPlan, index: int, injector: FaultInjector) -> str:
        pending = [op.describe() for op in plan.ops[index:]]
        return (
            f"seed={plan.seed} faults=[{plan.faults.describe()}] "
            f"injected={injector.snapshot()} "
            f"pending_ops={pending}"
        )


__all__ = [
    "STALL_CODE",
    "TIME_SCALES",
    "ChaosRunner",
    "Episode",
    "forge_nonmonotonic_view",
]
