"""Seeded chaos schedules over the Deployment contract.

A :class:`ChaosPlan` is everything one adversarial episode needs: the
process set, a :class:`~repro.chaos.faults.FaultModel` for the substrate,
and a schedule of :class:`ChaosOp` steps (multicasts, partitions, heals,
crashes, recoveries, reconfigurations).  The whole plan derives
deterministically from one integer seed, so quoting the seed *is*
quoting the episode; :meth:`ChaosPlan.to_dict` / :meth:`from_dict` give
the byte-for-byte serialisation the shrinker prints for replay.

Generation walks a small state machine so that every emitted schedule is
*executable on all three substrates*.  The invariants encode real
substrate semantics, not taste:

* crash/recover and partition only while the explicit member set is the
  full process set - the simulator's oracle reconfigures to "everyone
  minus the crashed" on those events, so doing them mid-reconfiguration
  would make the substrates diverge;
* crash/recover never during a partition - the runtime tiers wait for a
  view of *all* active members, which cannot form across a cut;
* reconfiguration targets exclude crashed processes and keep >= 2
  members, partitions start from a crash-free full group, and sends come
  from processes that are currently in the configured member set.

The same state machine powers :func:`sanitise_ops`, which repairs an
arbitrary op list (dropping now-disabled steps and appending the closing
heal/recover/reconfigure/settle sequence).  The shrinker leans on it:
removing ops from a valid schedule yields another valid schedule, so
shrinking explores only executable candidates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chaos.faults import FaultModel
from repro.types import ProcessId

# Operation kinds, in the vocabulary of repro.deploy.base.Deployment.
# ``leader_crash`` is a crash whose target was an acting overlay leader
# when the op was generated - it exercises the scale tier's re-election
# path and only appears in plans with ``overlay_leaders`` set.
OP_KINDS = (
    "send",
    "settle",
    "partition",
    "heal",
    "crash",
    "leader_crash",
    "recover",
    "reconfigure",
    "server_crash",
    "server_recover",
    "server_partition",
)


@dataclass(frozen=True)
class ChaosOp:
    """One step of a chaos schedule, mirroring the Deployment contract."""

    kind: str
    pid: Optional[ProcessId] = None  # send / crash / recover
    payload: Any = None  # send
    groups: Tuple[Tuple[ProcessId, ...], ...] = ()  # partition
    members: Tuple[ProcessId, ...] = ()  # reconfigure
    # Membership-server ops address servers by *tier index* (the runner
    # maps indices through Deployment.server_ids() at execution time),
    # so a plan is substrate-independent of server id naming.
    server: Optional[int] = None  # server_crash / server_recover
    server_groups: Tuple[Tuple[int, ...], ...] = ()  # server_partition

    def describe(self) -> str:
        if self.kind == "send":
            return f"send({self.pid}, {self.payload!r})"
        if self.kind == "partition":
            return f"partition({[list(g) for g in self.groups]})"
        if self.kind == "reconfigure":
            return f"reconfigure({list(self.members)})"
        if self.kind in ("crash", "leader_crash", "recover"):
            return f"{self.kind}({self.pid})"
        if self.kind in ("server_crash", "server_recover"):
            return f"{self.kind}(#{self.server})"
        if self.kind == "server_partition":
            return f"server_partition({[list(g) for g in self.server_groups]})"
        return f"{self.kind}()"

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.pid is not None:
            data["pid"] = self.pid
        if self.payload is not None:
            data["payload"] = self.payload
        if self.groups:
            data["groups"] = [list(g) for g in self.groups]
        if self.members:
            data["members"] = list(self.members)
        # Absent from every pre-server-fault serialisation; old dicts
        # round-trip unchanged.
        if self.server is not None:
            data["server"] = self.server
        if self.server_groups:
            data["server_groups"] = [list(g) for g in self.server_groups]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosOp":
        return cls(
            kind=data["kind"],
            pid=data.get("pid"),
            payload=data.get("payload"),
            groups=tuple(tuple(g) for g in data.get("groups", ())),
            members=tuple(data.get("members", ())),
            server=data.get("server"),
            server_groups=tuple(tuple(g) for g in data.get("server_groups", ())),
        )


class _ScheduleState:
    """The executable-schedule state machine (see the module docstring)."""

    def __init__(
        self, processes: Sequence[ProcessId], leaders: int = 0, servers: int = 0
    ) -> None:
        self.full: Tuple[ProcessId, ...] = tuple(processes)
        self.leaders = max(0, min(leaders, len(self.full)))
        # Membership-server fault domain: only meaningful with >= 2
        # servers (the last alive server can never crash).
        self.servers = max(0, servers)
        self.partitioned = False
        self.server_partitioned = False
        self.crashed: set = set()
        self.crashed_servers: set = set()
        self.configured: Tuple[ProcessId, ...] = self.full

    # -- enabling preconditions -------------------------------------------

    def senders(self) -> List[ProcessId]:
        if self.partitioned or self.server_partitioned:
            # Partition requires a crash-free full group, so every
            # process is up and inside some component.
            return list(self.full)
        return [p for p in self.configured if p not in self.crashed]

    def can_partition(self) -> bool:
        return (
            not self.partitioned
            and not self.server_partitioned
            and not self.crashed
            and self.configured == self.full
            and len(self.full) >= 2
        )

    def can_heal(self) -> bool:
        return self.partitioned or self.server_partitioned

    def crash_candidates(self) -> List[ProcessId]:
        if self.partitioned or self.server_partitioned or self.configured != self.full:
            return []
        alive = [p for p in self.full if p not in self.crashed]
        return alive if len(alive) >= 3 else []  # keep >= 2 survivors

    def recover_candidates(self) -> List[ProcessId]:
        if self.partitioned or self.server_partitioned:
            return []
        return sorted(self.crashed)

    # -- the server fault domain ------------------------------------------

    def server_crash_candidates(self) -> List[int]:
        """Crashable server indices: >= 1 survivor, no partition of any
        kind in effect, and the full member set configured (a failover
        re-forms the *current* view; mid-reconfiguration the substrates
        would diverge, exactly as for client crashes)."""
        if self.servers < 2 or self.partitioned or self.server_partitioned:
            return []
        if self.configured != self.full:
            return []
        alive = [i for i in range(self.servers) if i not in self.crashed_servers]
        return alive if len(alive) >= 2 else []

    def server_recover_candidates(self) -> List[int]:
        if self.partitioned or self.server_partitioned:
            return []
        return sorted(self.crashed_servers)

    def can_server_partition(self) -> bool:
        return (
            self.servers >= 2
            and not self.partitioned
            and not self.server_partitioned
            and not self.crashed
            and not self.crashed_servers
            and self.configured == self.full
        )

    def current_leaders(self) -> List[ProcessId]:
        """The acting overlay leaders under the current crash set.

        Mirrors :meth:`repro.scale.overlay.TwoTierOverlay.leader_for`:
        contiguous balanced groups over the sorted full process set,
        each led by its least alive member.  (``leader_crash`` is only
        enabled outside partitions, so reachability never differs from
        liveness here.)
        """
        if not self.leaders:
            return []
        from repro.scale.overlay import balanced_groups

        leaders: List[ProcessId] = []
        for members in balanced_groups(list(self.full), self.leaders).values():
            leaders.append(
                next((p for p in members if p not in self.crashed), members[0])
            )
        return leaders

    def leader_crash_candidates(self) -> List[ProcessId]:
        acting = set(self.current_leaders())
        return [p for p in self.crash_candidates() if p in acting]

    def can_reconfigure(self) -> bool:
        return (
            not self.partitioned
            and not self.server_partitioned
            and not self.crashed
            and len(self.full) >= 2
        )

    def enabled(self, op: ChaosOp) -> bool:
        if op.kind == "settle":
            return True
        if op.kind == "send":
            return op.pid in self.senders()
        if op.kind == "partition":
            return (
                self.can_partition()
                and len(op.groups) >= 2
                and sorted(p for g in op.groups for p in g) == sorted(self.full)
            )
        if op.kind == "heal":
            return self.can_heal()
        if op.kind == "crash":
            return op.pid in self.crash_candidates()
        if op.kind == "leader_crash":
            return op.pid in self.leader_crash_candidates()
        if op.kind == "recover":
            return op.pid in self.recover_candidates()
        if op.kind == "reconfigure":
            members = set(op.members)
            return (
                self.can_reconfigure()
                and len(members) >= 2
                and members <= set(self.full)
            )
        if op.kind == "server_crash":
            return op.server in self.server_crash_candidates()
        if op.kind == "server_recover":
            return op.server in self.server_recover_candidates()
        if op.kind == "server_partition":
            return (
                self.can_server_partition()
                and len(op.server_groups) >= 2
                and sorted(i for g in op.server_groups for i in g)
                == list(range(self.servers))
            )
        return False

    def apply(self, op: ChaosOp) -> None:
        if op.kind == "partition":
            self.partitioned = True
        elif op.kind == "heal":
            self.partitioned = False
            self.server_partitioned = False
        elif op.kind in ("crash", "leader_crash"):
            self.crashed.add(op.pid)
        elif op.kind == "recover":
            self.crashed.discard(op.pid)
        elif op.kind == "reconfigure":
            self.configured = tuple(sorted(op.members))
        elif op.kind == "server_crash":
            self.crashed_servers.add(op.server)
        elif op.kind == "server_recover":
            self.crashed_servers.discard(op.server)
        elif op.kind == "server_partition":
            self.server_partitioned = True

    def closing_ops(self) -> List[ChaosOp]:
        """The suffix that returns the deployment to a stable full view."""
        ops: List[ChaosOp] = []
        if self.partitioned or self.server_partitioned:
            ops.append(ChaosOp("heal"))
        for pid in sorted(self.crashed):
            ops.append(ChaosOp("recover", pid=pid))
        for index in sorted(self.crashed_servers):
            ops.append(ChaosOp("server_recover", server=index))
        if self.configured != self.full:
            ops.append(ChaosOp("reconfigure", members=self.full))
        ops.append(ChaosOp("settle"))
        return ops


def sanitise_ops(
    processes: Sequence[ProcessId],
    ops: Iterable[ChaosOp],
    *,
    leaders: int = 0,
    servers: int = 0,
) -> Tuple[ChaosOp, ...]:
    """Repair an op list into an executable, properly closed schedule.

    Walks the state machine, drops every op whose precondition does not
    hold at its position (the fate of ops orphaned by shrinking), and
    appends the closing heal/recover/reconfigure/settle suffix.
    ``leaders`` is the plan's ``overlay_leaders``; without it every
    ``leader_crash`` is disabled (no overlay, no leaders to crash).
    ``servers`` is the plan's membership-server count; below 2 every
    server fault op is disabled (the last server can never crash).
    """
    state = _ScheduleState(processes, leaders, servers)
    kept: List[ChaosOp] = []
    for op in ops:
        if state.enabled(op):
            state.apply(op)
            kept.append(op)
    kept.extend(state.closing_ops())
    # Re-sanitising a closed schedule must be a fixpoint: collapse the
    # trailing settle the closing suffix would otherwise keep stacking.
    while len(kept) >= 2 and kept[-1].kind == "settle" and kept[-2].kind == "settle":
        kept.pop()
    return tuple(kept)


@dataclass(frozen=True)
class ChaosPlan:
    """A complete chaos episode: processes + fault model + op schedule."""

    seed: int
    processes: Tuple[ProcessId, ...]
    faults: FaultModel
    ops: Tuple[ChaosOp, ...] = field(default_factory=tuple)
    # Leader count of the repro.scale two-tier overlay the runner
    # installs for this episode; 0 (the default, and the value absent
    # from old serialisations) means no overlay and no leader_crash ops.
    overlay_leaders: int = 0
    # Membership-server count of the crashable tier the runner deploys
    # for this episode; 0 (the default, and the value absent from old
    # serialisations) keeps the substrate's default membership and
    # disables every server_* op.
    servers: int = 0

    # -- generation -------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        processes: Optional[Sequence[ProcessId]] = None,
        length: Optional[int] = None,
        intensity: float = 1.0,
        overlay_leaders: int = 0,
        servers: int = 0,
    ) -> "ChaosPlan":
        """Derive a full plan from ``seed`` alone (plus optional shaping).

        ``intensity`` scales the fault rates; 0.0 gives a fault-free
        schedule (the ops still churn membership), 1.0 the default rates.
        ``overlay_leaders`` > 0 makes the episode run under the two-tier
        overlay and enables ``leader_crash`` ops against its acting
        leaders.  ``servers`` >= 2 makes the episode run on a crashable
        membership tier of that many servers and enables the
        ``server_crash``/``server_recover``/``server_partition`` ops.
        """
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        rng = random.Random(seed)
        if processes is None:
            count = rng.randint(3, 5)
            processes = tuple(chr(ord("a") + i) for i in range(count))
        else:
            processes = tuple(processes)
        if len(processes) < 2:
            raise ValueError("chaos needs at least 2 processes")
        faults = FaultModel(
            drop=min(1.0, rng.uniform(0.05, 0.20) * intensity),
            duplicate=min(1.0, rng.uniform(0.05, 0.15) * intensity),
            delay=min(1.0, rng.uniform(0.10, 0.30) * intensity),
            reorder=min(1.0, rng.uniform(0.05, 0.20) * intensity),
            seed=seed,
        )
        if length is None:
            length = rng.randint(8, 14)
        overlay_leaders = max(0, min(overlay_leaders, len(processes)))
        servers = max(0, servers)
        state = _ScheduleState(processes, overlay_leaders, servers)
        ops: List[ChaosOp] = []
        sent = 0
        for _ in range(length):
            op = cls._random_op(rng, state, sent)
            if op.kind == "send":
                sent += 1
            state.apply(op)
            ops.append(op)
        ops.extend(state.closing_ops())
        return cls(
            seed=seed,
            processes=processes,
            faults=faults,
            ops=tuple(ops),
            overlay_leaders=overlay_leaders,
            servers=servers,
        )

    @staticmethod
    def _random_op(rng: random.Random, state: _ScheduleState, sent: int) -> ChaosOp:
        # Weighted pick among the enabled op kinds; sends dominate so
        # every membership event competes with application traffic.
        choices: List[Tuple[str, float]] = [("send", 5.0), ("settle", 1.5)]
        if state.can_partition():
            choices.append(("partition", 1.5))
        if state.can_heal():
            choices.append(("heal", 2.5))
        if state.crash_candidates():
            choices.append(("crash", 1.0))
        if state.leader_crash_candidates():
            choices.append(("leader_crash", 1.5))
        if state.recover_candidates():
            choices.append(("recover", 2.0))
        if state.can_reconfigure():
            choices.append(("reconfigure", 1.0))
        if state.server_crash_candidates():
            choices.append(("server_crash", 1.0))
        if state.server_recover_candidates():
            choices.append(("server_recover", 2.0))
        if state.can_server_partition():
            choices.append(("server_partition", 1.0))
        kinds = [kind for kind, _w in choices]
        weights = [w for _kind, w in choices]
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind == "send":
            pid = rng.choice(state.senders())
            return ChaosOp("send", pid=pid, payload=f"{pid}-m{sent}")
        if kind == "partition":
            pids = list(state.full)
            rng.shuffle(pids)
            groups = 3 if len(pids) >= 4 and rng.random() < 0.3 else 2
            cuts = sorted(rng.sample(range(1, len(pids)), groups - 1))
            parts = [
                tuple(pids[i:j]) for i, j in zip([0] + cuts, cuts + [len(pids)])
            ]
            return ChaosOp("partition", groups=tuple(parts))
        if kind == "crash":
            return ChaosOp("crash", pid=rng.choice(state.crash_candidates()))
        if kind == "leader_crash":
            return ChaosOp(
                "leader_crash", pid=rng.choice(state.leader_crash_candidates())
            )
        if kind == "recover":
            return ChaosOp("recover", pid=rng.choice(state.recover_candidates()))
        if kind == "reconfigure":
            size = rng.randint(2, len(state.full))
            members = tuple(sorted(rng.sample(list(state.full), size)))
            return ChaosOp("reconfigure", members=members)
        if kind == "server_crash":
            return ChaosOp(
                "server_crash", server=rng.choice(state.server_crash_candidates())
            )
        if kind == "server_recover":
            return ChaosOp(
                "server_recover", server=rng.choice(state.server_recover_candidates())
            )
        if kind == "server_partition":
            indices = list(range(state.servers))
            rng.shuffle(indices)
            cut = rng.randint(1, len(indices) - 1)
            return ChaosOp(
                "server_partition",
                server_groups=(
                    tuple(sorted(indices[:cut])),
                    tuple(sorted(indices[cut:])),
                ),
            )
        return ChaosOp(kind)

    # -- derived plans ----------------------------------------------------

    def with_ops(self, ops: Iterable[ChaosOp]) -> "ChaosPlan":
        """This plan with a repaired replacement schedule (same seed)."""
        return replace(
            self,
            ops=sanitise_ops(
                self.processes,
                ops,
                leaders=self.overlay_leaders,
                servers=self.servers,
            ),
        )

    def with_faults(self, faults: FaultModel) -> "ChaosPlan":
        return replace(self, faults=faults)

    def with_processes(self, processes: Sequence[ProcessId]) -> "ChaosPlan":
        """Shrink to a sub-group: ops mentioning dropped pids are pruned."""
        keep = tuple(p for p in self.processes if p in set(processes))
        if len(keep) < 2:
            raise ValueError("cannot shrink below 2 processes")
        kept_set = set(keep)
        ops: List[ChaosOp] = []
        for op in self.ops:
            if op.kind in ("send", "crash", "leader_crash", "recover"):
                if op.pid not in kept_set:
                    continue
                ops.append(op)
            elif op.kind == "partition":
                groups = tuple(
                    tuple(p for p in g if p in kept_set) for g in op.groups
                )
                groups = tuple(g for g in groups if g)
                if len(groups) >= 2:
                    ops.append(replace(op, groups=groups))
            elif op.kind == "reconfigure":
                members = tuple(p for p in op.members if p in kept_set)
                if len(members) >= 2:
                    ops.append(replace(op, members=members))
            else:
                ops.append(op)
        leaders = min(self.overlay_leaders, len(keep))
        return ChaosPlan(
            seed=self.seed,
            processes=keep,
            faults=self.faults,
            ops=sanitise_ops(keep, ops, leaders=leaders, servers=self.servers),
            overlay_leaders=leaders,
            servers=self.servers,
        )

    # -- presentation and serialisation -----------------------------------

    def describe(self) -> str:
        overlay = (
            f" overlay_leaders={self.overlay_leaders}" if self.overlay_leaders else ""
        )
        tier = f" servers={self.servers}" if self.servers else ""
        lines = [
            f"seed={self.seed} processes={list(self.processes)} "
            f"faults=[{self.faults.describe()}]{overlay}{tier}"
        ]
        for index, op in enumerate(self.ops):
            lines.append(f"  {index:2d}. {op.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "seed": self.seed,
            "processes": list(self.processes),
            "faults": self.faults.to_dict(),
            "ops": [op.to_dict() for op in self.ops],
        }
        if self.overlay_leaders:
            data["overlay_leaders"] = self.overlay_leaders
        if self.servers:
            data["servers"] = self.servers
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosPlan":
        return cls(
            seed=data["seed"],
            processes=tuple(data["processes"]),
            faults=FaultModel.from_dict(data["faults"]),
            ops=tuple(ChaosOp.from_dict(op) for op in data["ops"]),
            overlay_leaders=data.get("overlay_leaders", 0),
            servers=data.get("servers", 0),
        )


__all__ = [
    "OP_KINDS",
    "ChaosOp",
    "ChaosPlan",
    "sanitise_ops",
]
