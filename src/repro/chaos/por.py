"""Partial-order reduction over chaos schedules.

Two schedule operations are *independent* when executing them in either
adjacent order yields the same episode - then the two orders are one
behaviour, not two, and exploring both is wasted work.  The shrinker and
the E16 sweep exploit this by **canonicalising** every candidate
schedule (sorting runs of adjacent independent ops into a fixed order)
and deduplicating on the canonical form: a candidate whose canonical
schedule was already run is skipped without costing an episode.

The independence relation used here is deliberately tiny and justified
*statically*: two ``send`` ops by **different** processes commute.  Each
``send`` only enqueues into its own endpoint's buffer (the per-process
automata share no state, and CO_RFIFO orders messages per sender only),
so swapping two adjacent sends by different processes permutes no
per-sender FIFO and enables/disables nothing.  Everything else -
partitions, crashes, views, settles, even two sends by the *same*
process - is treated as dependent.

That justification is not taken on faith: :func:`sends_membership_neutral`
asks the footprint engine (:mod:`repro.analysis`) for the static
write-set of the ``send`` action chain on the production endpoint and
checks it against the membership-coordination state.  If a future edit
makes ``send`` touch view or blocking state (so a send could initiate
coordination and sends would stop commuting), the gate fails closed and
POR silently degrades to "nothing commutes" - correctness over speed.

Dedup is an *accelerator*, never an oracle: skipped candidates are ones
whose canonical twin already ran, and adoption decisions are still made
by re-running and re-checking, so a finding produced with POR on is a
finding that replays with POR off.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Tuple

from repro.chaos.plan import ChaosOp, ChaosPlan

# State that belongs to membership coordination on the endpoint stack.
# The POR gate demands the send chain writes none of it (block_status is
# the client-side blocking flag; the rest drive the view protocol).
MEMBERSHIP_ATTRS = frozenset({
    "current_view",
    "mbrshp_view",
    "start_change",
    "reliable_set",
    "view_msg",
    "block_status",
})

# Cached gate verdict; None until first asked.  Tests may reset this to
# None (or force False) to exercise both sides of the gate.
_SEND_NEUTRAL: Optional[bool] = None


def sends_membership_neutral() -> bool:
    """True iff the static ``send`` write-set avoids membership state.

    Computed once per process from the footprint engine and cached.
    Fails closed: if the analyzer cannot produce a footprint (source
    unavailable, import failure), POR is disabled rather than trusted.
    """
    global _SEND_NEUTRAL
    if _SEND_NEUTRAL is None:
        _SEND_NEUTRAL = _compute_gate()
    return _SEND_NEUTRAL


def _compute_gate() -> bool:
    try:
        from repro.analysis.discovery import load_targets
        from repro.analysis.interference import action_footprint
        from repro.analysis.rules import make_class_index
        from repro.core.gcs_endpoint import GcsEndpoint

        targets = load_targets(("repro.core.gcs_endpoint",))
        index = make_class_index(targets)
        footprint = action_footprint(GcsEndpoint, "send", index)
    except Exception:
        return False
    written = {attr for attr, _key in footprint.writes}
    return not (written & MEMBERSHIP_ATTRS)


def ops_commute(first: ChaosOp, second: ChaosOp) -> bool:
    """The independence relation: sends by different processes commute."""
    return (
        first.kind == "send"
        and second.kind == "send"
        and first.pid != second.pid
        and sends_membership_neutral()
    )


def _op_key(op: ChaosOp) -> Tuple[str, str]:
    return (str(op.pid), str(op.payload))


def canonical_ops(ops: Iterable[ChaosOp]) -> Tuple[ChaosOp, ...]:
    """Sort adjacent independent ops into a fixed order (bubble to fixpoint).

    Only adjacent swaps of commuting pairs are performed, so the result
    is reachable from the input by independence-preserving exchanges -
    it denotes the same behaviour.  Dependent ops never move past each
    other, preserving every ordering that matters.
    """
    out: List[ChaosOp] = list(ops)
    changed = True
    while changed:
        changed = False
        for i in range(len(out) - 1):
            first, second = out[i], out[i + 1]
            if ops_commute(first, second) and _op_key(second) < _op_key(first):
                out[i], out[i + 1] = second, first
                changed = True
    return tuple(out)


def schedule_key(plan: ChaosPlan) -> str:
    """Canonical identity of a plan's behaviour class, for dedup.

    Canonicalises the op sequence and serialises what the episode
    actually depends on - ops, fault model, processes, overlay - to
    sorted compact JSON.  The generation seed is *excluded* (it only
    records provenance; the runner replays the schedule, not the seed),
    and a fault model with no active rates collapses to ``{}`` (its seed
    and timing parameters are never consulted when nothing fires).  Two
    plans with equal keys differ only by exchanges of independent ops
    and replay identically.
    """
    data = plan.to_dict()
    data.pop("seed", None)
    data["ops"] = [op.to_dict() for op in canonical_ops(plan.ops)]
    if not plan.faults.active_rates():
        data["faults"] = {}
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


__all__ = [
    "MEMBERSHIP_ATTRS",
    "canonical_ops",
    "ops_commute",
    "schedule_key",
    "sends_membership_neutral",
]
