"""Substrate-level fault models for chaos testing.

The paper's algorithm sits on top of CO_RFIFO (Figure 3): a reliable,
gap-free FIFO channel service.  Real deployments realise CO_RFIFO over a
lossy wire with sequence numbers, retransmission and receiver-side
deduplication - so from the algorithm's point of view a *lost* datagram
is extra latency (the retransmission delay), a *duplicated* datagram is
discarded by the receiving transport, and *reordering* shows up as
cross-link permutation of arrivals (per-link FIFO is part of the
contract).  :class:`FaultModel` and :class:`FaultInjector` encode exactly
that masked-fault semantics, so they can be wired into any substrate -
:class:`~repro.net.network.SimNetwork`,
:class:`~repro.runtime.transport.AsyncHub`,
:class:`~repro.runtime.tcp.TcpTransport` - without voiding the CO_RFIFO
assumptions the safety proofs rest on.  The injector's counters record
how much of each fault class was actually exercised, so a chaos episode
can prove its run was adversarial and not a calm-weather pass.

Everything is deterministic: one integer seed fixes the whole fault
schedule, which is what makes chaos episodes replayable and shrinkable.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.types import ProcessId


class DuplicateCopy:
    """Wire marker for the second copy of a duplicated transmission.

    The copy genuinely occupies the channel (it is scheduled, queued or
    framed like any message), but the receiving transport recognises and
    discards it - the behaviour of sequence-number deduplication, under
    which the second copy of a FIFO channel's message is always the one
    dropped.  Never hand a ``DuplicateCopy`` to an end-point: CO_RFIFO
    promises no duplication, and the delivery indices of
    :class:`~repro.core.wv_endpoint.WvEndpoint` rely on it.
    """

    __slots__ = ("message",)

    def __init__(self, message: Any) -> None:
        self.message = message

    def __reduce__(self):  # picklable for the TCP framing path
        return (DuplicateCopy, (self.message,))

    def __repr__(self) -> str:
        return f"DuplicateCopy({self.message!r})"


@dataclass(frozen=True)
class FaultModel:
    """Per-message fault probabilities plus their timing parameters.

    Rates are probabilities in [0, 1]; ``penalty`` (the modelled
    retransmission delay of a dropped message) and ``jitter`` (the bound
    of delay/reorder perturbations) are expressed in *substrate latency
    units* and multiplied by the injector's ``time_scale`` - 1.0 on the
    simulator's virtual clock, a few milliseconds of real time on the
    asyncio and TCP runtimes.
    """

    drop: float = 0.0  # P(datagram lost; arrives after a retransmission penalty)
    duplicate: float = 0.0  # P(wire carries a second copy; receiver dedups)
    delay: float = 0.0  # P(extra latency up to ``jitter``)
    reorder: float = 0.0  # P(cross-link reordering jitter)
    penalty: float = 4.0  # retransmission penalty, latency units
    jitter: float = 2.0  # max extra delay, latency units
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "reorder"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate {rate} outside [0, 1]")
        if self.penalty < 0 or self.jitter < 0:
            raise ValueError("penalty and jitter must be non-negative")

    def without(self, name: str) -> "FaultModel":
        """A copy with one fault class switched off (used by shrinking)."""
        return replace(self, **{name: 0.0})

    def active_rates(self) -> Dict[str, float]:
        return {
            name: getattr(self, name)
            for name in ("drop", "duplicate", "delay", "reorder")
            if getattr(self, name) > 0.0
        }

    def describe(self) -> str:
        rates = self.active_rates()
        if not rates:
            return "no faults"
        return " ".join(f"{name}={rate:g}" for name, rate in sorted(rates.items()))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "delay": self.delay,
            "reorder": self.reorder,
            "penalty": self.penalty,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultModel":
        return cls(**data)


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one (src, dst) transmission."""

    extra_delay: float = 0.0
    duplicate: bool = False
    dropped: bool = False


_NO_FAULT = FaultDecision()


class FaultInjector:
    """Draws a deterministic per-message fault schedule from one seed.

    One injector is shared by every sender of a deployment; decisions are
    drawn in transmission order, so on the deterministic simulator the
    same seed reproduces the same fault schedule event for event.
    """

    def __init__(self, model: FaultModel, *, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.model = model
        self.time_scale = time_scale
        self.rng = random.Random(model.seed)
        self.counters: Counter = Counter()

    def decide(self, src: ProcessId, dst: ProcessId) -> FaultDecision:
        """The fault fate of the next message from ``src`` to ``dst``."""
        del src, dst  # rates are link-independent (kept for future models)
        model = self.model
        self.counters["messages"] += 1
        extra = 0.0
        dropped = False
        duplicate = False
        if model.drop and self.rng.random() < model.drop:
            dropped = True
            extra += model.penalty * self.time_scale * (0.5 + self.rng.random())
            self.counters["dropped"] += 1
        if model.duplicate and self.rng.random() < model.duplicate:
            duplicate = True
            self.counters["duplicated"] += 1
        if model.delay and self.rng.random() < model.delay:
            extra += self.rng.random() * model.jitter * self.time_scale
            self.counters["delayed"] += 1
        if model.reorder and self.rng.random() < model.reorder:
            extra += self.rng.random() * model.jitter * self.time_scale
            self.counters["reordered"] += 1
        if not (extra or duplicate):
            return _NO_FAULT
        return FaultDecision(extra_delay=extra, duplicate=duplicate, dropped=dropped)

    def suppressed_duplicate(self) -> None:
        """A receiving transport discarded a :class:`DuplicateCopy`."""
        self.counters["suppressed"] += 1

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    def __repr__(self) -> str:
        return f"<FaultInjector {self.model.describe()} {self.snapshot()}>"


__all__ = [
    "DuplicateCopy",
    "FaultDecision",
    "FaultInjector",
    "FaultModel",
]
