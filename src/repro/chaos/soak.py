"""Soak mode: unbounded seeded chaos with periodic audits.

A chaos *episode* (:mod:`repro.chaos.runner`) is a dozen operations and
one final audit - enough to find ordering bugs, useless against the
failure modes that need *time*: unbounded buffer growth, watermark drift
after many server crash/recovery cycles, counter wraparound.  A **soak**
runs the same seeded op distribution as an open-ended stream for a
target span of (simulated) time, auditing as it goes:

* every ``audit_every`` operations the deployment is settled and the
  full verdict battery runs over the trace so far - a soak fails at the
  first audit that turns red, not hours later at the end;
* at each clean audit point (no partition or crash outstanding) the
  total number of buffered messages across all endpoints is measured
  and, on the simulator - where the E15 acknowledgement-GC machinery
  (``ack_gc_interval``) is wired in - asserted against a residency
  limit: simulated hours of traffic must run in bounded memory, or the
  "durable tier" story is an out-of-memory story.

On the simulator the time budget is *virtual* (hours of protocol time in
seconds of wall clock); on the asyncio/TCP runtimes it is wall time, so
CI keeps soaks there short.  Everything derives from the seed: quoting
``(backend, seed, servers, duration)`` is quoting the soak.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.faults import FaultInjector
from repro.chaos.plan import ChaosPlan, _ScheduleState
from repro.chaos.runner import TIME_SCALES, ChaosRunner
from repro.checking.verdict import Verdict, run_verdict
from repro.errors import SettleTimeoutError
from repro.types import ProcessId

#: Default acknowledgement-GC interval wired into simulator soaks (the
#: E15 machinery that makes the residency assertion meaningful).
SOAK_ACK_GC_INTERVAL = 16


@dataclass
class SoakReport:
    """The outcome of one soak: audit trail, peak memory, final verdict."""

    backend: str
    seed: int
    servers: int
    duration: float  # requested time span (simulated on "sim", wall otherwise)
    elapsed: float = 0.0  # achieved span
    ops: int = 0  # operations applied
    audits: int = 0  # verdict audits performed (final one included)
    events: int = 0  # trace length at the end
    max_resident: int = 0  # peak buffered messages at any clean audit
    resident_limit: Optional[int] = None  # enforced bound (None: observed only)
    counters: Dict[str, int] = field(default_factory=dict)  # injected faults
    violation: Optional[str] = None
    verdict: Optional[Verdict] = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def summary(self) -> str:
        status = "ok" if self.ok else f"VIOLATION: {self.violation}"
        return (
            f"[{self.backend}] soak seed={self.seed} servers={self.servers} "
            f"elapsed={self.elapsed:.1f}/{self.duration:.1f} ops={self.ops} "
            f"audits={self.audits} events={self.events} "
            f"resident<={self.max_resident}"
            + (f"/{self.resident_limit}" if self.resident_limit is not None else "")
            + f" -> {status}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """The CI artifact: everything needed to judge and replay the soak."""
        return {
            "backend": self.backend,
            "seed": self.seed,
            "servers": self.servers,
            "duration": self.duration,
            "elapsed": self.elapsed,
            "ops": self.ops,
            "audits": self.audits,
            "events": self.events,
            "max_resident": self.max_resident,
            "resident_limit": self.resident_limit,
            "counters": dict(self.counters),
            "ok": self.ok,
            "violation": self.violation,
            "verdict": self.verdict.to_dict() if self.verdict is not None else None,
        }


def default_resident_limit(processes: int, audit_every: int) -> int:
    """The enforced buffered-message bound for simulator soaks.

    Between two audits at most ``audit_every`` sends enter the system,
    each retained by up to ``processes`` receivers until acknowledgement
    GC reclaims it; the constant floor absorbs view-change bursts.  The
    point is not the exact constant but that the bound is *independent
    of soak length* - an hour and a week soak share the same limit.
    """
    return 64 + 4 * processes * (audit_every + SOAK_ACK_GC_INTERVAL)


class SoakRunner:
    """Run open-ended seeded chaos streams on one backend."""

    def __init__(self, backend: str = "sim") -> None:
        if backend not in TIME_SCALES:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {sorted(TIME_SCALES)}"
            )
        self.backend = backend

    def soak(
        self,
        seed: int,
        *,
        duration: float = 3600.0,
        servers: int = 3,
        processes: Optional[Tuple[ProcessId, ...]] = None,
        intensity: float = 1.0,
        audit_every: int = 50,
        resident_limit: Optional[int] = None,
        max_ops: Optional[int] = None,
    ) -> SoakReport:
        """Run one soak; never raises on a finding, reports it.

        ``duration`` is simulated seconds on the ``sim`` backend, wall
        seconds on the runtimes.  ``servers`` >= 2 deploys the crashable
        membership tier and folds server faults into the op stream.
        ``resident_limit`` None means: enforce the default bound on the
        simulator (where ack-GC is wired in), observe-only elsewhere.
        """
        if duration <= 0:
            raise ValueError("soak duration must be positive")
        if audit_every < 1:
            raise ValueError("audit_every must be >= 1")
        procs = tuple(processes) if processes else ("a", "b", "c", "d")
        if resident_limit is None and self.backend == "sim":
            resident_limit = default_resident_limit(len(procs), audit_every)
        # Derive the fault model exactly as an episode would, so a soak
        # seed and an episode seed describe the same adversary.
        faults = ChaosPlan.generate(
            seed, processes=procs, length=0, intensity=intensity, servers=servers
        ).faults
        report = SoakReport(
            backend=self.backend,
            seed=seed,
            servers=servers,
            duration=duration,
            resident_limit=resident_limit,
        )
        injector = FaultInjector(faults, time_scale=TIME_SCALES[self.backend])
        try:
            asyncio.run(
                self._soak(
                    report,
                    injector,
                    procs,
                    rng=random.Random(seed),
                    audit_every=audit_every,
                    max_ops=max_ops,
                )
            )
        except SettleTimeoutError as exc:
            report.violation = f"settle timeout: {exc}"
        report.counters = injector.snapshot()
        return report

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _make_deployment(self, injector: FaultInjector, servers: int) -> Any:
        from repro.deploy import make_deployment  # local import: no cycle

        kwargs: Dict[str, Any] = {"faults": injector}
        if servers:
            kwargs["servers"] = servers
            if self.backend == "sim":
                kwargs["membership"] = "tier"
        if self.backend == "sim":
            # The E15 ack-GC machinery: without it a simulated hour of
            # traffic would be measured against unbounded retention.
            kwargs["ack_gc_interval"] = SOAK_ACK_GC_INTERVAL
        return make_deployment(self.backend, **kwargs)

    def _clock(self, deployment: Any):
        if self.backend == "sim":
            return lambda: deployment.world.clock.now
        return time.monotonic

    @staticmethod
    def _resident(deployment: Any) -> int:
        host = getattr(deployment, "world", None) or deployment.cluster
        return sum(
            node.endpoint.buffered_messages() for node in host.nodes.values()
        )

    async def _soak(
        self,
        report: SoakReport,
        injector: FaultInjector,
        procs: Tuple[ProcessId, ...],
        *,
        rng: random.Random,
        audit_every: int,
        max_ops: Optional[int],
    ) -> None:
        deployment = self._make_deployment(injector, report.servers)
        try:
            await deployment.setup(list(procs))
            clock = self._clock(deployment)
            started = clock()
            state = _ScheduleState(procs, 0, report.servers)
            sent = 0
            since_audit = 0
            while True:
                report.elapsed = clock() - started
                if report.elapsed >= report.duration:
                    break
                if max_ops is not None and report.ops >= max_ops:
                    break
                op = ChaosPlan._random_op(rng, state, sent)
                if op.kind == "send":
                    sent += 1
                state.apply(op)
                await ChaosRunner._apply(deployment, op)
                report.ops += 1
                since_audit += 1
                if since_audit >= audit_every:
                    since_audit = 0
                    if not await self._audit(report, deployment, state, procs):
                        return
            # Close out: return to a stable full view, then the final audit.
            for op in state.closing_ops():
                state.apply(op)
                await ChaosRunner._apply(deployment, op)
                report.ops += 1
            report.elapsed = clock() - started
            await self._audit(report, deployment, state, procs)
        finally:
            await deployment.close()

    async def _audit(
        self,
        report: SoakReport,
        deployment: Any,
        state: _ScheduleState,
        procs: Tuple[ProcessId, ...],
    ) -> bool:
        """Settle, check the battery, measure residency.  False = stop."""
        await deployment.settle()
        report.audits += 1
        trace = deployment.trace
        report.events = len(trace)
        verdict = run_verdict(trace, list(procs))
        report.verdict = verdict
        if not verdict.ok:
            primary = verdict.primary
            report.violation = (
                f"{primary.code} @ event {primary.witness_index}: {primary.message}"
            )
            return False
        clean = (
            not state.partitioned
            and not state.server_partitioned
            and not state.crashed
            and not state.crashed_servers
        )
        if clean:
            resident = self._resident(deployment)
            report.max_resident = max(report.max_resident, resident)
            if report.resident_limit is not None and resident > report.resident_limit:
                report.violation = (
                    f"memory residency: {resident} buffered messages at "
                    f"op {report.ops} exceed the limit {report.resident_limit}"
                )
                return False
        return True


def soak_matrix(
    seeds: List[int],
    *,
    backends: Tuple[str, ...] = ("sim",),
    **soak_kwargs: Any,
) -> List[SoakReport]:
    """One soak per (backend, seed); collect every report."""
    reports: List[SoakReport] = []
    for backend in backends:
        runner = SoakRunner(backend)
        for seed in seeds:
            reports.append(runner.soak(seed, **soak_kwargs))
    return reports


__all__ = [
    "SOAK_ACK_GC_INTERVAL",
    "SoakReport",
    "SoakRunner",
    "default_resident_limit",
    "soak_matrix",
]
