"""Shrink a failing chaos plan to a minimal replayable schedule.

When an episode violates a property, the raw plan is rarely the story:
most of its operations and fault classes are bystanders.  The shrinker
minimises along the three axes a :class:`~repro.chaos.plan.ChaosPlan`
has - **ops** (delta-debugging-style chunk removal, halving granularity),
**fault rates** (switching whole fault classes off), and **processes**
(dropping group members) - re-running the episode after each candidate
edit and keeping it only if *the same finding* persists: a candidate is
adopted only when it reproduces the original violation **code** at the
same or an earlier **witness index** (for stalls, which have no trace
witness, the code alone must match).  Shrinking therefore never trades
the reported bug for a different, perhaps shallower one, and the final
schedule still exhibits the original defect no later than the original
run did.

Candidate schedules go through
:func:`~repro.chaos.plan.sanitise_ops`, so every attempt is an
executable, properly closed schedule; the result keeps the original
seed and ships as a ``(seed, code, witness_index, minimal_schedule)``
finding (:meth:`ShrinkResult.finding`) whose JSON replays byte-for-byte
from what a CI log prints.

Every re-run costs a full episode, so the search is bounded by
``max_runs`` - shrinking is best-effort minimisation, not a proof of
minimality.  Partial-order reduction (:mod:`repro.chaos.por`) stretches
that budget: every candidate is canonicalised (adjacent independent ops
sorted into a fixed order) and deduplicated on its canonical form, so a
candidate equivalent to one already run is skipped without spending an
episode.  Skipping is sound by construction - only candidates whose
behaviour class was already explored are dropped, and adoption still
requires an actual re-run - so POR changes how *fast* the minimum is
found, never *which* finding ships.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Set

from repro.chaos.plan import ChaosPlan
from repro.chaos.por import schedule_key
from repro.chaos.runner import ChaosRunner, Episode


@dataclass
class ShrinkResult:
    """A minimised failing plan plus the evidence trail."""

    plan: ChaosPlan  # the smallest schedule still failing
    violation: str  # the violation it produces
    original: ChaosPlan  # what we started from
    runs: int  # episodes executed, confirmation included
    code: str = ""  # stable violation code (preserved while shrinking)
    witness_index: Optional[int] = None  # earliest violating event index
    candidates: int = 0  # candidate schedules considered (run or skipped)
    deduped: int = 0  # candidates skipped as POR-equivalent to a prior run

    def finding(self) -> Dict[str, Any]:
        """The replayable finding: seed, code, witness, minimal schedule."""
        return {
            "seed": self.plan.seed,
            "code": self.code,
            "witness_index": self.witness_index,
            "minimal_schedule": self.plan.to_dict(),
        }

    def finding_json(self) -> str:
        """Canonical JSON of :meth:`finding` (byte-stable, replayable)."""
        return json.dumps(self.finding(), sort_keys=True, separators=(",", ":"))

    def summary(self) -> str:
        return (
            f"shrunk seed={self.plan.seed}: "
            f"{len(self.original.ops)} -> {len(self.plan.ops)} ops, "
            f"{len(self.original.processes)} -> {len(self.plan.processes)} processes, "
            f"faults [{self.original.faults.describe()}] -> "
            f"[{self.plan.faults.describe()}] in {self.runs} runs "
            f"({self.candidates} candidates, {self.deduped} POR-deduped); "
            f"code={self.code} witness={self.witness_index}; "
            f"violation: {self.violation}"
        )


def shrink_plan(
    runner: ChaosRunner, plan: ChaosPlan, *, max_runs: int = 80, por: bool = True
) -> Optional[ShrinkResult]:
    """Minimise ``plan`` under ``runner``; ``None`` if it doesn't fail.

    ``por=True`` (the default) deduplicates candidates up to exchanges
    of independent ops; skipped candidates don't consume ``max_runs``.
    ``por=False`` runs every candidate - the differential baseline the
    test battery compares against.
    """
    state = _Shrinker(runner, max_runs, por=por)
    first = state.attempt(plan)
    if first is None or first.ok:
        return None
    state.adopt(plan, first)
    state.remember(plan)
    # The axes interact - removing a fault class orphans ops, dropping a
    # process re-sanitises the schedule - so iterate the passes until a
    # full round adopts nothing.  Re-sweeps regenerate candidates already
    # tried against the same best plan; with POR on those are deduped
    # instead of re-run, which is what pays for the extra thoroughness.
    while state.runs < max_runs:
        state.progressed = False
        state.shrink_ops()
        state.shrink_faults()
        state.shrink_processes()
        state.shrink_servers()
        if not state.progressed:
            break
    return ShrinkResult(
        plan=state.best,
        violation=state.violation,
        original=plan,
        runs=state.runs,
        code=state.code,
        witness_index=state.witness,
        candidates=state.candidates,
        deduped=state.deduped,
    )


class _Shrinker:
    def __init__(self, runner: ChaosRunner, max_runs: int, *, por: bool = True) -> None:
        self.runner = runner
        self.max_runs = max_runs
        self.por = por
        self.runs = 0
        self.candidates = 0
        self.deduped = 0
        self.progressed = False
        self.seen: Set[str] = set()
        self.best: ChaosPlan = None  # type: ignore[assignment]
        self.violation: str = ""
        self.code: str = ""
        self.witness: Optional[int] = None

    def attempt(self, candidate: ChaosPlan) -> Optional[Episode]:
        if self.runs >= self.max_runs:
            return None
        self.runs += 1
        return self.runner.run(candidate)

    def adopt(self, plan: ChaosPlan, episode: Episode) -> None:
        self.best = plan
        self.violation = episode.violation or ""
        self.code = episode.code or ""
        self.witness = episode.witness_index
        self.progressed = True

    def remember(self, plan: ChaosPlan) -> None:
        """Record a plan's canonical schedule so its twins are skipped."""
        if self.por:
            self.seen.add(schedule_key(plan))

    def try_candidate(self, candidate: ChaosPlan) -> bool:
        """Run ``candidate``; adopt it only if the *same finding* persists.

        Same finding == same violation code, witnessed no later than the
        best run so far.  A candidate that fails differently (another
        code, or the same code only deeper into the trace) is rejected -
        shrinking minimises the original bug, it does not go bug-hunting.

        With POR on, a candidate whose canonical schedule already ran is
        skipped for free - it cannot be adopted (same behaviour class,
        already rejected or already the best) and costs no episode.
        """
        self.candidates += 1
        if self.por:
            key = schedule_key(candidate)
            if key in self.seen:
                self.deduped += 1
                return False
            self.seen.add(key)
        episode = self.attempt(candidate)
        if episode is None or episode.ok:
            return False
        if episode.code != self.code:
            return False
        if self.witness is not None and (
            episode.witness_index is None or episode.witness_index > self.witness
        ):
            return False
        self.adopt(candidate, episode)
        return True

    # -- axes ------------------------------------------------------------

    def shrink_ops(self) -> None:
        """Remove op chunks, halving the chunk size as removals dry up."""
        chunk = max(len(self.best.ops) // 2, 1)
        while chunk >= 1 and self.runs < self.max_runs:
            removed_any = False
            index = 0
            while index < len(self.best.ops) and self.runs < self.max_runs:
                remaining = self.best.ops[:index] + self.best.ops[index + chunk :]
                candidate = self.best.with_ops(remaining)
                # sanitise_ops may re-append closing ops; require genuine
                # progress or the loop would spin on its own repairs.
                if len(candidate.ops) < len(self.best.ops) and self.try_candidate(
                    candidate
                ):
                    removed_any = True  # ops shifted; retry same index
                else:
                    index += chunk
            if not removed_any:
                chunk //= 2

    def shrink_faults(self) -> None:
        """Switch whole fault classes off while the failure persists."""
        for name in sorted(self.best.faults.active_rates()):
            if self.runs >= self.max_runs:
                return
            self.try_candidate(self.best.with_faults(self.best.faults.without(name)))

    def shrink_processes(self) -> None:
        """Drop group members one at a time down to the 2-process floor."""
        progress = True
        while progress and len(self.best.processes) > 2 and self.runs < self.max_runs:
            progress = False
            for pid in list(self.best.processes):
                if len(self.best.processes) <= 2 or self.runs >= self.max_runs:
                    break
                keep = [p for p in self.best.processes if p != pid]
                if self.try_candidate(self.best.with_processes(keep)):
                    progress = True
                    break

    def shrink_servers(self) -> None:
        """Drop the crashable membership tier once nothing exercises it.

        Only attempted when no server op survives in the best schedule:
        with server ops present the tier is load-bearing, and removing
        the ops first is the job of :meth:`shrink_ops`.  Changing the
        membership implementation is a real behavioural edit, so the
        candidate must still reproduce the finding to be adopted.
        """
        if not self.best.servers or self.runs >= self.max_runs:
            return
        if any(op.kind.startswith("server_") for op in self.best.ops):
            return
        self.try_candidate(replace(self.best, servers=0))


__all__ = [
    "ShrinkResult",
    "shrink_plan",
]
