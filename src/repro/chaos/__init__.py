"""Seeded chaos engine over the deployment layer.

The ROADMAP's "handle as many scenarios as you can imagine" made
executable: instead of hand-writing adversarial scenarios one by one,
:class:`ChaosPlan` *generates* them - a schedule of multicasts,
partitions, heals, crashes, recoveries and reconfigurations, interleaved
with substrate-level message faults (drop/duplicate/delay/reorder),
derived deterministically from one integer seed.  :class:`ChaosRunner`
executes a plan on any backend (sim / async / tcp), audits the recorded
trace with the full safety battery plus MBRSHP conformance, and
:func:`shrink_plan` minimises any failing schedule to one that replays
byte-for-byte from its seed.

Quickstart::

    from repro.chaos import ChaosPlan, ChaosRunner, shrink_plan

    episode = ChaosRunner("sim").run_seed(7)
    assert episode.ok, episode.violation

Dependency note: the substrates import :mod:`repro.chaos.faults` for the
fault hooks, so nothing in this package may import :mod:`repro.deploy`,
:mod:`repro.net` or :mod:`repro.runtime` at module level (the runner
imports the deployment registry lazily inside the episode).
"""

from repro.chaos.faults import (
    DuplicateCopy,
    FaultDecision,
    FaultInjector,
    FaultModel,
)
from repro.chaos.plan import OP_KINDS, ChaosOp, ChaosPlan, sanitise_ops
from repro.chaos.runner import (
    STALL_CODE,
    TIME_SCALES,
    ChaosRunner,
    Episode,
    forge_nonmonotonic_view,
)
from repro.chaos.por import (
    canonical_ops,
    ops_commute,
    schedule_key,
    sends_membership_neutral,
)
from repro.chaos.shrink import ShrinkResult, shrink_plan
from repro.chaos.soak import (
    SOAK_ACK_GC_INTERVAL,
    SoakReport,
    SoakRunner,
    default_resident_limit,
    soak_matrix,
)

__all__ = [
    "OP_KINDS",
    "STALL_CODE",
    "TIME_SCALES",
    "ChaosOp",
    "ChaosPlan",
    "ChaosRunner",
    "DuplicateCopy",
    "Episode",
    "FaultDecision",
    "FaultInjector",
    "FaultModel",
    "SOAK_ACK_GC_INTERVAL",
    "ShrinkResult",
    "SoakReport",
    "SoakRunner",
    "canonical_ops",
    "default_resident_limit",
    "forge_nonmonotonic_view",
    "ops_commute",
    "sanitise_ops",
    "schedule_key",
    "sends_membership_neutral",
    "shrink_plan",
    "soak_matrix",
]
