"""Action footprints, the static interference relation, and rule R5.

Built on the read/write-set engine of :mod:`repro.analysis.writes`: an
action's **footprint** is the union of the (key-sensitive) reads and
writes of its ``_pre_``/``_candidates_``/``_eff_`` methods, folded over
the full effect chain (every MRO definition plus the helpers each
reaches).  Two actions **commute** iff their footprints are disjoint up
to at least one write - no attribute is written by one and read or
written by the other under possibly-aliasing subscript keys.  The
framework's monotone version counter (``_state_version``) is excluded:
every action bumps it, so including it would make nothing commute.

``R5.conflict`` flags pairs of *concurrently enabled* candidate actions
of one automaton whose footprints conflict without a documented ordering
barrier.  A barrier is the class's ``ORDERING`` tuple (consumed by the
runner's drain priority, see ``repro.core.runner``); pairs whose two
actions both appear there are scheduled deterministically and exempt.
Genuinely nondeterministic spec races (e.g. the deliver/lose choice of
the Figure 3 channel) are waived with ``# repro: allow[R5]``.

:func:`interference_table` exports the relation as a canonical,
byte-stable JSON document (``python -m repro lint --interference
--output ...``) consumed by ``repro.chaos`` for partial-order reduction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.ioa.action import ActionKind

from repro.analysis.discovery import ClassTarget
from repro.analysis.findings import Finding
from repro.analysis.writes import VERSION_ATTR, ClassIndex, keys_may_alias

#: One footprint entry: (root attribute, subscript-key classification).
Entry = Tuple[str, Optional[str]]

_PHASES = ("_pre_", "_candidates_", "_eff_")


@dataclass(frozen=True)
class Footprint:
    """The statically visible read/write footprint of one action."""

    reads: FrozenSet[Entry]
    writes: FrozenSet[Entry]

    def conflicts_with(self, other: "Footprint") -> List[str]:
        """Sorted attrs witnessing a write/read-or-write overlap."""
        witnesses = set()
        for mine, theirs in ((self.writes, other.reads | other.writes),
                             (other.writes, self.reads | self.writes)):
            for attr, key in mine:
                if attr == VERSION_ATTR:
                    continue
                for other_attr, other_key in theirs:
                    if attr == other_attr and keys_may_alias(key, other_key):
                        witnesses.add(attr)
        return sorted(witnesses)

    def commutes_with(self, other: "Footprint") -> bool:
        return not self.conflicts_with(other)


def action_footprint(cls: type, action: str, index: ClassIndex) -> Footprint:
    """Footprint of ``action`` on ``cls``: pre + candidates + eff chains."""
    suffix = action.replace(".", "_")
    reads = set()
    writes = set()
    for phase in _PHASES:
        chain_writes, chain_reads = index.chain_footprint(cls, phase + suffix)
        writes.update((w.attr, w.key) for w in chain_writes)
        reads.update((r.attr, r.key) for r in chain_reads)
    return Footprint(reads=frozenset(reads), writes=frozenset(writes))


def _render_entry(entry: Entry) -> str:
    attr, key = entry
    return attr if key is None else f"{attr}[{key}]"


def _render_entries(entries: FrozenSet[Entry]) -> List[str]:
    return sorted(_render_entry(e) for e in entries)


def _candidate_actions(cls: type, vocabulary: Dict[str, ActionKind]) -> List[str]:
    """The locally controlled actions the scheduler can concurrently enable."""
    return sorted(
        action
        for action, kind in vocabulary.items()
        if kind in (ActionKind.OUTPUT, ActionKind.INTERNAL)
        and getattr(cls, "_candidates_" + action.replace(".", "_"), None) is not None
    )


def check_r5(ctx) -> List[Finding]:
    """R5.conflict on one :class:`~repro.analysis.rules.ClassContext`."""
    cls = ctx.cls
    actions = _candidate_actions(cls, ctx.vocabulary)
    if len(actions) < 2:
        return []
    ordering = set(getattr(cls, "ORDERING", ()) or ())
    footprints = {a: action_footprint(cls, a, ctx.index) for a in actions}
    findings: List[Finding] = []
    for i, first in enumerate(actions):
        for second in actions[i + 1:]:
            if first in ordering and second in ordering:
                continue  # drain priority serialises this pair
            witnesses = footprints[first].conflicts_with(footprints[second])
            if not witnesses:
                continue
            attrs = ", ".join(repr(w) for w in witnesses)
            findings.append(ctx.finding(
                "R5.conflict",
                ctx.entry_line("SIGNATURE", first),
                f"concurrently enabled actions {first!r} and {second!r} "
                f"have interfering footprints on {attrs} with no ordering "
                "barrier; add both to the class ORDERING tuple (drain "
                "priority) or waive genuine spec nondeterminism with "
                "'# repro: allow[R5]'",
                extra_anchors=(ctx.entry_line("SIGNATURE", second),),
            ))
    return findings


# ---------------------------------------------------------------------------
# the exported commutativity table
# ---------------------------------------------------------------------------


def interference_table(
    targets: Sequence[ClassTarget], index: ClassIndex
) -> Dict[str, object]:
    """The canonical interference relation over every analyzed automaton.

    Layout (all keys sorted, rendering byte-stable)::

        {"version": 1,
         "automata": {
           "<module>.<qualname>": {
             "actions": {"<name>": {"kind", "reads", "writes"}},
             "commutes": [["a", "b"], ...],   # commuting candidate pairs
             "conflicts": [{"pair": ["a","b"], "attrs": [...]}, ...],
             "ordering": [...]}}}
    """
    automata: Dict[str, object] = {}
    for target in sorted(
        targets, key=lambda t: (t.module.name, t.cls.__qualname__)
    ):
        cls = target.cls
        vocabulary: Dict[str, ActionKind] = {}
        for klass in reversed(cls.__mro__):
            for attr in ("SIGNATURE", "OPTIONAL_SIGNATURE"):
                value = klass.__dict__.get(attr)
                if isinstance(value, dict):
                    vocabulary.update(value)
        names = sorted(k for k, v in vocabulary.items() if isinstance(v, ActionKind))
        if not names:
            continue
        footprints = {name: action_footprint(cls, name, index) for name in names}
        candidates = _candidate_actions(cls, vocabulary)
        commutes: List[List[str]] = []
        conflicts: List[Dict[str, object]] = []
        for i, first in enumerate(candidates):
            for second in candidates[i + 1:]:
                witnesses = footprints[first].conflicts_with(footprints[second])
                if witnesses:
                    conflicts.append({"pair": [first, second], "attrs": witnesses})
                else:
                    commutes.append([first, second])
        automata[f"{target.module.name}.{cls.__qualname__}"] = {
            "actions": {
                name: {
                    "kind": vocabulary[name].name.lower(),
                    "reads": _render_entries(footprints[name].reads),
                    "writes": _render_entries(footprints[name].writes),
                }
                for name in names
            },
            "commutes": commutes,
            "conflicts": conflicts,
            "ordering": list(getattr(cls, "ORDERING", ()) or ()),
        }
    return {"version": 1, "automata": automata}


def table_json(table: Dict[str, object]) -> str:
    """Byte-stable serialisation of :func:`interference_table`."""
    return json.dumps(table, sort_keys=True, separators=(",", ":")) + "\n"


__all__ = [
    "Footprint",
    "action_footprint",
    "check_r5",
    "interference_table",
    "table_json",
]
