"""--strict-parity: cross-check static ownership against the runtime.

The verifier and the runtime strict mode are two enforcers of the same
clause of [26]: child effects never touch parent-owned state.  They can
only drift apart if the static write-set analysis mis-reads a ``_state``
body (or a ``_state`` body does something genuinely dynamic).  This
check composes one real :class:`SimWorld` with ``strict=True``, reads
the ownership table the runtime recorded (``endpoint._owners``), and
diffs it against the owners the analyzer predicted for the same class.
Any disagreement is an ``R2.parity`` finding against the class.
"""

from __future__ import annotations

import inspect
from typing import Dict, List, Optional, Type

from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.writes import ClassIndex


def predicted_owners(cls: type, index: ClassIndex) -> Dict[str, type]:
    """attr -> owning class, as the analyzer models _init_state_chain."""
    owners: Dict[str, type] = {}
    for klass in reversed(cls.__mro__):
        for attr in index.state_writes(klass):
            owners.setdefault(attr, klass)
    return owners


def _class_location(cls: type) -> Location:
    try:
        path = inspect.getsourcefile(cls) or ""
        _lines, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        path, line = "", 0
    return Location(file=path, line=line, module=cls.__module__, obj=cls.__qualname__)


def diff_ownership(
    cls: type, runtime_owners: Dict[str, type], index: ClassIndex
) -> List[Finding]:
    """R2.parity findings for every static/runtime ownership mismatch."""
    static = predicted_owners(cls, index)
    location = _class_location(cls)
    findings: List[Finding] = []

    def emit(explanation: str) -> None:
        findings.append(Finding(
            rule="R2",
            check="parity",
            severity=Severity.ERROR,
            location=location,
            explanation=explanation,
            anchors=(location.line,),
        ))

    for attr in sorted(set(static) - set(runtime_owners)):
        emit(
            f"static analysis predicts state variable {attr!r} (created in "
            f"{static[attr].__name__}._state) but the runtime ownership "
            "table has no such variable; a _state body is conditional or "
            "the write-set analysis over-approximates"
        )
    for attr in sorted(set(runtime_owners) - set(static)):
        emit(
            f"the runtime ownership table records state variable {attr!r} "
            f"(owned by {runtime_owners[attr].__name__}) that static "
            "analysis cannot see; a _state body creates attributes "
            "dynamically (setattr, helpers the analyzer cannot parse)"
        )
    for attr in sorted(set(static) & set(runtime_owners)):
        if static[attr] is not runtime_owners[attr]:
            emit(
                f"ownership of state variable {attr!r} disagrees: static "
                f"analysis assigns it to {static[attr].__name__}, the "
                f"runtime to {runtime_owners[attr].__name__}"
            )
    return findings


def run_strict_parity(
    index: ClassIndex, endpoint_cls: Optional[type] = None
) -> List[Finding]:
    """Compose one strict SimWorld and diff ownership for its endpoints.

    Uses ``gc_views=False`` so the endpoint keeps the exact ownership
    table built at construction, and a constant-latency network because
    no events are ever delivered - construction alone populates
    ``_owners`` via ``_init_state_chain``.
    """
    from repro.net.latency import ConstantLatency
    from repro.net.world import SimWorld

    kwargs = {}
    if endpoint_cls is not None:
        kwargs["endpoint_cls"] = endpoint_cls
    world = SimWorld(
        latency=ConstantLatency(1.0),
        membership="oracle",
        strict=True,
        gc_views=False,
        **kwargs,
    )
    node = world.add_node("parity-probe")
    endpoint = node.endpoint
    runtime_owners: Dict[str, Type] = dict(endpoint._owners)
    return diff_ownership(type(endpoint), runtime_owners, index)
