"""--strict-parity: cross-check static analysis against the runtime.

Two probes, same philosophy - the analyzer and the live automaton are
parallel enforcers and must not drift apart:

* **ownership parity** (``R2.parity``): composes one real
  :class:`SimWorld` with ``strict=True``, reads the ownership table the
  runtime recorded (``endpoint._owners``), and diffs it against the
  owners the analyzer predicted for the same class.

* **read parity** (``R5.read-parity``): instruments an automaton with a
  recording ``__getattribute__``, evaluates each enabled action's
  precondition through ``is_enabled``, and diffs the state attributes
  the guard *actually* touched against the static read-set the footprint
  engine extracted for its ``_pre_`` chain.  A runtime read the analyzer
  cannot see (``getattr`` indirection, exec-style dynamism) means the
  interference relation under-approximates and R5's verdicts cannot be
  trusted for that automaton.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Set, Tuple, Type

from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.writes import ClassIndex


def predicted_owners(cls: type, index: ClassIndex) -> Dict[str, type]:
    """attr -> owning class, as the analyzer models _init_state_chain."""
    owners: Dict[str, type] = {}
    for klass in reversed(cls.__mro__):
        for attr in index.state_writes(klass):
            owners.setdefault(attr, klass)
    return owners


def _class_location(cls: type) -> Location:
    try:
        path = inspect.getsourcefile(cls) or ""
        _lines, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        path, line = "", 0
    return Location(file=path, line=line, module=cls.__module__, obj=cls.__qualname__)


def diff_ownership(
    cls: type, runtime_owners: Dict[str, type], index: ClassIndex
) -> List[Finding]:
    """R2.parity findings for every static/runtime ownership mismatch."""
    static = predicted_owners(cls, index)
    location = _class_location(cls)
    findings: List[Finding] = []

    def emit(explanation: str) -> None:
        findings.append(Finding(
            rule="R2",
            check="parity",
            severity=Severity.ERROR,
            location=location,
            explanation=explanation,
            anchors=(location.line,),
        ))

    for attr in sorted(set(static) - set(runtime_owners)):
        emit(
            f"static analysis predicts state variable {attr!r} (created in "
            f"{static[attr].__name__}._state) but the runtime ownership "
            "table has no such variable; a _state body is conditional or "
            "the write-set analysis over-approximates"
        )
    for attr in sorted(set(runtime_owners) - set(static)):
        emit(
            f"the runtime ownership table records state variable {attr!r} "
            f"(owned by {runtime_owners[attr].__name__}) that static "
            "analysis cannot see; a _state body creates attributes "
            "dynamically (setattr, helpers the analyzer cannot parse)"
        )
    for attr in sorted(set(static) & set(runtime_owners)):
        if static[attr] is not runtime_owners[attr]:
            emit(
                f"ownership of state variable {attr!r} disagrees: static "
                f"analysis assigns it to {static[attr].__name__}, the "
                f"runtime to {runtime_owners[attr].__name__}"
            )
    return findings


def _make_read_probe(cls: type) -> type:
    """A subclass whose instances log attribute reads while armed."""

    class _ReadProbe(cls):  # type: ignore[misc, valid-type]
        def __getattribute__(self, name: str):
            log = object.__getattribute__(self, "__dict__").get("_probe_read_log")
            if log is not None and not name.startswith("__"):
                log.add(name)
            return super().__getattribute__(name)

    _ReadProbe.__name__ = f"{cls.__name__}ReadProbe"
    _ReadProbe.__qualname__ = _ReadProbe.__name__
    return _ReadProbe


def diff_read_fingerprints(
    cls: type,
    index: ClassIndex,
    factory: Optional[Callable[[type], object]] = None,
    steps: int = 8,
) -> List[Finding]:
    """R5.read-parity findings for preconditions with invisible reads.

    Instantiates a recording probe of ``cls`` (by default as
    ``cls("read-probe")``) and walks up to ``steps`` locally controlled
    transitions, re-evaluating every enabled action's guard under
    instrumentation before each step.  Only reads of *state attributes*
    (those ``_state`` bodies create) count; the comparison is one-sided -
    runtime reads missing from the static set are drift, static
    over-approximation is harmless for soundness of the interference
    relation.
    """
    probe_cls = _make_read_probe(cls)
    instance = factory(probe_cls) if factory is not None else probe_cls("read-probe")
    state_attrs = set(predicted_owners(cls, index))
    location = _class_location(cls)
    findings: List[Finding] = []
    reported: Set[Tuple[str, Tuple[str, ...]]] = set()

    def check_guard(action) -> None:
        suffix = action.name.replace(".", "_")
        _writes, static_reads = index.chain_footprint(cls, f"_pre_{suffix}")
        static_attrs = {read.attr for read in static_reads}
        log: Set[str] = set()
        instance.__dict__["_probe_read_log"] = log
        try:
            instance.is_enabled(action)
        finally:
            del instance.__dict__["_probe_read_log"]
        hidden = tuple(sorted((log & state_attrs) - static_attrs))
        if not hidden or (action.name, hidden) in reported:
            return
        reported.add((action.name, hidden))
        attrs = ", ".join(repr(a) for a in hidden)
        findings.append(Finding(
            rule="R5",
            check="read-parity",
            severity=Severity.ERROR,
            location=location,
            explanation=(
                f"evaluating the guard of {action.name!r} read state "
                f"variable(s) {attrs} that the static read-set of its "
                f"_pre_{suffix} chain does not contain; the footprint "
                "engine under-approximates this automaton (getattr "
                "indirection or dynamism it cannot parse), so R5's "
                "interference verdicts cannot be trusted here"
            ),
            anchors=(location.line,),
        ))

    # Drive a short run so guards are evaluated in non-initial states
    # too: fingerprint every enabled action, take one step, repeat.
    for _step in range(steps):
        actions = instance.enabled_actions()
        for action in actions:
            check_guard(action)
        if not actions:
            break
        instance.apply(actions[0])
    return findings


def run_strict_parity(
    index: ClassIndex, endpoint_cls: Optional[type] = None
) -> List[Finding]:
    """Compose one strict SimWorld and diff ownership for its endpoints.

    Uses ``gc_views=False`` so the endpoint keeps the exact ownership
    table built at construction, and a constant-latency network because
    no events are ever delivered - construction alone populates
    ``_owners`` via ``_init_state_chain``.
    """
    from repro.net.latency import ConstantLatency
    from repro.net.world import SimWorld

    kwargs = {}
    if endpoint_cls is not None:
        kwargs["endpoint_cls"] = endpoint_cls
    world = SimWorld(
        latency=ConstantLatency(1.0),
        membership="oracle",
        strict=True,
        gc_views=False,
        **kwargs,
    )
    node = world.add_node("parity-probe")
    endpoint = node.endpoint
    runtime_owners: Dict[str, Type] = dict(endpoint._owners)
    findings = diff_ownership(type(endpoint), runtime_owners, index)
    findings.extend(
        diff_read_fingerprints(type(endpoint), index, factory=_seeded_endpoint)
    )
    return findings


def _seeded_endpoint(probe_cls: type):
    """A probe endpoint with one application send applied.

    A freshly constructed endpoint is quiescent (nothing enabled, so
    nothing to fingerprint); one buffered message walks it through the
    send -> co_rfifo.send -> deliver loop, evaluating the real guards.
    """
    from repro.ioa import Action

    probe = probe_cls("read-probe")
    probe.apply(Action("send", (probe.pid, "probe-m1")))
    return probe
