"""Rule implementations R1-R4 of the automaton verifier."""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple, Type

from repro.ioa.action import ActionKind

from repro.analysis.discovery import ClassTarget, ModuleTarget, TargetSet, class_def_for
from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.writes import ClassIndex, Write

_LOCALLY_CONTROLLED = (ActionKind.OUTPUT, ActionKind.INTERNAL)
_DSL_PREFIXES = ("_pre_", "_eff_", "_candidates_")

# Module-level functions of the ``random`` module that consume the
# process-global (unseeded) RNG.  ``random.Random(seed)`` is the legal
# alternative and is deliberately absent.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
        "getrandbits",
        "seed",
    }
)

_WALL_CLOCK = {
    "time": frozenset({"time", "time_ns"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
}


def _suffix(action_name: str) -> str:
    # The analyzer computes suffixes itself (never via method_suffix) so
    # colliding fixture vocabularies are *reported*, not raised on.
    return action_name.replace(".", "_")


def _merged(cls: type, attr: str) -> Dict[str, ActionKind]:
    merged: Dict[str, ActionKind] = {}
    for klass in reversed(cls.__mro__):
        value = klass.__dict__.get(attr)
        if isinstance(value, dict):
            merged.update(value)
    return merged


class ClassContext:
    """Everything the per-class rules need about one ClassTarget."""

    def __init__(self, target: ClassTarget, index: ClassIndex) -> None:
        self.target = target
        self.cls = target.cls
        self.index = index
        self.own_signature = dict(self.cls.__dict__.get("SIGNATURE") or {})
        self.own_optional = dict(self.cls.__dict__.get("OPTIONAL_SIGNATURE") or {})
        self.own_projections = dict(self.cls.__dict__.get("PARAM_PROJECTIONS") or {})
        self.effective = _merged(self.cls, "SIGNATURE")
        self.effective_optional = _merged(self.cls, "OPTIONAL_SIGNATURE")
        self.vocabulary = {**self.effective, **self.effective_optional}
        self.suffixes = {_suffix(name): name for name in self.vocabulary}
        self.entry_lines = self._dict_entry_lines()
        self.methods = {
            name: fn
            for name, fn in self.index.methods(self.cls).items()
        }

    def _dict_entry_lines(self) -> Dict[Tuple[str, str], int]:
        """(class attr, action name) -> source line of the dict entry."""
        lines: Dict[Tuple[str, str], int] = {}
        for item in self.target.node.body:
            if not isinstance(item, ast.Assign):
                continue
            for target in item.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id not in ("SIGNATURE", "OPTIONAL_SIGNATURE", "PARAM_PROJECTIONS"):
                    continue
                if isinstance(item.value, ast.Dict):
                    for key in item.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            lines[(target.id, key.value)] = key.lineno
        return lines

    def entry_line(self, attr: str, action: str) -> int:
        return self.entry_lines.get((attr, action), self.target.node.lineno)

    def finding(
        self,
        check: str,
        line: int,
        explanation: str,
        *,
        obj: str = "",
        extra_anchors: Iterable[int] = (),
    ) -> Finding:
        rule = check.split(".", 1)[0]
        anchors = tuple(dict.fromkeys(
            [line, *extra_anchors, self.target.node.lineno]
        ))
        return Finding(
            rule=rule,
            check=check.split(".", 1)[1],
            severity=Severity.ERROR,
            location=Location(
                file=self.target.module.path,
                line=line,
                module=self.target.module.name,
                obj=f"{self.cls.__qualname__}{('.' + obj) if obj else ''}",
            ),
            explanation=explanation,
            anchors=anchors,
        )


# ---------------------------------------------------------------------------
# R1 - precondition purity
# ---------------------------------------------------------------------------


def check_r1(ctx: ClassContext) -> List[Finding]:
    findings: List[Finding] = []
    for name, fn in sorted(ctx.methods.items()):
        if not name.startswith("_pre_"):
            continue
        writes, eff_calls = ctx.index.closure(ctx.cls, name)
        for write in writes:
            where = (
                "" if write.containing_def_line == fn.lineno
                else " (via a helper it calls)"
            )
            findings.append(ctx.finding(
                "R1.write",
                write.line,
                f"precondition {name} writes state variable "
                f"{write.attr!r} ({write.reason}){where}; preconditions "
                "must be pure predicates",
                obj=name,
                extra_anchors=(write.containing_def_line, fn.lineno),
            ))
        for eff_name, line in eff_calls:
            findings.append(ctx.finding(
                "R1.calls-effect",
                line,
                f"precondition {name} calls effect method {eff_name}; "
                "evaluating a guard must not take the transition",
                obj=name,
                extra_anchors=(fn.lineno,),
            ))
    return findings


# ---------------------------------------------------------------------------
# R2 - inheritance conformance (the ownership rule of [26])
# ---------------------------------------------------------------------------


def _static_owners(ctx: ClassContext) -> Dict[str, type]:
    """attr -> owning class, mirroring _init_state_chain (base-first)."""
    owners: Dict[str, type] = {}
    for klass in reversed(ctx.cls.__mro__):
        for attr in ctx.index.state_writes(klass):
            owners.setdefault(attr, klass)
    return owners


def check_r2(ctx: ClassContext) -> List[Finding]:
    findings: List[Finding] = []
    owners = _static_owners(ctx)
    for name, fn in sorted(ctx.methods.items()):
        if not name.startswith("_eff_"):
            continue
        writes, _eff_calls = ctx.index.closure(ctx.cls, name)
        reported: Set[Tuple[str, int]] = set()
        for write in writes:
            owner = owners.get(write.attr)
            if owner is None or owner is ctx.cls:
                continue
            key = (write.attr, write.line)
            if key in reported:
                continue
            reported.add(key)
            where = (
                "" if write.containing_def_line == fn.lineno
                else " (via a helper it calls)"
            )
            findings.append(ctx.finding(
                "R2.parent-write",
                write.line,
                f"effect {name} of {ctx.cls.__name__} writes "
                f"{write.attr!r} ({write.reason}){where}, a state variable "
                f"owned by ancestor {owner.__name__}; the inheritance "
                "construct of [26] forbids child effects from modifying "
                "parent state",
                obj=name,
                extra_anchors=(write.containing_def_line, fn.lineno),
            ))
    return findings


# ---------------------------------------------------------------------------
# R3 - signature coherence
# ---------------------------------------------------------------------------


def check_r3(ctx: ClassContext) -> List[Finding]:
    findings: List[Finding] = []
    cls = ctx.cls

    # kind sanity + per-declaration checks, only for entries this class
    # itself declares (inherited declarations are checked at the ancestor).
    for attr_name, table in (("SIGNATURE", ctx.own_signature),
                             ("OPTIONAL_SIGNATURE", ctx.own_optional)):
        for action, kind in table.items():
            line = ctx.entry_line(attr_name, action)
            if not isinstance(kind, ActionKind):
                findings.append(ctx.finding(
                    "R3.bad-kind",
                    line,
                    f"{attr_name}[{action!r}] is {kind!r}, not an ActionKind",
                ))
                continue
            suffix = _suffix(action)
            if kind is ActionKind.INPUT:
                definer = next(
                    (k for k in cls.__mro__ if f"_pre_{suffix}" in vars(k)), None
                )
                if definer is not None:
                    findings.append(ctx.finding(
                        "R3.input-precondition",
                        line,
                        f"input action {action!r} has a precondition "
                        f"_pre_{suffix} (defined in {definer.__name__}) that "
                        "the framework never evaluates: input actions are "
                        "enabled in every state",
                    ))
            elif kind in _LOCALLY_CONTROLLED and attr_name == "SIGNATURE":
                if getattr(cls, f"_candidates_{suffix}", None) is None:
                    findings.append(ctx.finding(
                        "R3.missing-candidates",
                        line,
                        f"locally controlled action {action!r} has no "
                        f"reachable _candidates_{suffix}; it can never be "
                        "proposed by enabled_actions() and will silently "
                        "never fire",
                    ))

    # dangling methods: every DSL method this class defines must map back
    # to a declared (or declared-optional) action.
    for name, fn in sorted(ctx.methods.items()):
        for prefix in _DSL_PREFIXES:
            if not name.startswith(prefix):
                continue
            suffix = name[len(prefix):]
            if suffix and suffix not in ctx.suffixes:
                close = _closest(suffix, ctx.suffixes)
                hint = f"; did you mean {close!r}?" if close else ""
                findings.append(ctx.finding(
                    "R3.dangling-method",
                    fn.lineno,
                    f"method {name} matches no declared action (checked "
                    "SIGNATURE and OPTIONAL_SIGNATURE along the MRO); the "
                    f"framework will never call it{hint}",
                    obj=name,
                ))
            break

    # projections must rebind declared actions.
    for action in ctx.own_projections:
        if action not in ctx.vocabulary:
            findings.append(ctx.finding(
                "R3.unknown-projection",
                ctx.entry_line("PARAM_PROJECTIONS", action),
                f"PARAM_PROJECTIONS key {action!r} names no declared action",
            ))

    # suffix collisions across the effective vocabulary, reported at the
    # class that introduces the second colliding name.
    by_suffix: Dict[str, List[str]] = {}
    for action in sorted(ctx.vocabulary):
        by_suffix.setdefault(_suffix(action), []).append(action)
    for suffix, actions in sorted(by_suffix.items()):
        if len(actions) < 2:
            continue
        if not any(a in ctx.own_signature or a in ctx.own_optional for a in actions):
            continue
        names = ", ".join(repr(a) for a in actions)
        anchor = next(
            (ctx.entry_line("SIGNATURE", a) for a in actions if a in ctx.own_signature),
            ctx.target.node.lineno,
        )
        findings.append(ctx.finding(
            "R3.suffix-collision",
            anchor,
            f"action names {names} all map to method suffix {suffix!r}; "
            "their _pre_/_eff_/_candidates_ methods would be shared "
            "silently (method_suffix raises AmbiguousActionName at runtime)",
        ))
    return findings


def _closest(suffix: str, known: Dict[str, str]) -> Optional[str]:
    """A near-miss suggestion for dangling methods (pure-python, tiny)."""
    best: Optional[str] = None
    best_score = 0.0
    for candidate in known:
        score = _similarity(suffix, candidate)
        if score > best_score:
            best, best_score = candidate, score
    return best if best_score >= 0.75 else None


def _similarity(a: str, b: str) -> float:
    if a == b:
        return 1.0
    if len(a) != len(b):
        # simple containment heuristic for insertions/deletions
        shorter, longer = sorted((a, b), key=len)
        return len(shorter) / len(longer) if shorter in longer else 0.0
    same = sum(1 for x, y in zip(a, b) if x == y)
    # transposition-tolerant: "veiw" vs "view" has 2 mismatches in 4
    return max(same / len(a), 1.0 - (len(a) - same) / len(a) * 0.5)


# ---------------------------------------------------------------------------
# R4 - determinism hygiene (module-level scan)
# ---------------------------------------------------------------------------


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, target: ModuleTarget) -> None:
        self.target = target
        self.findings: List[Finding] = []
        self.scope_lines: List[int] = []
        # names bound to the random/time/datetime modules or the
        # datetime class, and bare names imported from random.
        self.module_names: Dict[str, str] = {}
        self.random_funcs: Set[str] = set()
        self._scan_imports(target.tree)

    def _scan_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("random", "time", "datetime"):
                        self.module_names[alias.asname or root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name in _GLOBAL_RANDOM_FUNCS:
                            self.random_funcs.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self.module_names[alias.asname or alias.name] = "datetime"
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in ("time", "time_ns"):
                            self.module_names[alias.asname or alias.name] = "time-func"

    # -- helpers ------------------------------------------------------------

    def _emit(self, check: str, line: int, explanation: str) -> None:
        rule, sub = check.split(".", 1)
        self.findings.append(Finding(
            rule=rule,
            check=sub,
            severity=Severity.ERROR,
            location=Location(
                file=self.target.path, line=line, module=self.target.name
            ),
            explanation=explanation,
            anchors=tuple(dict.fromkeys([line, *self.scope_lines])),
        ))

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            self._emit(
                "R4.set-iteration",
                iter_node.lineno,
                "iteration over a set expression: the order is hash-seed "
                "dependent and can leak into message or schedule "
                "construction; wrap it in sorted(...)",
            )

    # -- visitors -----------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.scope_lines.append(node.lineno)
        self.generic_visit(node)
        self.scope_lines.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope_lines.append(node.lineno)
        self.generic_visit(node)
        self.scope_lines.pop()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            bound = self.module_names.get(func.value.id)
            if bound == "random" and func.attr in _GLOBAL_RANDOM_FUNCS:
                self._emit(
                    "R4.unseeded-random",
                    node.lineno,
                    f"random.{func.attr}() consumes the process-global RNG; "
                    "use a seeded random.Random instance so chaos schedules "
                    "replay byte for byte",
                )
            elif bound == "time" and func.attr in _WALL_CLOCK["time"]:
                self._emit(
                    "R4.wall-clock",
                    node.lineno,
                    f"time.{func.attr}() reads the wall clock inside model "
                    "code; use the simulated clock",
                )
            elif bound == "datetime" and func.attr in _WALL_CLOCK["datetime"]:
                self._emit(
                    "R4.wall-clock",
                    node.lineno,
                    f"datetime {func.attr}() reads the wall clock inside "
                    "model code; use the simulated clock",
                )
        elif isinstance(func, ast.Name):
            if func.id in self.random_funcs:
                self._emit(
                    "R4.unseeded-random",
                    node.lineno,
                    f"{func.id}() (imported from random) consumes the "
                    "process-global RNG; use a seeded random.Random",
                )
            elif self.module_names.get(func.id) == "time-func":
                self._emit(
                    "R4.wall-clock",
                    node.lineno,
                    f"{func.id}() reads the wall clock inside model code; "
                    "use the simulated clock",
                )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def check_r4(target: ModuleTarget) -> List[Finding]:
    visitor = _DeterminismVisitor(target)
    visitor.visit(target.tree)
    return visitor.findings


# ---------------------------------------------------------------------------
# entry points used by the runner
# ---------------------------------------------------------------------------


def check_class_target(
    target: ClassTarget, targets: TargetSet, index: ClassIndex
) -> List[Finding]:
    # R5 lives in repro.analysis.interference, which imports the footprint
    # engine this module also builds on; import lazily to keep the rule
    # modules cycle-free.
    from repro.analysis.interference import check_r5

    ctx = ClassContext(target, index)
    findings: List[Finding] = []
    findings.extend(check_r1(ctx))
    findings.extend(check_r2(ctx))
    findings.extend(check_r3(ctx))
    findings.extend(check_r5(ctx))
    return findings


def make_class_index(targets: TargetSet) -> ClassIndex:
    return ClassIndex(lambda cls: class_def_for(cls, targets))
