"""Rule R6 - fast-lane replay conformance.

The :class:`~repro.core.fastpath.FastLane` replays compiled transition
chains as straight-line Python.  Its safety argument is "every mutation
is exactly an effect the general engine would have performed" - which
this checker turns from prose into a lint: each replay body
(``try_send``/``try_receive``) may write only endpoint state that the
union of the write-sets of the automaton actions it claims to replay
(:data:`~repro.core.fastpath.REPLAYED_ACTIONS`) can write, the version
counter included.  A write outside that union is **fastpath drift** -
the class of bug the differential suite catches at test time - reported
as ``R6.spurious-write`` at lint time.

The checker resolves the lane's aliasing discipline statically:

* attribute loads ending in ``.endpoint`` (and locals bound from them,
  the ``ep = self.endpoint`` idiom) are *endpoint handles*;
* lane attributes assigned endpoint-rooted values are **aliases**
  (``self._last_rcvd = ep.last_rcvd`` - mutating the object mutates
  endpoint state), while lane containers that receive endpoint-rooted
  *elements* (``self._src_logs[src] = ep.buffer(...)``) alias through
  their values only - storing into the container is lane-private, but
  anything read out of it roots at the endpoint;
* calls to endpoint helpers resolve to the state attribute their return
  value aliases (``ep.buffer(...)`` returns a log inside ``msgs``), and
  their own transitive writes are folded in.

Only the replay bodies are checked: ``_revalidate`` and friends are
eligibility proofs, not replays (they must not mutate endpoint state
beyond what on-demand helpers like ``buffer`` create, which the replayed
chains write anyway).  ``R6.unknown-replay`` enforces the bookkeeping
itself: every ``try_*`` method needs a ``REPLAYED_ACTIONS`` entry, every
entry must name a real method, and every claimed action must resolve to
an ``_eff_`` definition on the endpoint class.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.discovery import ModuleTarget
from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.writes import (
    ACCESSOR_METHODS,
    FRAMEWORK_MUTATORS,
    MUTATOR_METHODS,
    VERSION_ATTR,
    ClassIndex,
    methods_of,
)

_LANE_CLASS = "FastLane"

#: lane-attribute alias kinds (see module docstring)
_ALIAS = "alias"
_CONTAINER = "container"


def _finding(
    check: str,
    path: str,
    module: str,
    line: int,
    obj: str,
    explanation: str,
    anchors: Sequence[int],
) -> Finding:
    return Finding(
        rule="R6",
        check=check,
        severity=Severity.ERROR,
        location=Location(file=path, line=line, module=module, obj=obj),
        explanation=explanation,
        anchors=tuple(dict.fromkeys(anchors)),
    )


def _helper_return_root(cls: type, name: str, index: ClassIndex) -> Optional[str]:
    """The endpoint state attribute ``cls.name(...)``'s return aliases."""
    for klass in cls.__mro__:
        fn = index.methods(klass).get(name)
        if fn is None:
            continue
        roots: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                root = _self_root(node.value)
                if root is None:
                    return None  # a non-state return path: no alias claim
                roots.add(root)
        return roots.pop() if len(roots) == 1 else None
    return None


def _self_root(node: ast.expr) -> Optional[str]:
    """``_root_attr`` against a literal ``self`` receiver, accessor-aware."""
    while True:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ACCESSOR_METHODS:
                node = func.value
            else:
                return None
        else:
            return None


class _LaneMethodScan(ast.NodeVisitor):
    """One ordered pass over a lane method.

    Tracks endpoint-handle locals and endpoint-rooted local aliases, and
    (when ``collect`` is set) records the endpoint state attributes the
    body writes.
    """

    def __init__(
        self,
        lane_map: Dict[str, Tuple[str, str]],
        endpoint_cls: type,
        index: ClassIndex,
        collect: bool,
        build_map: bool = False,
    ) -> None:
        self.lane_map = lane_map
        self.endpoint_cls = endpoint_cls
        self.index = index
        self.collect = collect
        self.build_map = build_map
        self.ep_locals: Set[str] = set()
        self.local_roots: Dict[str, Optional[str]] = {}
        self.writes: List[Tuple[str, int, str]] = []  # (attr, line, reason)

    # -- endpoint-rooted expression resolution ---------------------------

    def _is_endpoint(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "endpoint":
            return True
        return isinstance(node, ast.Name) and node.id in self.ep_locals

    def _lane_attr(self, node: ast.expr) -> Optional[str]:
        """``self.X`` -> ``X`` (lane attribute name), else None."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _endpoint_root(self, node: ast.expr) -> Optional[str]:
        """The endpoint state attribute an expression's value aliases."""
        while True:
            if self._is_endpoint(node):
                return None  # the endpoint itself, not one of its attrs
            if isinstance(node, ast.Attribute):
                if self._is_endpoint(node.value):
                    return node.attr  # ep.last_rcvd
                lane = self._lane_attr(node)
                if lane is not None:
                    kind_attr = self.lane_map.get(lane)
                    return kind_attr[1] if kind_attr is not None else None
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value  # container element aliases what it holds
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    return None
                if self._is_endpoint(func.value):
                    # ep.buffer(...) - what does the helper return?
                    return _helper_return_root(
                        self.endpoint_cls, func.attr, self.index
                    )
                if func.attr in ACCESSOR_METHODS:
                    node = func.value  # self._src_logs.get(src)
                else:
                    return None
            elif isinstance(node, ast.Name):
                return self.local_roots.get(node.id)
            else:
                return None

    # -- write recording -------------------------------------------------

    def _record(self, attr: Optional[str], line: int, reason: str) -> None:
        if attr is not None and self.collect:
            self.writes.append((attr, line, reason))

    def _handle_store(self, target: ast.expr, line: int, reason: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_store(element, line, reason)
            return
        if isinstance(target, ast.Attribute):
            if self._is_endpoint(target.value):
                self._record(target.attr, line, reason)  # ep.last_sent = ...
            elif self._lane_attr(target) is None:
                # foo.bar = ... through an endpoint-rooted local
                self._record(self._endpoint_root(target.value), line, reason)
            # self.X = ... rebinds the lane cache: not an endpoint write
        elif isinstance(target, ast.Subscript):
            base = target.value
            lane = self._lane_attr(base)
            if lane is not None:
                kind_attr = self.lane_map.get(lane)
                if kind_attr is not None and kind_attr[0] == _ALIAS:
                    # self._last_dlvrd[pid] = ... writes the aliased dict
                    self._record(kind_attr[1], line, reason)
                # container stores (self._src_logs[src] = ...) are lane-private
            else:
                self._record(self._endpoint_root(base), line, reason)
        elif isinstance(target, ast.Name):
            self.local_roots[target.id] = None  # rebound below, in _bind

    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if self._is_endpoint(value):
                self.ep_locals.add(target.id)
                self.local_roots.pop(target.id, None)
            else:
                self.ep_locals.discard(target.id)
                self.local_roots[target.id] = self._endpoint_root(value)
        elif isinstance(target, (ast.Tuple, ast.List)) and isinstance(
            value, (ast.Tuple, ast.List)
        ) and len(target.elts) == len(value.elts):
            for element, element_value in zip(target.elts, value.elts):
                self._bind(element, element_value)

    # -- visitors --------------------------------------------------------

    def _harvest(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        """Record lane-attribute aliasing this assignment establishes."""
        root = self._endpoint_root(value)
        if root is None:
            return
        for target in targets:
            lane = self._lane_attr(target)
            if lane is not None and lane != "endpoint":
                self.lane_map[lane] = (_ALIAS, root)
            elif isinstance(target, ast.Subscript):
                lane = self._lane_attr(target.value)
                if lane is not None:
                    self.lane_map.setdefault(lane, (_CONTAINER, root))

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._handle_store(target, node.lineno, "assignment")
        for target in node.targets:
            self._bind(target, node.value)
        if self.build_map:
            self._harvest(node.targets, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._handle_store(node.target, node.lineno, "assignment")
            self._bind(node.target, node.value)
            if self.build_map:
                self._harvest([node.target], node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        self._handle_store(node.target, node.lineno, "augmented assignment")

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._handle_store(target, node.lineno, "del")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if self._is_endpoint(receiver):
                if func.attr in FRAMEWORK_MUTATORS:
                    self._record(
                        VERSION_ATTR, node.lineno, f"call to endpoint.{func.attr}()"
                    )
                elif func.attr not in ACCESSOR_METHODS:
                    # an endpoint helper: fold its transitive writes
                    _klass, effects = self.index.resolve(
                        self.endpoint_cls, func.attr
                    )
                    if effects is not None and self.collect:
                        closure_writes, _eff = self.index.closure(
                            self.endpoint_cls, func.attr
                        )
                        for write in closure_writes:
                            self._record(
                                write.attr,
                                node.lineno,
                                f"via endpoint helper {func.attr}()",
                            )
            elif func.attr in MUTATOR_METHODS:
                self._record(
                    self._endpoint_root(receiver),
                    node.lineno,
                    f"call to mutator .{func.attr}()",
                )
        self.generic_visit(node)


def _build_lane_map(
    class_node: ast.ClassDef, endpoint_cls: type, index: ClassIndex
) -> Dict[str, Tuple[str, str]]:
    """lane attribute -> (alias kind, endpoint state attribute)."""
    lane_map: Dict[str, Tuple[str, str]] = {}
    methods = methods_of(class_node)
    # Two passes: a lane attribute may be consumed in a method parsed
    # before the one that establishes its aliasing.
    for _pass in range(2):
        for fn in methods.values():
            scan = _LaneMethodScan(
                lane_map, endpoint_cls, index, collect=False, build_map=True
            )
            for statement in fn.body:
                scan.visit(statement)
    return lane_map


def check_r6(
    index: ClassIndex,
    *,
    module_name: str,
    path: str,
    class_node: ast.ClassDef,
    replays: Mapping[str, Tuple[str, ...]],
    endpoint_cls: type,
) -> List[Finding]:
    """Check one fast-lane class body against its replay claims."""
    findings: List[Finding] = []
    methods = methods_of(class_node)
    qualname = class_node.name

    def emit(check: str, line: int, obj: str, explanation: str, *extra: int) -> None:
        findings.append(_finding(
            check, path, module_name, line,
            f"{qualname}.{obj}" if obj else qualname,
            explanation, [line, *extra, class_node.lineno],
        ))

    # bookkeeping completeness: the replay table and the class agree
    for method_name in sorted(replays):
        if method_name not in methods:
            emit(
                "unknown-replay", class_node.lineno, method_name,
                f"REPLAYED_ACTIONS claims {method_name!r} but {qualname} "
                "defines no such method",
            )
        for action in replays[method_name]:
            suffix = action.replace(".", "_")
            if getattr(endpoint_cls, f"_eff_{suffix}", None) is None:
                line = methods[method_name].lineno if method_name in methods \
                    else class_node.lineno
                emit(
                    "unknown-replay", line, method_name,
                    f"{method_name} claims to replay {action!r} but "
                    f"{endpoint_cls.__name__} has no _eff_{suffix}; the "
                    "claimed chain cannot be resolved",
                )
    for method_name, fn in sorted(methods.items()):
        if method_name.startswith("try_") and method_name not in replays:
            emit(
                "unknown-replay", fn.lineno, method_name,
                f"fast-lane operation {method_name} has no REPLAYED_ACTIONS "
                "entry; R6 cannot check it against any transition chain",
            )

    lane_map = _build_lane_map(class_node, endpoint_cls, index)

    for method_name in sorted(replays):
        fn = methods.get(method_name)
        if fn is None:
            continue
        allowed: Set[str] = {VERSION_ATTR}
        for action in replays[method_name]:
            suffix = action.replace(".", "_")
            chain_writes, _reads = index.chain_footprint(
                endpoint_cls, f"_eff_{suffix}"
            )
            allowed.update(write.attr for write in chain_writes)
        scan = _LaneMethodScan(lane_map, endpoint_cls, index, collect=True)
        for statement in fn.body:
            scan.visit(statement)
        reported: Set[Tuple[str, int]] = set()
        claimed = ", ".join(repr(a) for a in replays[method_name])
        for attr, line, reason in scan.writes:
            if attr in allowed or (attr, line) in reported:
                continue
            reported.add((attr, line))
            emit(
                "spurious-write", line, method_name,
                f"replay body {method_name} writes endpoint state "
                f"{attr!r} ({reason}), which none of the transition "
                f"chains it claims to replay ({claimed}) writes - "
                "fastpath drift",
                fn.lineno,
            )
    return findings


def check_fastpath(module: ModuleTarget, index: ClassIndex) -> List[Finding]:
    """The production entry: check ``repro.core.fastpath``'s lane."""
    from repro.core.fastpath import REPLAYED_ACTIONS
    from repro.core.gcs_endpoint import GcsEndpoint

    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == _LANE_CLASS:
            return check_r6(
                index,
                module_name=module.name,
                path=module.path,
                class_node=node,
                replays=REPLAYED_ACTIONS,
                endpoint_cls=GcsEndpoint,
            )
    return []


__all__ = ["check_fastpath", "check_r6"]
