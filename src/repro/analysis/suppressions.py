"""``# repro: allow[...]`` suppression comments.

A finding may be deliberately waived in place::

    self.msgs = prune(self.msgs)  # repro: allow[R2] - GC is not part of [26]

The bracket takes a comma-separated list of rule ids, either coarse
("R2", silencing every R2 sub-check) or exact ("R3.missing-candidates").
A suppression applies to findings anchored at its line - the offending
line itself, the enclosing ``def`` or ``class`` line, or the SIGNATURE
entry that declared the action - so a single comment on a method or
class header can waive a whole family of related findings.  An allow on
a standalone comment line also covers the next code line, so it can sit
on its own line above the statement it waives.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Set

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")


class SuppressionIndex:
    """Per-file map of line number -> rule ids allowed on that line."""

    def __init__(self, source_lines: Iterable[str]) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        # The comment-origin lines only (no propagation): what the SUP
        # hygiene rule validates against the catalogue, so an unknown id
        # is reported once, at the comment that declares it.
        self.declared: Dict[int, Set[str]] = {}
        # Allows on a standalone comment line also cover the next code
        # line, so a suppression can sit above the statement it waives.
        pending: Set[str] = set()
        for lineno, text in enumerate(source_lines, start=1):
            stripped = text.strip()
            match = _ALLOW_RE.search(text)
            if match is not None:
                ids = {
                    part.strip() for part in match.group(1).split(",") if part.strip()
                }
                if ids:
                    self.by_line.setdefault(lineno, set()).update(ids)
                    self.declared.setdefault(lineno, set()).update(ids)
                    if stripped.startswith("#"):
                        pending |= ids
                        continue
            if pending and stripped and not stripped.startswith("#"):
                self.by_line.setdefault(lineno, set()).update(pending)
                pending = set()

    def allows(self, rule: str, rule_id: str, lines: Iterable[int]) -> bool:
        """Whether any of ``lines`` carries an allow for this finding."""
        for lineno in lines:
            ids = self.by_line.get(lineno)
            if ids and (rule in ids or rule_id in ids):
                return True
        return False
