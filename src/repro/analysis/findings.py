"""Finding model and the rule catalogue of the static verifier.

Each rule encodes one clause of the paper's structural discipline:

``R1``
    preconditions are *predicates* - Section 2's transition relation is
    defined by pure guards, so a ``_pre_*`` body (or any helper it
    calls) must never write automaton state.

``R2``
    the inheritance construct of [26] (Section 2): a child's added
    effects never modify state variables owned by an ancestor level.
    Statically mirrors the runtime strict-mode ownership check.

``R3``
    signature coherence: every SIGNATURE action resolves to the methods
    the framework will actually call, and every ``_pre_*``/``_eff_*``/
    ``_candidates_*`` method and PARAM_PROJECTIONS key maps back to a
    declared action.  Catches the ``_pre_veiw``-typo class of bugs that
    otherwise yields a silently never-enabled action.

``R4``
    determinism hygiene: chaos schedules (PR 3) must replay byte for
    byte, so the model and chaos packages may not consult wall clocks,
    unseeded module-level randomness, or hash-order set iteration.

``R5``
    interference: two concurrently-enabled locally controlled actions of
    one automaton whose static footprints (repro.analysis.interference)
    conflict must have a documented ordering barrier - the class
    ``ORDERING`` tuple the runner's drain consumes - or an explicit
    ``allow[R5]`` waiver for genuine spec nondeterminism.

``R6``
    fast-lane conformance: the straight-line replay bodies of
    ``repro.core.fastpath.FastLane`` may write only endpoint state the
    transition chains they claim to replay (``REPLAYED_ACTIONS``) write.

``SUP``
    suppression hygiene: every ``# repro: allow[...]`` must name rules
    the catalogue knows, or the waiver is silently dead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Location:
    """Where a finding points: a file, a line, and the object context."""

    file: str
    line: int
    module: str = ""
    obj: str = ""  # e.g. "CoRfifoSpec._pre_co_rfifo_deliver"

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass(frozen=True)
class Finding:
    """One verifier diagnostic with a stable rule identity.

    ``rule`` is the coarse id ("R1".."R4"); ``check`` the sub-check slug
    ("R3" has several).  ``rule_id`` - the stable identifier surfaced in
    JSON output and matched by ``# repro: allow[...]`` suppressions - is
    ``"{rule}.{check}"``.  ``anchors`` lists the extra source lines
    (enclosing ``def``, enclosing ``class``, SIGNATURE entry) at which a
    suppression comment also silences the finding.
    """

    rule: str
    check: str
    severity: Severity
    location: Location
    explanation: str
    suppressed: bool = False
    anchors: Tuple[int, ...] = field(default=(), compare=False)

    @property
    def rule_id(self) -> str:
        return f"{self.rule}.{self.check}"

    def render(self) -> str:
        obj = f" [{self.location.obj}]" if self.location.obj else ""
        sup = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.location}: {self.rule_id} {self.severity.value}{sup}:"
            f"{obj} {self.explanation}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "check": self.check,
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "file": self.location.file,
            "line": self.location.line,
            "module": self.location.module,
            "object": self.location.obj,
            "explanation": self.explanation,
            "suppressed": self.suppressed,
        }


# Stable catalogue: rule_id -> (summary, the paper clause it encodes).
RULE_CATALOGUE: Dict[str, Tuple[str, str]] = {
    "R1.write": (
        "a _pre_* body (or a helper it calls) writes automaton state",
        "Section 2: preconditions are pure predicates over the state",
    ),
    "R1.calls-effect": (
        "a _pre_* body calls into an _eff_* method",
        "Section 2: evaluating a guard must not take the transition",
    ),
    "R2.parent-write": (
        "a class's _eff_* writes a state variable owned by an ancestor",
        "Section 2 / [26]: child effects never modify parent-owned state",
    ),
    "R2.parity": (
        "static ownership disagrees with the runtime strict-mode tables",
        "the static and dynamic enforcers of [26] must agree",
    ),
    "R3.input-precondition": (
        "an INPUT action has a _pre_* method that is never evaluated",
        "Section 2: input actions are enabled in every state",
    ),
    "R3.missing-candidates": (
        "a locally controlled action has no reachable _candidates_*",
        "executability: locally controlled actions need finite bindings",
    ),
    "R3.dangling-method": (
        "a _pre_*/_eff_*/_candidates_* method matches no declared action",
        "signature extension: every method must resolve to an action",
    ),
    "R3.unknown-projection": (
        "a PARAM_PROJECTIONS key names no declared action",
        "signature extension: projections rebind declared actions only",
    ),
    "R3.suffix-collision": (
        "two distinct action names collide onto one method suffix",
        "method resolution: the name->suffix map must stay injective",
    ),
    "R3.bad-kind": (
        "a SIGNATURE value is not an ActionKind",
        "Section 2: every action is input, output, or internal",
    ),
    "R4.unseeded-random": (
        "module-level random.* call (unseeded process-global RNG)",
        "chaos replay: seeds must reproduce schedules byte for byte",
    ),
    "R4.wall-clock": (
        "wall-clock read (time.time / datetime.now) in model code",
        "chaos replay: model time is the simulated clock only",
    ),
    "R4.set-iteration": (
        "iteration over a set expression (hash order) in model code",
        "chaos replay: orders feeding schedules must be deterministic",
    ),
    "R5.conflict": (
        "concurrently-enabled actions with interfering footprints and "
        "no ordering barrier",
        "Section 2: unordered interfering transitions are a race unless "
        "the schedule serialises them",
    ),
    "R5.read-parity": (
        "a precondition's runtime reads exceed its static read-set",
        "the footprint engine and the live automaton must agree on what "
        "guards depend on",
    ),
    "R6.spurious-write": (
        "a fast-lane replay body writes state its claimed transition "
        "chains never write",
        "Section 4-5: the lane is a peephole over the same state - every "
        "mutation must be an effect the general engine performs",
    ),
    "R6.unknown-replay": (
        "REPLAYED_ACTIONS and the fast-lane class body disagree",
        "fastpath conformance is only as good as its replay bookkeeping",
    ),
    "SUP.unknown-rule": (
        "a '# repro: allow[...]' names a rule id the catalogue does not",
        "a dead waiver hides nothing and will surprise someone later",
    ),
}
