"""Static verifier for the I/O-automaton DSL (``python -m repro lint``).

Checks, without executing a single transition:

- **R1 precondition purity** - ``_pre_*`` bodies (and helpers they
  reach) never write automaton state or call effects.
- **R2 inheritance conformance** - a class's ``_eff_*`` write-sets stay
  within its own ``_state`` variables; the static mirror of the runtime
  strict mode (the inheritance construct of [26]).
- **R3 signature coherence** - SIGNATURE entries, DSL methods, and
  PARAM_PROJECTIONS keys form a closed, unambiguous vocabulary.
- **R4 determinism hygiene** - no unseeded randomness, wall clocks, or
  set-order iteration inside replay-critical packages.
"""

from repro.analysis.discovery import AnalysisError, load_targets
from repro.analysis.findings import Finding, Location, RULE_CATALOGUE, Severity
from repro.analysis.runner import DEFAULT_DET_SCOPE, Report, analyze

__all__ = [
    "AnalysisError",
    "DEFAULT_DET_SCOPE",
    "Finding",
    "Location",
    "RULE_CATALOGUE",
    "Report",
    "Severity",
    "analyze",
    "load_targets",
]
