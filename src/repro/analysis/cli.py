"""``python -m repro lint`` - the verifier's command-line surface."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.discovery import AnalysisError
from repro.analysis.findings import RULE_CATALOGUE
from repro.analysis.runner import DEFAULT_DET_SCOPE, analyze


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "targets",
        nargs="*",
        default=["repro"],
        help="dotted module names or paths to analyze (default: repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--det-scope",
        default=",".join(DEFAULT_DET_SCOPE),
        help="comma-separated dotted prefixes the determinism rule (R4) "
             "applies to; pass an empty string to apply it everywhere",
    )
    parser.add_argument(
        "--strict-parity",
        action="store_true",
        help="also compose a strict-mode SimWorld and cross-check static "
             "ownership against the runtime tables (R2.parity)",
    )
    parser.add_argument(
        "--interference",
        action="store_true",
        help="also build the per-automaton commutativity table from the "
             "footprint engine and print it (canonical JSON; the chaos "
             "shrinker's POR input)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="with --interference: write the commutativity table to PATH "
             "(byte-stable) instead of printing it",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="report findings even where a '# repro: allow[...]' comment "
             "waives them",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _parse_det_scope(raw: str):
    if raw == "":
        # empty prefix matches every module
        return ("",)
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id in sorted(RULE_CATALOGUE):
            summary, clause = RULE_CATALOGUE[rule_id]
            print(f"{rule_id:24} {summary}")
            print(f"{'':24} ({clause})")
        return 0

    try:
        report = analyze(
            args.targets,
            det_scope=_parse_det_scope(args.det_scope),
            respect_suppressions=not args.no_suppress,
            strict_parity=args.strict_parity,
        )
        if args.interference:
            _emit_interference(args)
    except AnalysisError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            if finding.suppressed and not args.no_suppress:
                continue
            print(finding.render())
        status = "clean" if report.ok else f"{len(report.active)} finding(s)"
        suppressed = (
            f", {len(report.suppressed)} suppressed" if report.suppressed else ""
        )
        print(
            f"lint: {status}{suppressed} - {report.classes} automata in "
            f"{report.modules} modules ({report.elapsed:.2f}s)"
        )
    return 0 if report.ok else 1


def _emit_interference(args: argparse.Namespace) -> None:
    """Build and emit the commutativity table for the lint targets."""
    from repro.analysis.discovery import load_targets
    from repro.analysis.interference import interference_table, table_json
    from repro.analysis.runner import make_class_index

    targets = load_targets(tuple(args.targets))
    index = make_class_index(targets)
    payload = table_json(interference_table(targets.classes, index))
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as handle:
            handle.write(payload)
        print(f"lint: interference table written to {args.output}")
    else:
        sys.stdout.write(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static verifier for the I/O-automaton DSL "
                    "(precondition purity, inheritance conformance, "
                    "signature coherence, determinism hygiene).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
