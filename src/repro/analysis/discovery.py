"""Target loading: imports, ASTs, and Automaton subclass collection.

The verifier is AST-plus-introspection: modules are *imported* (so the
real MRO, merged signatures, and ``ActionKind`` values are available)
and *parsed* (so method bodies can be checked without executing a single
transition).  A target is either a dotted module/package name or a
filesystem path; paths are resolved to their importable dotted name by
climbing past ``__init__.py`` files, so fixture packages analyze under
their real names.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import os
import pkgutil
import sys
from dataclasses import dataclass, field
from types import ModuleType
from typing import Dict, List, Optional, Tuple, Type

from repro.errors import ReproError
from repro.ioa.automaton import Automaton

from repro.analysis.suppressions import SuppressionIndex


class AnalysisError(ReproError):
    """A lint target could not be loaded (bad path, import failure)."""


@dataclass
class ModuleTarget:
    """One imported-and-parsed module under analysis."""

    name: str
    path: str
    tree: ast.Module
    source_lines: List[str]
    suppressions: SuppressionIndex
    module: ModuleType


@dataclass
class ClassTarget:
    """One Automaton subclass defined in a target module."""

    cls: Type[Automaton]
    node: ast.ClassDef  # linenos absolute within module.path
    module: ModuleTarget

    @property
    def qualname(self) -> str:
        return self.cls.__qualname__


@dataclass
class TargetSet:
    modules: List[ModuleTarget] = field(default_factory=list)
    classes: List[ClassTarget] = field(default_factory=list)


def _dotted_name_for_path(path: str) -> Tuple[str, str]:
    """(sys.path root, dotted module name) for a file/package path."""
    path = os.path.abspath(path)
    if os.path.isfile(path):
        base, ext = os.path.splitext(path)
        if ext != ".py":
            raise AnalysisError(f"not a python file: {path}")
        parent, leaf = os.path.dirname(base), os.path.basename(base)
    elif os.path.isdir(path):
        if not os.path.exists(os.path.join(path, "__init__.py")):
            raise AnalysisError(f"not a package (no __init__.py): {path}")
        parent, leaf = os.path.dirname(path), os.path.basename(path)
    else:
        raise AnalysisError(f"no such lint target: {path}")
    parts = [leaf]
    while os.path.exists(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    return parent, ".".join(reversed(parts))


def _import_target(spec: str) -> ModuleType:
    if os.path.sep in spec or os.path.exists(spec):
        root, dotted = _dotted_name_for_path(spec)
        if root not in sys.path:
            sys.path.insert(0, root)
    else:
        dotted = spec
    try:
        return importlib.import_module(dotted)
    except Exception as exc:  # surface import failures as analysis errors
        raise AnalysisError(f"cannot import lint target {dotted!r}: {exc}") from exc


def _iter_modules(root: ModuleType) -> List[ModuleType]:
    """The module itself, plus every submodule if it is a package."""
    modules = [root]
    if hasattr(root, "__path__"):
        prefix = root.__name__ + "."
        for info in pkgutil.walk_packages(root.__path__, prefix=prefix):
            try:
                modules.append(importlib.import_module(info.name))
            except Exception as exc:
                raise AnalysisError(
                    f"cannot import submodule {info.name!r}: {exc}"
                ) from exc
    return modules


def _parse_module(module: ModuleType) -> Optional[ModuleTarget]:
    path = getattr(module, "__file__", None)
    if not path or not path.endswith(".py") or not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines = source.splitlines()
    tree = ast.parse(source, filename=path)
    return ModuleTarget(
        name=module.__name__,
        path=path,
        tree=tree,
        source_lines=lines,
        suppressions=SuppressionIndex(lines),
        module=module,
    )


def _class_defs(tree: ast.Module) -> Dict[str, ast.ClassDef]:
    """qualname -> ClassDef for every (possibly nested) class."""
    found: Dict[str, ast.ClassDef] = {}

    def walk(nodes, prefix: str) -> None:
        for node in nodes:
            if isinstance(node, ast.ClassDef):
                qualname = f"{prefix}{node.name}"
                found[qualname] = node
                walk(node.body, f"{qualname}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(node.body, f"{prefix}{node.name}.<locals>.")

    walk(tree.body, "")
    return found


def load_targets(specs: Tuple[str, ...]) -> TargetSet:
    """Import and parse every target, collecting Automaton subclasses.

    A class is attributed to the module that *defines* it (its
    ``__module__``), so re-exports never produce duplicate targets.
    """
    result = TargetSet()
    seen_modules: Dict[str, ModuleTarget] = {}
    for spec in specs:
        root = _import_target(spec)
        for module in _iter_modules(root):
            if module.__name__ in seen_modules:
                continue
            target = _parse_module(module)
            if target is None:
                continue
            seen_modules[module.__name__] = target
            result.modules.append(target)
    for target in result.modules:
        defs = _class_defs(target.tree)
        for name in sorted(vars(target.module)):
            obj = vars(target.module)[name]
            if not (isinstance(obj, type) and issubclass(obj, Automaton)):
                continue
            if obj is Automaton or obj.__module__ != target.name:
                continue
            node = defs.get(obj.__qualname__)
            if node is None:
                continue  # dynamically created class; nothing to parse
            if any(ct.cls is obj for ct in result.classes):
                continue
            result.classes.append(ClassTarget(cls=obj, node=node, module=target))
    return result


# ---------------------------------------------------------------------------
# out-of-target class ASTs (ancestors living outside the analyzed set)
# ---------------------------------------------------------------------------

_FOREIGN_AST_CACHE: Dict[type, Optional[ast.ClassDef]] = {}


def class_def_for(cls: type, targets: TargetSet) -> Optional[ast.ClassDef]:
    """The ClassDef of ``cls``, from the target set or via inspect.

    Ancestors of analyzed automata (e.g. the repro base layers when a
    fixture package is the target) still need their ``_state`` and
    helper bodies; they are parsed on demand and cached per class.
    """
    for ct in targets.classes:
        if ct.cls is cls:
            return ct.node
    if cls in _FOREIGN_AST_CACHE:
        return _FOREIGN_AST_CACHE[cls]
    node: Optional[ast.ClassDef] = None
    try:
        source_lines, start = inspect.getsourcelines(cls)
        source = "".join(source_lines)
        import textwrap

        tree = ast.parse(textwrap.dedent(source))
        candidate = tree.body[0]
        if isinstance(candidate, ast.ClassDef):
            ast.increment_lineno(candidate, start - 1)
            node = candidate
    except (OSError, TypeError, SyntaxError, IndexError):
        node = None
    _FOREIGN_AST_CACHE[cls] = node
    return node
