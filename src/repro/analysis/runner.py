"""The analysis driver: load targets, run R1-R4, apply suppressions."""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.discovery import TargetSet, load_targets
from repro.analysis.findings import Finding
from repro.analysis.rules import check_class_target, check_r4, make_class_index
from repro.analysis.suppressions import SuppressionIndex
from repro.analysis.writes import ClassIndex

# Packages whose code feeds deterministic replay (R4 applies).
DEFAULT_DET_SCOPE: Tuple[str, ...] = (
    "repro.ioa",
    "repro.spec",
    "repro.core",
    "repro.chaos",
    "repro.links",
    "repro.scale",
    "repro.apps",
    "repro.checking.verdict",
)

# The fast-lane module rule R6 pins against its replay claims.
_FASTPATH_MODULE = "repro.core.fastpath"


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    modules: int = 0
    classes: int = 0
    elapsed: float = 0.0

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "modules": self.modules,
                "classes": self.classes,
                "errors": sum(1 for f in self.active if f.severity.value == "error"),
                "warnings": sum(
                    1 for f in self.active if f.severity.value == "warning"
                ),
                "suppressed": len(self.suppressed),
                "elapsed_seconds": round(self.elapsed, 3),
            },
        }


def _in_scope(module_name: str, scope: Sequence[str]) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in scope
    )


def _suppression_index_for(
    path: str, by_path: Dict[str, SuppressionIndex]
) -> Optional[SuppressionIndex]:
    index = by_path.get(path)
    if index is None and path:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                index = SuppressionIndex(handle.read().splitlines())
        except OSError:
            return None
        by_path[path] = index
    return index


def _apply_suppressions(
    findings: List[Finding], targets: TargetSet
) -> List[Finding]:
    by_path: Dict[str, SuppressionIndex] = {
        module.path: module.suppressions for module in targets.modules
    }
    out: List[Finding] = []
    for finding in findings:
        index = _suppression_index_for(finding.location.file, by_path)
        lines = finding.anchors or (finding.location.line,)
        if index is not None and index.allows(finding.rule, finding.rule_id, lines):
            finding = replace(finding, suppressed=True)
        out.append(finding)
    return out


def analyze(
    specs: Sequence[str],
    *,
    det_scope: Optional[Sequence[str]] = None,
    respect_suppressions: bool = True,
    strict_parity: bool = False,
) -> Report:
    """Run the verifier over ``specs`` (dotted names or paths).

    ``det_scope`` limits R4 to modules under the given dotted prefixes
    (defaults to :data:`DEFAULT_DET_SCOPE`); R1-R3 always run on every
    discovered :class:`~repro.ioa.automaton.Automaton` subclass.
    """
    start = time.perf_counter()
    scope = tuple(det_scope) if det_scope is not None else DEFAULT_DET_SCOPE
    targets = load_targets(tuple(specs))
    index = make_class_index(targets)

    findings: List[Finding] = []
    for class_target in targets.classes:
        findings.extend(check_class_target(class_target, targets, index))
    for module in targets.modules:
        if _in_scope(module.name, scope):
            findings.extend(check_r4(module))
        if module.name == _FASTPATH_MODULE:
            findings.extend(_run_fastpath(module, index))
        findings.extend(_check_suppression_hygiene(module))
    if strict_parity:
        findings.extend(_run_parity(index))

    findings.sort(key=lambda f: (f.location.file, f.location.line, f.rule_id))
    if respect_suppressions:
        findings = _apply_suppressions(findings, targets)

    return Report(
        findings=findings,
        modules=len(targets.modules),
        classes=len(targets.classes),
        elapsed=time.perf_counter() - start,
    )


def _run_parity(index: ClassIndex) -> List[Finding]:
    from repro.analysis.parity import run_strict_parity

    return run_strict_parity(index)


def _run_fastpath(module, index: ClassIndex) -> List[Finding]:
    from repro.analysis.fastlane import check_fastpath

    return check_fastpath(module, index)


def _known_suppression_ids() -> set:
    from repro.analysis.findings import RULE_CATALOGUE

    coarse = {rule_id.split(".", 1)[0] for rule_id in RULE_CATALOGUE}
    return set(RULE_CATALOGUE) | coarse


_RULE_ID_SHAPE = re.compile(r"^[A-Za-z][A-Za-z0-9]*(\.[A-Za-z0-9_-]+)?$")


def _check_suppression_hygiene(module) -> List[Finding]:
    """SUP.unknown-rule: every declared allow id must exist in the catalogue.

    Only tokens shaped like rule ids are validated: prose placeholders in
    docstrings (``allow[...]``) are not waivers and are left alone.
    """
    from repro.analysis.findings import Location, Severity

    known = _known_suppression_ids()
    findings: List[Finding] = []
    for lineno in sorted(module.suppressions.declared):
        for rule_id in sorted(module.suppressions.declared[lineno]):
            if rule_id in known or not _RULE_ID_SHAPE.match(rule_id):
                continue
            findings.append(Finding(
                rule="SUP",
                check="unknown-rule",
                severity=Severity.ERROR,
                location=Location(
                    file=module.path, line=lineno, module=module.name
                ),
                explanation=(
                    f"'# repro: allow[{rule_id}]' names no rule in the "
                    "catalogue; the waiver is dead and suppresses nothing "
                    "(see --list-rules for valid ids)"
                ),
                anchors=(lineno,),
            ))
    return findings
