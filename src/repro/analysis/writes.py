"""Static footprint (read/write-set) and purity analysis of automaton methods.

The engine answers, for one method body, "which ``self`` attributes can
this code write, and which can it read?" - where *write* covers plain
assignment, augmented assignment, ``del``, subscript stores, calls to
known mutator methods (``append``, ``setdefault``, ...) and mutator
functions (``bisect.insort``, ``heapq.heappush``, ...), including
through local aliases (``buffers = self.msgs[q]; del buffers[view]``
counts as a write to ``msgs``), and *read* covers attribute loads and
subscript loads rooted at ``self``.  Tuple-unpacking assignments alias
pairwise (``bufs, log = self.msgs[q], self.log`` makes later mutations
through either name visible).  Helper calls on ``self`` are resolved
along the static MRO and folded in transitively, so a precondition that
reaches a memoizing helper is still caught.

Subscript accesses are *key sensitive* where the key is statically
classifiable: a key that is a method parameter records as ``p:<name>``,
a literal as ``k:<repr>``, anything else as ``None`` (may alias any
key).  Two constant keys that differ provably touch different entries;
every other combination conservatively may alias (see
:func:`keys_may_alias`).  Keys are only attached when the subscript base
is directly a ``self`` attribute - an aliased base may sit at a
different nesting depth, so attaching its key would be unsound.

Deliberately not modelled (documented analyzer limits): mutation through
values returned by non-accessor method calls, ``setattr``/``getattr``
indirection, and aliasing through containers.  The runtime strict-mode
fingerprints (and the ``--strict-parity`` read-fingerprint probe) remain
the backstop for those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Type

# Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "add",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "rotate",
        "difference_update",
        "intersection_update",
        "symmetric_difference_update",
        # repro collection types (MessageLog)
        "put",
        "truncate_through",
    }
)

# Module-level functions that mutate their *first argument* in place
# (the bisect/heapq idiom: ``insort(self.log, x)``).
MUTATOR_FUNCTIONS = frozenset(
    {
        "insort",
        "insort_left",
        "insort_right",
        "heappush",
        "heappop",
        "heappushpop",
        "heapreplace",
        "heapify",
    }
)

# Accessor methods whose return value still aliases (part of) the
# receiver, so writes through it count against the receiver's root.
ACCESSOR_METHODS = frozenset({"get", "setdefault", "__getitem__"})

# Framework methods on ``self`` that change state by definition.
FRAMEWORK_MUTATORS = frozenset({"touch", "reset_state", "apply", "enable_optional_actions"})

#: The framework's monotone version counter.  Every action bumps it, so
#: the interference relation excludes it (see repro.analysis.interference).
VERSION_ATTR = "_state_version"


@dataclass(frozen=True)
class Write:
    """One state write: the root attribute, where, and how.

    ``key`` is the subscript-key classification when the write targets
    one entry of a keyed container directly under the attribute
    (``p:<param>``, ``k:<repr>``, or ``None`` for whole-value /
    unclassifiable accesses).
    """

    attr: str
    line: int
    reason: str
    containing_def_line: int
    key: Optional[str] = None


@dataclass(frozen=True)
class Read:
    """One state read: the root attribute, where, and the subscript key."""

    attr: str
    line: int
    containing_def_line: int
    key: Optional[str] = None


@dataclass
class MethodEffects:
    """The statically visible effects of one method body."""

    name: str
    def_line: int
    writes: List[Write] = field(default_factory=list)
    reads: List[Read] = field(default_factory=list)
    helper_calls: Set[str] = field(default_factory=set)  # self.m(...)
    super_calls: Set[str] = field(default_factory=set)  # super().m(...)
    eff_calls: List[Tuple[str, int]] = field(default_factory=list)  # (_eff_*, line)


def keys_may_alias(k1: Optional[str], k2: Optional[str]) -> bool:
    """Whether two subscript-key classifications can denote the same entry.

    Only two *distinct constants* are provably different; a parameter may
    take any value, and ``None`` (whole/unknown) aliases everything.
    """
    if k1 is None or k2 is None:
        return True
    if k1.startswith("k:") and k2.startswith("k:"):
        return k1 == k2
    return True


def _root_attr(node: ast.expr, aliases: Dict[str, Optional[str]]) -> Optional[str]:
    """The ``self`` attribute an expression is rooted in, if any."""
    while True:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ACCESSOR_METHODS:
                node = func.value
            else:
                return None
        elif isinstance(node, ast.Name):
            return aliases.get(node.id)
        else:
            return None


def _is_self_attribute(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class _EffectsVisitor(ast.NodeVisitor):
    """Single pass over a method body collecting writes, reads and calls."""

    def __init__(self, fn: ast.FunctionDef) -> None:
        self.effects = MethodEffects(name=fn.name, def_line=fn.lineno)
        self.aliases: Dict[str, Optional[str]] = {}
        self._def_line = fn.lineno
        self._params = self._param_names(fn)
        # AST nodes whose read was already recorded (or deliberately
        # skipped: method-name attributes of self calls) at a more
        # key-precise site; identity-keyed because nodes are visited once.
        self._consumed: Set[int] = set()

    @staticmethod
    def _param_names(fn: ast.FunctionDef) -> Set[str]:
        args = fn.args
        names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        names.discard("self")
        return names

    def _key_of(self, slice_node: ast.expr) -> Optional[str]:
        if isinstance(slice_node, ast.Name) and slice_node.id in self._params:
            return f"p:{slice_node.id}"
        if isinstance(slice_node, ast.Constant):
            return f"k:{slice_node.value!r}"
        return None

    # -- write recording ----------------------------------------------------

    def _record(
        self, attr: Optional[str], line: int, reason: str, key: Optional[str] = None
    ) -> None:
        if attr is not None:
            self.effects.writes.append(Write(attr, line, reason, self._def_line, key))

    def _record_read(
        self, attr: Optional[str], line: int, key: Optional[str] = None
    ) -> None:
        if attr is not None:
            self.effects.reads.append(Read(attr, line, self._def_line, key))

    def _written_root(self, target: ast.expr) -> Tuple[Optional[str], Optional[str]]:
        """(root attribute, subscript key) a store-context target writes."""
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                return target.attr, None  # self.x = ...
            return _root_attr(target.value, self.aliases), None  # self.a.b = / alias.b =
        if isinstance(target, ast.Subscript):
            root = _root_attr(target.value, self.aliases)  # self.a[k] = / alias[k] =
            key = self._key_of(target.slice) if _is_self_attribute(target.value) else None
            return root, key
        if isinstance(target, (ast.Tuple, ast.List)):
            return None, None  # elements handled by the caller
        return None, None

    def _handle_target(self, target: ast.expr, line: int, reason: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
            elements = target.elts if not isinstance(target, ast.Starred) else [target.value]
            for element in elements:
                self._handle_target(element, line, reason)
            return
        root, key = self._written_root(target)
        self._record(root, line, reason, key)
        if isinstance(target, ast.Subscript):
            self.visit(target.slice)  # keys may themselves read state
        if isinstance(target, ast.Name):
            # a rebound local no longer aliases what it used to
            self.aliases[target.id] = None

    def _bind_aliases(self, target: ast.expr, value: ast.expr) -> None:
        """Alias targets to the state roots of ``value``, pairwise for unpacks."""
        if isinstance(target, ast.Name):
            self.aliases[target.id] = _root_attr(value, self.aliases)
            return
        if isinstance(target, ast.Starred):
            self._bind_aliases(target.value, value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            if (
                isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(target.elts)
                and not any(isinstance(e, ast.Starred) for e in target.elts)
            ):
                # bufs, log = self.msgs[q], self.log  - pairwise aliasing
                for element, element_value in zip(target.elts, value.elts):
                    self._bind_aliases(element, element_value)
            else:
                # a, b = self.pair - every name may alias the one root
                root = _root_attr(value, self.aliases)
                for element in target.elts:
                    inner = element.value if isinstance(element, ast.Starred) else element
                    if isinstance(inner, ast.Name):
                        self.aliases[inner.id] = root

    # -- statements ---------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_target(target, node.lineno, "assignment")
        if len(node.targets) == 1:
            self._bind_aliases(node.targets[0], node.value)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_target(node.target, node.lineno, "assignment")
            self._bind_aliases(node.target, node.value)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            # read the alias before _handle_target clears the binding
            root = self.aliases.get(node.target.id)
            self._record(root, node.lineno, "augmented assignment through alias")
            self._record_read(root, node.lineno)
        else:
            root, key = self._written_root(node.target)
            self._record_read(root, node.lineno, key)  # x += 1 also reads x
        self._handle_target(node.target, node.lineno, "augmented assignment")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                self._record(target.attr, node.lineno, "del of attribute")
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record(
                    _root_attr(target.value, self.aliases), node.lineno, "del of item"
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            is_self_call = isinstance(receiver, ast.Name) and receiver.id == "self"
            if is_self_call and func.attr.startswith("_eff_"):
                self.effects.eff_calls.append((func.attr, node.lineno))
            elif is_self_call and func.attr in FRAMEWORK_MUTATORS:
                self.effects.writes.append(
                    Write(VERSION_ATTR, node.lineno,
                          f"call to self.{func.attr}()", self._def_line)
                )
            elif is_self_call:
                self.effects.helper_calls.add(func.attr)
            elif func.attr in MUTATOR_METHODS:
                key = (
                    self._key_of(receiver.slice)
                    if isinstance(receiver, ast.Subscript)
                    and _is_self_attribute(receiver.value)
                    else None
                )
                self._record(
                    _root_attr(receiver, self.aliases),
                    node.lineno,
                    f"call to mutator .{func.attr}()",
                    key,
                )
            elif func.attr in MUTATOR_FUNCTIONS and node.args and \
                    _root_attr(receiver, self.aliases) is None:
                # bisect.insort(self.log, x) - mutates its first argument
                self._record(
                    _root_attr(node.args[0], self.aliases),
                    node.lineno,
                    f"call to mutator function {func.attr}()",
                )
            if is_self_call:
                # self.helper - the attribute is a method name, not a
                # state read; keep it out of the read-set.
                self._consumed.add(id(func))
            # super().m(...) resolves past the defining class in the MRO
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
            ):
                self._consumed.add(id(func))
                if func.attr.startswith("_eff_"):
                    self.effects.eff_calls.append((func.attr, node.lineno))
                else:
                    self.effects.super_calls.add(func.attr)
        elif isinstance(func, ast.Name) and func.id in MUTATOR_FUNCTIONS and node.args:
            # from bisect import insort; insort(self.log, x)
            self._record(
                _root_attr(node.args[0], self.aliases),
                node.lineno,
                f"call to mutator function {func.id}()",
            )
        self.generic_visit(node)

    # -- read recording -----------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and id(node) not in self._consumed:
            self._record_read(_root_attr(node, self.aliases), node.lineno)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load) and _is_self_attribute(node.value):
            # self.msgs[q] - a key-sensitive read; consume the inner
            # attribute so the unkeyed read does not swallow the key.
            self._record_read(node.value.attr, node.lineno, self._key_of(node.slice))
            self._consumed.add(id(node.value))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested defs (incl. lambdas via generic_visit) still count: their
        # writes happen when the closure runs, and preconditions must not
        # even construct state-mutating closures.
        self.generic_visit(node)


def method_effects(fn: ast.FunctionDef) -> MethodEffects:
    visitor = _EffectsVisitor(fn)
    for statement in fn.body:
        visitor.visit(statement)
    return visitor.effects


# ---------------------------------------------------------------------------
# per-class resolution
# ---------------------------------------------------------------------------


def methods_of(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """The function definitions in one class body (most nesting ignored)."""
    return {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class ClassIndex:
    """Lazy per-class method-AST and effects cache over a static MRO."""

    def __init__(self, class_def_for) -> None:
        self._class_def_for = class_def_for
        self._methods: Dict[type, Dict[str, ast.FunctionDef]] = {}
        self._effects: Dict[Tuple[type, str], Optional[MethodEffects]] = {}

    def methods(self, cls: type) -> Dict[str, ast.FunctionDef]:
        cached = self._methods.get(cls)
        if cached is None:
            node = self._class_def_for(cls)
            cached = methods_of(node) if node is not None else {}
            self._methods[cls] = cached
        return cached

    def own_effects(self, cls: type, name: str) -> Optional[MethodEffects]:
        key = (cls, name)
        if key not in self._effects:
            fn = self.methods(cls).get(name)
            self._effects[key] = method_effects(fn) if fn is not None else None
        return self._effects[key]

    def resolve(self, cls: type, name: str, after: Optional[type] = None):
        """(defining class, effects) for ``name`` along ``cls.__mro__``.

        ``after`` resolves ``super()`` calls: the search starts past that
        class in the MRO.
        """
        mro = list(cls.__mro__)
        if after is not None and after in mro:
            mro = mro[mro.index(after) + 1:]
        for klass in mro:
            if name in self.methods(klass):
                return klass, self.own_effects(klass, name)
            # Runtime-visible methods without parseable AST (builtins,
            # dynamically attached) end the search conservatively.
            if name in vars(klass):
                return klass, None
        return None, None

    def closure(
        self, cls: type, name: str, *, _origin: Optional[type] = None
    ) -> Tuple[List[Write], List[Tuple[str, int]]]:
        """Transitive (writes, eff-calls) of ``cls``'s method ``name``.

        Helper calls on ``self`` are folded in, resolved along the MRO of
        ``cls``; cycles and unknown methods are ignored.
        """
        writes: List[Write] = []
        eff_calls: List[Tuple[str, int]] = []
        seen: Set[Tuple[type, str]] = set()

        def expand(method: str, after: Optional[type]) -> None:
            defining, effects = self.resolve(cls, method, after=after)
            if defining is None or effects is None or (defining, method) in seen:
                return
            seen.add((defining, method))
            writes.extend(effects.writes)
            eff_calls.extend(effects.eff_calls)
            for helper in sorted(effects.helper_calls):
                # plain self.helper() dispatches on the most-derived class
                expand(helper, None)
            for helper in sorted(effects.super_calls):
                # super().helper() resolves past the class that called it
                expand(helper, defining)

        expand(name, _origin)
        return writes, eff_calls

    def chain_footprint(
        self, cls: type, name: str
    ) -> Tuple[List[Write], List[Read]]:
        """Union of (writes, reads) over *every* MRO definition of ``name``.

        The effect-chain semantics of the DSL run every definition along
        the chain (unlike plain dispatch, which ``closure`` models), so
        an action's footprint must fold all of them, plus the helpers
        each transitively reaches.
        """
        writes: List[Write] = []
        reads: List[Read] = []
        seen: Set[Tuple[type, str]] = set()

        def fold(effects: MethodEffects, after: Optional[type]) -> None:
            writes.extend(effects.writes)
            reads.extend(effects.reads)
            for helper in sorted(effects.helper_calls):
                expand(helper, None)
            for helper in sorted(effects.super_calls):
                expand(helper, after)

        def expand(method: str, after: Optional[type]) -> None:
            defining, effects = self.resolve(cls, method, after=after)
            if defining is None or effects is None or (defining, method) in seen:
                return
            seen.add((defining, method))
            fold(effects, defining)

        for klass in cls.__mro__:
            if (klass, name) in seen or name not in self.methods(klass):
                continue
            effects = self.own_effects(klass, name)
            if effects is None:
                continue
            seen.add((klass, name))
            fold(effects, klass)
        return writes, reads

    def state_writes(self, cls: type) -> Dict[str, Write]:
        """Attributes ``cls``'s *own* ``_state`` creates (name -> write)."""
        effects = self.own_effects(cls, "_state")
        if effects is None:
            return {}
        result: Dict[str, Write] = {}
        for write in effects.writes:
            result.setdefault(write.attr, write)
        return result
