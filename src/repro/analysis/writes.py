"""Static write-set and purity analysis of automaton methods.

The engine answers, for one method body, "which ``self`` attributes can
this code write?" - where *write* covers plain assignment, augmented
assignment, ``del``, subscript stores, and calls to known mutator
methods (``append``, ``setdefault``, ...), including through local
aliases (``buffers = self.msgs[q]; del buffers[view]`` counts as a
write to ``msgs``).  Helper calls on ``self`` are resolved along the
static MRO and folded in transitively, so a precondition that reaches a
memoizing helper is still caught.

Deliberately not modelled (documented analyzer limits): mutation through
values returned by non-accessor method calls, ``setattr``/``getattr``
indirection, and aliasing through containers.  The runtime strict-mode
fingerprints remain the backstop for those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Type

# Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "add",
        "update",
        "setdefault",
        "sort",
        "reverse",
        # repro collection types (MessageLog)
        "put",
        "truncate_through",
    }
)

# Accessor methods whose return value still aliases (part of) the
# receiver, so writes through it count against the receiver's root.
ACCESSOR_METHODS = frozenset({"get", "setdefault", "__getitem__"})

# Framework methods on ``self`` that change state by definition.
FRAMEWORK_MUTATORS = frozenset({"touch", "reset_state", "apply", "enable_optional_actions"})


@dataclass(frozen=True)
class Write:
    """One state write: the root attribute, where, and how."""

    attr: str
    line: int
    reason: str
    containing_def_line: int


@dataclass
class MethodEffects:
    """The statically visible effects of one method body."""

    name: str
    def_line: int
    writes: List[Write] = field(default_factory=list)
    helper_calls: Set[str] = field(default_factory=set)  # self.m(...)
    super_calls: Set[str] = field(default_factory=set)  # super().m(...)
    eff_calls: List[Tuple[str, int]] = field(default_factory=list)  # (_eff_*, line)


def _root_attr(node: ast.expr, aliases: Dict[str, Optional[str]]) -> Optional[str]:
    """The ``self`` attribute an expression is rooted in, if any."""
    while True:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ACCESSOR_METHODS:
                node = func.value
            else:
                return None
        elif isinstance(node, ast.Name):
            return aliases.get(node.id)
        else:
            return None


class _EffectsVisitor(ast.NodeVisitor):
    """Single pass over a method body collecting writes and calls."""

    def __init__(self, fn: ast.FunctionDef) -> None:
        self.effects = MethodEffects(name=fn.name, def_line=fn.lineno)
        self.aliases: Dict[str, Optional[str]] = {}
        self._def_line = fn.lineno

    # -- write recording ----------------------------------------------------

    def _record(self, attr: Optional[str], line: int, reason: str) -> None:
        if attr is not None:
            self.effects.writes.append(Write(attr, line, reason, self._def_line))

    def _written_root(self, target: ast.expr) -> Optional[str]:
        """The self attribute a store-context target writes, if any."""
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                return target.attr  # self.x = ...
            return _root_attr(target.value, self.aliases)  # self.a.b = / alias.b =
        if isinstance(target, ast.Subscript):
            return _root_attr(target.value, self.aliases)  # self.a[k] = / alias[k] =
        if isinstance(target, (ast.Tuple, ast.List)):
            return None  # elements handled by the caller
        return None

    def _handle_target(self, target: ast.expr, line: int, reason: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_target(element, line, reason)
            return
        self._record(self._written_root(target), line, reason)
        if isinstance(target, ast.Name):
            # a rebound local no longer aliases what it used to
            self.aliases[target.id] = None

    # -- statements ---------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_target(target, node.lineno, "assignment")
        # simple local aliasing: name = <expr rooted at self.attr>
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self.aliases[node.targets[0].id] = _root_attr(node.value, self.aliases)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_target(node.target, node.lineno, "assignment")
            if isinstance(node.target, ast.Name):
                self.aliases[node.target.id] = _root_attr(node.value, self.aliases)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            # read the alias before _handle_target clears the binding
            root = self.aliases.get(node.target.id)
            self._record(root, node.lineno, "augmented assignment through alias")
        self._handle_target(node.target, node.lineno, "augmented assignment")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                self._record(target.attr, node.lineno, "del of attribute")
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record(
                    _root_attr(target.value, self.aliases), node.lineno, "del of item"
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            is_self_call = isinstance(receiver, ast.Name) and receiver.id == "self"
            if is_self_call and func.attr.startswith("_eff_"):
                self.effects.eff_calls.append((func.attr, node.lineno))
            elif is_self_call and func.attr in FRAMEWORK_MUTATORS:
                self.effects.writes.append(
                    Write("_state_version", node.lineno,
                          f"call to self.{func.attr}()", self._def_line)
                )
            elif is_self_call:
                self.effects.helper_calls.add(func.attr)
            elif func.attr in MUTATOR_METHODS:
                self._record(
                    _root_attr(receiver, self.aliases),
                    node.lineno,
                    f"call to mutator .{func.attr}()",
                )
            # super().m(...) resolves past the defining class in the MRO
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
            ):
                if func.attr.startswith("_eff_"):
                    self.effects.eff_calls.append((func.attr, node.lineno))
                else:
                    self.effects.super_calls.add(func.attr)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested defs (incl. lambdas via generic_visit) still count: their
        # writes happen when the closure runs, and preconditions must not
        # even construct state-mutating closures.
        self.generic_visit(node)


def method_effects(fn: ast.FunctionDef) -> MethodEffects:
    visitor = _EffectsVisitor(fn)
    for statement in fn.body:
        visitor.visit(statement)
    return visitor.effects


# ---------------------------------------------------------------------------
# per-class resolution
# ---------------------------------------------------------------------------


def methods_of(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """The function definitions in one class body (most nesting ignored)."""
    return {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class ClassIndex:
    """Lazy per-class method-AST and effects cache over a static MRO."""

    def __init__(self, class_def_for) -> None:
        self._class_def_for = class_def_for
        self._methods: Dict[type, Dict[str, ast.FunctionDef]] = {}
        self._effects: Dict[Tuple[type, str], Optional[MethodEffects]] = {}

    def methods(self, cls: type) -> Dict[str, ast.FunctionDef]:
        cached = self._methods.get(cls)
        if cached is None:
            node = self._class_def_for(cls)
            cached = methods_of(node) if node is not None else {}
            self._methods[cls] = cached
        return cached

    def own_effects(self, cls: type, name: str) -> Optional[MethodEffects]:
        key = (cls, name)
        if key not in self._effects:
            fn = self.methods(cls).get(name)
            self._effects[key] = method_effects(fn) if fn is not None else None
        return self._effects[key]

    def resolve(self, cls: type, name: str, after: Optional[type] = None):
        """(defining class, effects) for ``name`` along ``cls.__mro__``.

        ``after`` resolves ``super()`` calls: the search starts past that
        class in the MRO.
        """
        mro = list(cls.__mro__)
        if after is not None and after in mro:
            mro = mro[mro.index(after) + 1:]
        for klass in mro:
            if name in self.methods(klass):
                return klass, self.own_effects(klass, name)
            # Runtime-visible methods without parseable AST (builtins,
            # dynamically attached) end the search conservatively.
            if name in vars(klass):
                return klass, None
        return None, None

    def closure(
        self, cls: type, name: str, *, _origin: Optional[type] = None
    ) -> Tuple[List[Write], List[Tuple[str, int]]]:
        """Transitive (writes, eff-calls) of ``cls``'s method ``name``.

        Helper calls on ``self`` are folded in, resolved along the MRO of
        ``cls``; cycles and unknown methods are ignored.
        """
        writes: List[Write] = []
        eff_calls: List[Tuple[str, int]] = []
        seen: Set[Tuple[type, str]] = set()

        def expand(method: str, after: Optional[type]) -> None:
            defining, effects = self.resolve(cls, method, after=after)
            if defining is None or effects is None or (defining, method) in seen:
                return
            seen.add((defining, method))
            writes.extend(effects.writes)
            eff_calls.extend(effects.eff_calls)
            for helper in sorted(effects.helper_calls):
                # plain self.helper() dispatches on the most-derived class
                expand(helper, None)
            for helper in sorted(effects.super_calls):
                # super().helper() resolves past the class that called it
                expand(helper, defining)

        expand(name, _origin)
        return writes, eff_calls

    def state_writes(self, cls: type) -> Dict[str, Write]:
        """Attributes ``cls``'s *own* ``_state`` creates (name -> write)."""
        effects = self.own_effects(cls, "_state")
        if effects is None:
            return {}
        result: Dict[str, Write] = {}
        for write in effects.writes:
            result.setdefault(write.attr, write)
        return result
