"""repro - a client-server virtually synchronous group multicast service.

A complete, executable reproduction of *Keidar & Khazan, "A Client-Server
Approach to Virtually Synchronous Group Multicast: Specifications,
Algorithms, and Proofs"* (ICDCS 2000):

* :mod:`repro.ioa` - the I/O automaton framework with the inheritance
  construct of [26];
* :mod:`repro.spec` - the specification automata (MBRSHP, CO_RFIFO,
  WV_RFIFO, VS_RFIFO, TRANS_SET, SELF, the blocking client);
* :mod:`repro.core` - the algorithm: WV_RFIFO -> VS_RFIFO+TS -> GCS
  end-points and the forwarding strategies;
* :mod:`repro.membership` - membership servers and a timing oracle;
* :mod:`repro.net` - a deterministic discrete-event simulation of the
  whole deployment;
* :mod:`repro.runtime` - the asyncio runtime for real deployments;
* :mod:`repro.deploy` - one deployment contract over three substrates
  (simulator, asyncio, TCP), so scenarios are written once;
* :mod:`repro.checking` - every specified property, invariant and
  refinement mapping as an executable check;
* :mod:`repro.baselines` - sequential and two-round virtual synchrony
  baselines for the evaluation.

Quickstart (asyncio)::

    import asyncio
    from repro import AsyncCluster

    async def main():
        async with AsyncCluster() as cluster:
            a, b = cluster.add_nodes(["a", "b"])
            await cluster.start()
            await a.send("hello group")
            print(await b.next_event(timeout=1.0))

    asyncio.run(main())
"""

from repro.apps import NotPrimaryError, ReplicatedStateMachine
from repro.baselines import SequentialVsEndpoint, TwoRoundVsEndpoint
from repro.checking import GcsTrace, check_all_safety, check_liveness
from repro.core import (
    GcsEndpoint,
    MinCopiesStrategy,
    NoForwarding,
    SimpleStrategy,
    VsRfifoTsEndpoint,
    WvRfifoEndpoint,
    strategy_by_name,
)
from repro.deploy import (
    SUBSTRATES,
    Deployment,
    make_deployment,
    run_scenario,
)
from repro.errors import (
    InvariantViolation,
    RefinementViolation,
    ReproError,
    SpecificationViolation,
)
from repro.harness import ModelHarness
from repro.net import (
    ConstantLatency,
    LognormalLatency,
    SimWorld,
    UniformLatency,
)
from repro.order import CausalOrderNode, TotalOrderNode
from repro.runtime import AsyncCluster, AsyncGcsNode, Delivery, ViewChange
from repro.types import (
    CID_ZERO,
    VID_ZERO,
    Cut,
    ProcessId,
    StartChange,
    StartChangeId,
    View,
    ViewId,
    initial_view,
    make_view,
)

__version__ = "1.0.0"

__all__ = [
    "AsyncCluster",
    "AsyncGcsNode",
    "CID_ZERO",
    "CausalOrderNode",
    "ConstantLatency",
    "Cut",
    "Delivery",
    "Deployment",
    "GcsEndpoint",
    "GcsTrace",
    "InvariantViolation",
    "LognormalLatency",
    "MinCopiesStrategy",
    "ModelHarness",
    "NoForwarding",
    "NotPrimaryError",
    "ProcessId",
    "RefinementViolation",
    "ReplicatedStateMachine",
    "ReproError",
    "SUBSTRATES",
    "SequentialVsEndpoint",
    "SimWorld",
    "SimpleStrategy",
    "SpecificationViolation",
    "StartChange",
    "StartChangeId",
    "TotalOrderNode",
    "TwoRoundVsEndpoint",
    "UniformLatency",
    "VID_ZERO",
    "View",
    "ViewChange",
    "ViewId",
    "VsRfifoTsEndpoint",
    "WvRfifoEndpoint",
    "check_all_safety",
    "check_liveness",
    "initial_view",
    "make_deployment",
    "make_view",
    "run_scenario",
    "strategy_by_name",
]
