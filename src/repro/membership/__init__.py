"""Membership service substrate (the paper's external MBRSHP service).

Two implementations of the Figure 2 interface:

* :class:`~repro.membership.server.MembershipServer` - dedicated
  membership servers in the client-server architecture of [27], with a
  one-round (common case) inter-server agreement and a topology-driven
  failure detector;
* :class:`~repro.membership.oracle.OracleMembership` - a centralized
  oracle with scripted timing, for controlled experiments.
"""

from repro.membership.failure_detector import TopologyFailureDetector
from repro.membership.oracle import OracleMembership
from repro.membership.protocol import (
    SERVER_PREFIX,
    ServerProposal,
    StartChangeNotice,
    ViewNotice,
    server_id,
)
from repro.membership.server import MembershipServer
from repro.membership.tier import MembershipTier, PartitionPlan, TierLink

__all__ = [
    "SERVER_PREFIX",
    "MembershipServer",
    "MembershipTier",
    "OracleMembership",
    "PartitionPlan",
    "ServerProposal",
    "StartChangeNotice",
    "TierLink",
    "TopologyFailureDetector",
    "ViewNotice",
    "server_id",
]
