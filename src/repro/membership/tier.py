"""A substrate-neutral membership-server tier.

The paper's client-server architecture puts membership agreement on a
small tier of dedicated servers; the GCS end-points only ever see the
MBRSHP interface (``start_change`` / ``view`` notices).  ``MembershipTier``
assembles such a tier out of :class:`~repro.membership.server.MembershipServer`
instances over *any* transport: the substrate contributes a tiny adapter
(the :class:`TierLink` protocol below), and the tier contributes the
whole Figure 2 discipline - fresh locally-unique cids, monotone view
counters, one-round (two in the cold-registry case) view agreement.

This is what lets the asyncio and TCP deployments run the *same*
membership algorithm as the simulator instead of an ad-hoc in-process
coordinator: ``AsyncCluster`` links the tier to its ``AsyncHub``,
``TcpCluster`` gives every server a real socket endpoint.

Topology input (who can reach whom among servers) is injected by the
deployment when it partitions or heals its transport - the tier-side
analogue of the simulator's topology failure detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Protocol,
    Set,
)

from repro.checking.events import GcsTrace, MbrshpFormEvent
from repro.links import LinkCore
from repro.membership.protocol import server_id
from repro.membership.server import MembershipServer
from repro.membership.state import ServerState, WatermarkStore
from repro.types import ProcessId, StartChangeId, View


class TierLink(Protocol):
    """What a substrate must provide to host membership servers.

    ``attach`` registers a server's inbox on the substrate (async because
    real transports may need to open sockets); ``transmit`` carries one
    tier message from a server to any process - another server
    (proposals) or a client (start_change / view notices).

    ``transmit`` is *not* a side-channel: it must route the message
    through the substrate's unified :class:`~repro.links.LinkCore`
    (``outbound()`` on admission, ``inbound()``/``inbound_batch()`` on
    arrival) exactly like data traffic, so tier messages see the same
    partition matrix, fault pipeline, receiver-side dedup, per-link FIFO
    clamp, and :class:`~repro.links.LinkStats` counters - which is what
    makes ``Deployment.link_totals()`` and the settle-timeout
    busiest-link diagnostics cover membership traffic too.  (The former
    ``post`` hook made no such demand; each substrate carried tier
    traffic its own way.)

    A link whose attach needs no awaiting (the asyncio hub, the
    simulator) may additionally expose ``attach_sync`` with the same
    signature; the tier then grows its own capacity on demand inside
    synchronous entry points like :meth:`MembershipTier.plan_partition`.
    """

    async def attach(self, sid: ProcessId, handler: Callable[[ProcessId, Any], None]) -> None:
        ...  # pragma: no cover - protocol

    def transmit(self, src: ProcessId, dst: ProcessId, message: Any) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class PartitionPlan:
    """A computed partition: which server serves which group, and the
    transport components (clients plus their server) the deployment must
    cut before the tier announces the change."""

    groups: List[FrozenSet[ProcessId]]
    assignment: Dict[ProcessId, FrozenSet[ProcessId]]  # sid -> clients
    components: List[List[ProcessId]]


class MembershipTier:
    """A tier of membership servers over a :class:`TierLink`."""

    def __init__(
        self,
        link: TierLink,
        *,
        servers: int = 1,
        links: Optional[LinkCore] = None,
        counter_bound: Optional[int] = None,
        trace: Optional[GcsTrace] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if servers < 1:
            raise ValueError("a membership tier needs at least one server")
        self.link = link
        # When given, every view formation is recorded as an
        # MbrshpFormEvent at the forming server - the raw material of the
        # MBRSHP-SRV-MONO / MBRSHP-SRV-FORK trace rules.
        self._trace = trace
        self._clock = clock if clock is not None else (lambda: 0.0)
        # The substrate's unified link core.  When given, the tier cuts
        # and heals the transport itself (one API for every substrate)
        # instead of each deployment reimplementing the partition wiring.
        self.links = links
        self.servers: Dict[ProcessId, MembershipServer] = {}
        self._initial_servers = servers
        self._counter_bound = counter_bound
        # The durable half of the service: per-server snapshots plus the
        # tier-wide round/counter floors a correct recovery depends on.
        self.store = WatermarkStore()
        # Shared per-client cid watermarks: cids stay locally unique and
        # increasing even when clients move between servers.
        self._cid_registry: Dict[ProcessId, StartChangeId] = {}
        self._home: Dict[ProcessId, ProcessId] = {}
        self._known: Set[ProcessId] = set()
        self._registered: Set[ProcessId] = set()
        # Clients cut off by a partition (as opposed to explicitly removed):
        # a heal brings exactly these back.
        self._detached: Set[ProcessId] = set()
        self._crashed: Set[ProcessId] = set()
        self.views_formed: List[View] = []
        self._seen_views: Set[View] = set()
        self.started = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _make_server(self) -> MembershipServer:
        sid = server_id(str(len(self.servers)))
        server = MembershipServer(
            sid,
            send=self._sender(sid),
            cid_registry=self._cid_registry,
            initial_counter=self.watermark(),
            counter_bound=self._counter_bound,
        )
        server.on_view_formed = lambda view, sid=sid: self._on_formed(sid, view)
        self.servers[sid] = server
        return server

    def _on_formed(self, sid: ProcessId, view: View) -> None:
        """A server's round completed: the tier's durability point.

        Runs at *every* co-forming server (so even a client-less server's
        watermarks are persisted), records the view once, and emits the
        formation trace event the server fault-domain rules feed on.
        """
        server = self.servers[sid]
        self.store.persist(server.snapshot())
        if view not in self._seen_views:
            self._seen_views.add(view)
            self.views_formed.append(view)
        if self._trace is not None:
            self._trace.append(MbrshpFormEvent(self._clock(), sid, view))

    async def _add_server(self) -> MembershipServer:
        server = self._make_server()
        await self.link.attach(server.sid, server.on_message)
        return server

    async def ensure_capacity(self, count: int) -> None:
        """Create servers (with transport endpoints) up to ``count``."""
        while len(self.servers) < count:
            await self._add_server()

    def _grow_sync(self, count: int) -> bool:
        """Grow to ``count`` servers without awaiting, if the link allows.

        Returns False when it cannot (the link has no ``attach_sync`` -
        e.g. real sockets); callers then fall back to requiring an
        explicit prior :meth:`ensure_capacity`.
        """
        attach_sync = getattr(self.link, "attach_sync", None)
        if attach_sync is None:
            return False
        while len(self.servers) < count:
            server = self._make_server()
            attach_sync(server.sid, server.on_message)
        return True

    def watermark(self) -> int:
        """The highest view counter any server of the tier has issued.

        Includes the durable store's floor, so the watermark survives
        every server of the tier crashing at once."""
        return max(
            self.store.counter_floor(),
            *(s.max_counter for s in self.servers.values()),
        ) if self.servers else self.store.counter_floor()

    def alive_servers(self) -> List[ProcessId]:
        """The non-crashed server ids, sorted."""
        return sorted(sid for sid, s in self.servers.items() if not s.crashed)

    def crashed_servers(self) -> List[ProcessId]:
        return sorted(sid for sid, s in self.servers.items() if s.crashed)

    def _sender(self, sid: ProcessId) -> Callable[[ProcessId, Any], None]:
        def send(dst: ProcessId, message: Any) -> None:
            server = self.servers.get(sid)
            if server is not None and server.crashed:
                return  # a dead server says nothing
            if server is not None:
                self.store.observe(server.round, server.max_counter)
            self.link.transmit(sid, dst, message)

        return send

    def _default_home(self, pid: ProcessId) -> ProcessId:
        del pid  # assignment is load-based, not identity-based
        return min(
            self.alive_servers(),
            key=lambda sid: (len(self.servers[sid].local_clients), sid),
        )

    # ------------------------------------------------------------------
    # client registry
    # ------------------------------------------------------------------

    def add_client(self, pid: ProcessId) -> None:
        """Introduce a client.  It joins views only once ``start`` or
        :meth:`set_members` actually registers it."""
        self._known.add(pid)

    def _live_home(self, pid: ProcessId) -> ProcessId:
        """The client's home server, re-picked if it crashed or is unset."""
        home = self._home.get(pid)
        if home is None or self.servers[home].crashed:
            home = self._default_home(pid)
        return home

    def _register(self, pid: ProcessId, *, trigger: bool = True) -> None:
        home = self._live_home(pid)
        self._home[pid] = home
        self._registered.add(pid)
        self._detached.discard(pid)
        self.servers[home].update_clients(add=(pid,), trigger=trigger)

    def active_members(self) -> FrozenSet[ProcessId]:
        return frozenset(self._registered - self._crashed)

    async def start(self) -> None:
        """Create the initial servers, spread clients, run the first round."""
        await self.ensure_capacity(self._initial_servers)
        self._start_registered()

    def start_sync(self) -> None:
        """Synchronous :meth:`start` for links with ``attach_sync``
        (the simulator's event-driven network, the asyncio hub)."""
        if not self._grow_sync(self._initial_servers):
            raise TypeError("link has no attach_sync; use the async start()")
        self._start_registered()

    def _start_registered(self) -> None:
        sids = sorted(self.servers)
        for index, pid in enumerate(sorted(self._known)):
            home = sids[index % len(sids)]
            self._home[pid] = home
            self._registered.add(pid)
            self.servers[home].update_clients(add=(pid,), trigger=False)
        self.started = True
        everyone = frozenset(self.servers)
        for sid in sids:
            self.servers[sid].activate(everyone)

    def set_members(self, members: Iterable[ProcessId]) -> bool:
        """Drive the registered client set to ``members`` (join + leave).

        Batched per server, so each affected server starts a single round.
        Returns whether anything changed (if not, no new view will form).
        """
        target = frozenset(members)
        unknown = target - self._known
        if unknown:
            raise ValueError(f"unknown clients {sorted(unknown)}; add_client them first")
        adds: Dict[ProcessId, List[ProcessId]] = {}
        removes: Dict[ProcessId, List[ProcessId]] = {}
        for pid in sorted(target - self._registered):
            home = self._live_home(pid)
            self._home[pid] = home
            self._registered.add(pid)
            self._detached.discard(pid)
            adds.setdefault(home, []).append(pid)
        for pid in sorted(self._registered - target):
            self._registered.discard(pid)
            self._detached.discard(pid)  # explicit leave, not a partition cut
            removes.setdefault(self._home[pid], []).append(pid)
        changed = False
        for sid in sorted(set(adds) | set(removes)):
            changed |= self.servers[sid].update_clients(
                add=adds.get(sid, ()), remove=removes.get(sid, ())
            )
        return changed

    def client_crashed(self, pid: ProcessId) -> None:
        self._crashed.add(pid)
        if pid in self._registered:
            self.servers[self._home[pid]].client_crashed(pid)

    def client_recovered(self, pid: ProcessId) -> None:
        self._crashed.discard(pid)
        if pid in self._registered:
            self.servers[self._home[pid]].client_recovered(pid)
        else:
            self._register(pid)

    # ------------------------------------------------------------------
    # the server fault domain
    # ------------------------------------------------------------------

    def crash_server(self, sid: Optional[ProcessId] = None) -> ProcessId:
        """Crash one membership server; its clients fail over.

        The server's final :class:`~repro.membership.state.ServerState`
        is persisted in the durable store, the server goes inert (and is
        cut from the fabric when a link core is attached), and its
        clients are rehomed to the surviving servers - floored by the
        tier watermark so no survivor can issue a counter the moved
        clients may already have seen.  Returns the crashed server id
        (default: the highest-numbered alive server).
        """
        alive = self.alive_servers()
        if sid is None:
            sid = alive[-1] if alive else None
        if sid not in self.servers:
            raise ValueError(f"unknown server {sid!r}")
        server = self.servers[sid]
        if server.crashed:
            raise ValueError(f"server {sid} is already crashed")
        if len(alive) < 2:
            raise ValueError("the last alive server cannot crash")
        self.store.persist(server.crash())
        if self.links is not None:
            self.links.restrict(sid, [])
        survivors = frozenset(self.alive_servers())
        moved = sorted(server.local_clients)
        crashed_clients = set(server._crashed_clients)
        server.local_clients = set()
        server._crashed_clients = set()
        floor = self.watermark()
        targets = sorted(survivors)
        loads = {t: len(self.servers[t].local_clients) for t in targets}
        adds: Dict[ProcessId, List[ProcessId]] = {}
        for pid in moved:
            home = min(targets, key=lambda t: (loads[t], t))
            loads[home] += 1
            self._home[pid] = home
            adds.setdefault(home, []).append(pid)
        for tsid in targets:
            inheritor = self.servers[tsid]
            if adds.get(tsid):
                # Inheriting clients from the dead server: never issue a
                # counter below what they may have seen.
                inheritor.max_counter = max(inheritor.max_counter, floor)
            inheritor.update_clients(add=adds.get(tsid, ()), trigger=False)
            for pid in adds.get(tsid, ()):
                if pid in crashed_clients or pid in self._crashed:
                    inheritor._crashed_clients.add(pid)
        for tsid in targets:
            survivor = self.servers[tsid]
            before = survivor.reachable
            survivor.set_reachable(survivors)
            if before == survivors and adds.get(tsid):
                # Reachability did not change (the dead server was already
                # cut off): the inherited clients still need a round.
                survivor.begin_round(survivor.round + 1)
        return sid

    def recover_server(self, sid: ProcessId) -> None:
        """Recover a crashed server from the durable store.

        The server restores its last persisted snapshot floored by the
        store's round and counter watermarks, so the first round it
        starts exceeds every pre-crash round - the peers *adopt* it (a
        rejoin) instead of racing a forked server with forgotten state.
        Its former clients stay where they failed over to.
        """
        server = self.servers.get(sid)
        if server is None:
            raise ValueError(f"unknown server {sid!r}")
        if not server.crashed:
            raise ValueError(f"server {sid} is not crashed")
        server.restore(
            self.store.load(sid),
            round_floor=self.store.round_floor(),
            counter_floor=self.store.counter_floor(),
            clients=(),
        )
        if self.links is not None:
            self.links.restrict(sid, None)
        alive = frozenset(self.alive_servers())
        for tsid in sorted(alive):
            self.servers[tsid].set_reachable(alive)

    def clients_of(self, sids: Iterable[ProcessId]) -> FrozenSet[ProcessId]:
        """The active clients homed to the given servers."""
        group = frozenset(sids)
        return frozenset(
            pid
            for pid in self._registered
            if self._home.get(pid) in group and pid not in self._crashed
        )

    def partition_servers(
        self, groups: Iterable[Iterable[ProcessId]]
    ) -> List[FrozenSet[ProcessId]]:
        """Split the *server tier* into components.

        Clients follow their home server: each component is one server
        group plus the clients homed to it, and each forms its own view.
        Alive servers in no listed group become singleton components;
        :meth:`heal` reunites everything.  Returns the effective server
        groups (listed plus singletons), in order.
        """
        alive = set(self.alive_servers())
        group_sets = [frozenset(g) for g in groups if g]
        seen: Set[ProcessId] = set()
        for group in group_sets:
            unknown = group - alive
            if unknown:
                raise ValueError(f"not alive servers: {sorted(unknown)}")
            if group & seen:
                raise ValueError("overlapping server groups")
            seen |= group
        group_sets.extend(frozenset({sid}) for sid in sorted(alive - seen))
        components: List[List[ProcessId]] = []
        for group in group_sets:
            members = sorted(group) + sorted(
                pid for pid in self._registered if self._home.get(pid) in group
            )
            components.append(members)
        components.extend([sid] for sid in self.crashed_servers())
        if self.links is not None:
            self.links.partition(components)
        for group in group_sets:
            for sid in sorted(group):
                self.servers[sid].set_reachable(group)
        return group_sets

    # ------------------------------------------------------------------
    # topology (the deployment's failure-detector input)
    # ------------------------------------------------------------------

    def plan_partition(self, groups: Iterable[Iterable[ProcessId]]) -> PartitionPlan:
        """Assign one server per group; compute the transport components.

        When the tier is short of servers it grows itself, provided the
        link supports synchronous attachment (``attach_sync``); over
        links that must await socket setup (TCP), call
        :meth:`ensure_capacity` for ``len(groups)`` first.  Clients in
        no group are cut off entirely (singleton components).
        """
        group_sets = [frozenset(g) for g in groups]
        if len(self.alive_servers()) < len(group_sets):
            self._grow_sync(len(group_sets) + len(self.crashed_servers()))
        sids = self.alive_servers()
        if len(sids) < len(group_sets):
            raise ValueError("not enough servers; call ensure_capacity first")
        assignment = {sids[i]: group_sets[i] for i in range(len(group_sets))}
        components: List[List[ProcessId]] = [
            sorted(group) + [sids[i]] for i, group in enumerate(group_sets)
        ]
        components.extend([sid] for sid in sids[len(group_sets):])
        components.extend([sid] for sid in self.crashed_servers())
        listed: Set[ProcessId] = set().union(*group_sets) if group_sets else set()
        components.extend([pid] for pid in sorted(self._registered - listed))
        return PartitionPlan(group_sets, assignment, components)

    def apply_partition(self, plan: PartitionPlan) -> None:
        """Cut the transport and announce a planned partition.

        With a :class:`~repro.links.LinkCore` attached, the tier splits
        the fabric along ``plan.components`` itself before moving any
        client - one partition surface for every substrate.  (A
        deployment without a link core must have cut its transport
        already.)  Every notice a server sends from here on stays within
        its own component.
        """
        if self.links is not None:
            self.links.partition(plan.components)
        snapshot = self.watermark()
        listed: Set[ProcessId] = set().union(*plan.groups) if plan.groups else set()
        adds: Dict[ProcessId, List[ProcessId]] = {}
        removes: Dict[ProcessId, List[ProcessId]] = {}
        for sid, group in plan.assignment.items():
            for pid in sorted(group):
                old = self._home.get(pid)
                if old == sid and pid in self._registered:
                    continue
                if pid in self._registered and old is not None and old != sid:
                    removes.setdefault(old, []).append(pid)
                self._home[pid] = sid
                self._registered.add(pid)
                adds.setdefault(sid, []).append(pid)
        for pid in sorted(self._registered - listed):
            # Cut off from every server: it keeps its current view and
            # hears nothing until the next heal or reconfiguration.
            self._registered.discard(pid)
            self._detached.add(pid)
            removes.setdefault(self._home[pid], []).append(pid)
        for sid in sorted(self.servers):
            server = self.servers[sid]
            if adds.get(sid):
                # A server inheriting clients from elsewhere must issue
                # counters above anything those clients may have seen.
                server.max_counter = max(server.max_counter, snapshot)
            changed = server.update_clients(
                add=adds.get(sid, ()), remove=removes.get(sid, ()), trigger=False
            )
            for pid in adds.get(sid, ()):
                if pid in self._crashed:
                    # Moving a crashed client must not resurrect it.
                    server._crashed_clients.add(pid)
            component = frozenset({sid})
            if not server.active:
                server.activate(component)
            else:
                before = server.reachable
                server.set_reachable(component)
                if before == component and changed:
                    server.begin_round(server.round + 1)

    def heal(self) -> None:
        """Reunite the tier: all servers reachable, cut-off clients back.

        With a :class:`~repro.links.LinkCore` attached, the transport
        fabric is healed here too (all components merged, all
        restrictions lifted)."""
        if self.links is not None:
            self.links.heal()
            for sid in self.crashed_servers():
                # Healing the fabric must not resurrect dead servers.
                self.links.restrict(sid, [])
        everyone = frozenset(self.alive_servers())
        adds: Dict[ProcessId, List[ProcessId]] = {}
        for pid in sorted(self._detached - self._crashed):
            home = self._live_home(pid)
            self._home[pid] = home
            self._registered.add(pid)
            adds.setdefault(home, []).append(pid)
        self._detached -= self._registered
        for sid in sorted(everyone):
            server = self.servers[sid]
            changed = server.update_clients(add=adds.get(sid, ()), trigger=False)
            if not server.active:
                server.activate(everyone)
            else:
                before = server.reachable
                server.set_reachable(everyone)
                if before == everyone and changed:
                    server.begin_round(server.round + 1)

    def __repr__(self) -> str:
        return (
            f"<MembershipTier servers={sorted(self.servers)} "
            f"clients={sorted(self._registered)} views={len(self.views_formed)}>"
        )
