"""A dedicated membership server (the client-server architecture of [27]).

Each server manages a set of *local clients*.  Servers learn about each
other's clients through proposals, agree on views in (usually) a single
proposal round, and notify their clients through ``start_change`` and
``view`` notices - implementing the MBRSHP specification of Figure 2 at
every client.

Protocol sketch.  Rounds are identified by a monotone *round number*
shared by adoption (a server that sees a higher round joins it):

1. A trigger fires - the failure detector reports a changed reachable
   set, or a local client joins/leaves/crashes/recovers - and the server
   starts round ``r+1``: it picks fresh start_change identifiers for its
   local clients, announces ``start_change(cid, estimate)`` to each, and
   sends every reachable server a :class:`ServerProposal` carrying its
   round, configuration, clients, cids, estimate and view-counter
   watermark.
2. A server receiving a proposal with a higher round adopts that round
   (announcing fresh start_changes and re-proposing).
3. A view forms from a *complete, consistent* round: proposals from all
   servers of the configuration, with this round and configuration, all
   announcing the same estimate, which equals the union of their client
   sets.  If the round is complete but estimates disagree with the union
   (stale client registries), the server bumps to the next round with the
   correct union - everyone else follows, and since by then all registries
   agree, that next round forms the view.  The common case is one round;
   the cold-registry case is two.

Formation is deterministic from the proposal set (counter = max watermark
+ 1, origin = least server of the configuration, startId = union of the
proposals' cid maps), so all servers of a stable configuration deliver
the *same* view triple - which the GCS algorithm's agreement relies on.
Per-client spec compliance (Figure 2) is checked in the tests by
replaying each client's notice stream through ``MbrshpSpec``.

The paper assumes the membership service itself never crashes and never
forgets the per-client cid and view-counter watermarks (Section 8).
Here that assumption is *mechanised* rather than presumed: a server's
protocol state is an explicit, serialisable :class:`ServerState`
(:meth:`MembershipServer.snapshot` / :meth:`MembershipServer.restore`),
and the watermarks live durably in the tier's
:class:`~repro.membership.state.WatermarkStore`.  A crashed server
(:meth:`MembershipServer.crash`) goes inert; on recovery it restores its
snapshot floored by the store's round and counter watermarks, so its
first round exceeds every pre-crash round - peers adopt it (a rejoin,
not a fork) - and every counter it issues preserves Local Monotonicity.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro._collections import frozendict
from repro.membership.protocol import ServerProposal, StartChangeNotice, ViewNotice
from repro.membership.state import ServerState, compose_counter, decompose_counter
from repro.types import ProcessId, StartChangeId, View, ViewId

SendFn = Callable[[ProcessId, Any], None]


class MembershipServer:
    """One membership server; communicates via an injected ``send``."""

    def __init__(
        self,
        sid: ProcessId,
        send: SendFn,
        clients: Iterable[ProcessId] = (),
        *,
        cid_registry: Optional[Dict[ProcessId, StartChangeId]] = None,
        initial_counter: int = 0,
        counter_bound: Optional[int] = None,
    ) -> None:
        if counter_bound is not None and counter_bound < 2:
            raise ValueError("counter_bound must be at least 2")
        self.sid = sid
        self._send = send
        self.local_clients: Set[ProcessId] = set(clients)
        self.reachable: FrozenSet[ProcessId] = frozenset({sid})
        self.round = 0
        # Bounded-counter mode: the externally visible ``max_counter``
        # stays the monotone epoch-composed value; only snapshots carry
        # the (epoch, local) decomposition.  See repro.membership.state.
        self.counter_bound = counter_bound
        # ``initial_counter`` seeds the view-counter watermark: a server
        # created after others have already formed views (e.g. to serve a
        # new partition component) must never issue a counter a client
        # could have seen before, or Local Monotonicity breaks.
        self.max_counter = initial_counter
        # Per-client watermarks; never reset (the service keeps its state).
        # A shared ``cid_registry`` lets several servers of one logical
        # service hand out locally-unique cids even when a client is moved
        # between servers across reconfigurations.
        self._next_cid: Dict[ProcessId, StartChangeId] = (
            cid_registry if cid_registry is not None else {}
        )
        self._announced_estimate: Optional[FrozenSet[ProcessId]] = None
        self._crashed_clients: Set[ProcessId] = set()
        # Figure 2 mode discipline, per local client.
        self._mode: Dict[ProcessId, str] = {}
        # Latest proposal per server (highest round wins).
        self._proposals: Dict[ProcessId, ServerProposal] = {}
        self._formed_round = -1
        self.views_delivered = 0
        self.rounds_started = 0
        # Until activated (failure-detector bootstrap), configuration
        # triggers accumulate silently instead of starting rounds, so
        # initial client registration costs a single round.
        self.active = False
        # A crashed server is inert: it neither reacts to triggers nor
        # handles messages until the tier restores it.
        self.crashed = False
        # Fired the moment a view forms (before any notice is sent):
        # the tier's durability point, and the anchor of the server
        # fault-domain trace rules (MBRSHP-SRV-MONO / -FORK).
        self.on_view_formed: Optional[Callable[[View], None]] = None

    # ------------------------------------------------------------------
    # the fault domain: snapshot / crash / restore
    # ------------------------------------------------------------------

    def bounded_counter(self) -> Tuple[int, int]:
        """The ``(epoch, local)`` decomposition of the counter watermark."""
        return decompose_counter(self.max_counter, self.counter_bound)

    def snapshot(self) -> ServerState:
        """The server's protocol state as a frozen serialisable value."""
        epoch, local = self.bounded_counter()
        return ServerState(
            sid=self.sid,
            local_clients=tuple(sorted(self.local_clients)),
            crashed_clients=tuple(sorted(self._crashed_clients)),
            round=self.round,
            epoch=epoch,
            counter=local,
            counter_bound=self.counter_bound,
            cids=tuple(
                (pid, self._next_cid[pid])
                for pid in sorted(self.local_clients)
                if pid in self._next_cid
            ),
            modes=tuple(sorted(self._mode.items())),
        )

    def crash(self) -> ServerState:
        """Crash the server; returns its final snapshot.

        The tier persists the snapshot in its durable
        :class:`~repro.membership.state.WatermarkStore` - everything
        else (proposals in flight, announced estimates) is volatile and
        genuinely lost.
        """
        state = self.snapshot()
        self.crashed = True
        self.active = False
        self._proposals.clear()
        self._announced_estimate = None
        return state

    def restore(
        self,
        state: Optional[ServerState],
        *,
        round_floor: int = 0,
        counter_floor: int = 0,
        clients: Optional[Iterable[ProcessId]] = None,
    ) -> None:
        """Recover from a durable snapshot, floored by the tier watermarks.

        ``round_floor``/``counter_floor`` come from the tier's store: the
        restored round must reach the highest round the tier ever
        observed (so the server's first new round is adopted by peers -
        a rejoin, not a fork) and the counter watermark must reach the
        highest counter any client may have seen (Local Monotonicity).
        ``clients`` overrides the snapshot's client set - the tier
        rehomes clients to surviving servers at crash time, so a
        recovering server typically comes back empty.
        """
        if state is not None:
            restored_clients = set(state.local_clients)
            self._crashed_clients = set(state.crashed_clients) & restored_clients
            self.round = state.round
            self.max_counter = compose_counter(
                state.epoch, state.counter, state.counter_bound
            )
            for pid, cid in state.cids:
                if self._next_cid.get(pid, 0) < cid:
                    self._next_cid[pid] = cid
            self._mode = dict(state.modes)
        else:
            restored_clients = set()
            self._crashed_clients = set()
            self._mode = {}
        self.local_clients = restored_clients
        if clients is not None:
            self.local_clients = set(clients)
            self._crashed_clients &= self.local_clients
        self.round = max(self.round, round_floor)
        self.max_counter = max(self.max_counter, counter_floor)
        self.reachable = frozenset({self.sid})
        self._proposals = {}
        self._announced_estimate = None
        # Never re-form a pre-crash round from stale adopted proposals.
        self._formed_round = self.round
        self.crashed = False
        self.active = False

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------

    def activate(self, servers: Iterable[ProcessId]) -> None:
        """Bootstrap: first reachability report; starts the first round."""
        if self.crashed:
            return
        self.active = True
        self.reachable = frozenset(servers) | {self.sid}
        self.begin_round(self.round + 1)

    def set_reachable(self, servers: Iterable[ProcessId]) -> None:
        """Failure-detector input: the servers currently reachable."""
        if not self.active:
            self.activate(servers)
            return
        reachable = frozenset(servers) | {self.sid}
        if reachable == self.reachable:
            return
        self.reachable = reachable
        self.begin_round(self.round + 1)

    def _trigger(self) -> None:
        if self.active:
            self.begin_round(self.round + 1)

    def add_client(self, client: ProcessId) -> None:
        self.update_clients(add=(client,))

    def remove_client(self, client: ProcessId) -> None:
        self.update_clients(remove=(client,))

    def update_clients(
        self,
        add: Iterable[ProcessId] = (),
        remove: Iterable[ProcessId] = (),
        *,
        trigger: bool = True,
    ) -> bool:
        """Apply a batch of registry changes with at most one round trigger.

        Returns whether the registry changed.  ``trigger=False`` defers
        the round - used when the caller will change the topology next and
        wants a single round covering both.
        """
        changed = False
        for client in remove:
            if client in self.local_clients:
                self.local_clients.discard(client)
                self._crashed_clients.discard(client)
                changed = True
        for client in add:
            if client not in self.local_clients:
                self.local_clients.add(client)
                changed = True
        if changed and trigger:
            self._trigger()
        return changed

    def client_crashed(self, client: ProcessId) -> None:
        if client in self.local_clients and client not in self._crashed_clients:
            self._crashed_clients.add(client)
            self._trigger()

    def client_recovered(self, client: ProcessId) -> None:
        if client in self._crashed_clients:
            self._crashed_clients.discard(client)
            self._trigger()

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------

    def active_clients(self) -> FrozenSet[ProcessId]:
        return frozenset(self.local_clients - self._crashed_clients)

    def _registry_estimate(self) -> FrozenSet[ProcessId]:
        """Union of client sets over current-config proposals + own clients."""
        estimate = set(self.active_clients())
        for sid, proposal in self._proposals.items():
            if sid != self.sid and proposal.config == self.reachable:
                estimate |= proposal.local_clients
        return frozenset(estimate)

    def begin_round(self, round_no: int, estimate: Optional[FrozenSet[ProcessId]] = None) -> None:
        """Start (or adopt) membership round ``round_no``."""
        if self.crashed:
            return
        if round_no <= self.round and self._proposals.get(self.sid) is not None:
            return
        self.round = round_no
        self.rounds_started += 1
        if estimate is None:
            estimate = self._registry_estimate()
        self._announced_estimate = estimate
        cids: Dict[ProcessId, StartChangeId] = {}
        for client in sorted(self.active_clients()):
            if client not in estimate:
                continue
            cid = self._next_cid.get(client, 0) + 1
            self._next_cid[client] = cid
            cids[client] = cid
            self._mode[client] = "change_started"
            self._send(client, StartChangeNotice(client, cid, estimate))
        proposal = ServerProposal(
            server=self.sid,
            attempt=round_no,
            config=self.reachable,
            local_clients=self.active_clients(),
            cids=frozendict(cids),
            estimate=estimate,
            max_counter=self.max_counter,
        )
        self._proposals[self.sid] = proposal
        for sid in self.reachable:
            if sid != self.sid:
                self._send(sid, proposal)
        self._maybe_form_view()

    def on_message(self, src: ProcessId, message: Any) -> None:
        if self.crashed:
            return  # a dead server hears nothing
        if isinstance(message, ServerProposal):
            self._on_proposal(message)

    def _on_proposal(self, proposal: ServerProposal) -> None:
        if proposal.server not in self.reachable:
            return  # stale sender; our FD will tell us if it comes back
        current = self._proposals.get(proposal.server)
        if current is not None and current.attempt >= proposal.attempt:
            return
        self._proposals[proposal.server] = proposal
        if proposal.attempt > self.round and proposal.config == self.reachable:
            # Adopt the higher round: fresh start_changes, re-propose.
            self.begin_round(proposal.attempt)
            return
        self._maybe_form_view()

    def _round_proposals(self) -> Optional[List[ServerProposal]]:
        """Proposals from every reachable server for the current round."""
        proposals = []
        for sid in self.reachable:
            proposal = self._proposals.get(sid)
            if (
                proposal is None
                or proposal.config != self.reachable
                or proposal.attempt != self.round
            ):
                return None
            proposals.append(proposal)
        return proposals

    def _maybe_form_view(self) -> None:
        if self.round <= self._formed_round:
            return
        proposals = self._round_proposals()
        if proposals is None:
            return
        members = frozenset().union(*(p.local_clients for p in proposals))
        if not members:
            return
        if members != self._announced_estimate:
            # Our announcement was stale (a peer brought clients we did not
            # know about, or lost some): bump to the next round with the
            # correct union.  Peers compute the same union and do the same,
            # so the next round is consistent and forms the view.
            self.begin_round(self.round + 1, estimate=members)
            return
        if any(p.estimate != members for p in proposals):
            # A peer announced a stale estimate; it will bump the round
            # itself (previous branch, at its site) - wait for its revision
            # rather than delivering a view it could never deliver.
            return
        start_ids: Dict[ProcessId, StartChangeId] = {}
        for proposal in proposals:
            start_ids.update(dict(proposal.cids))
        if set(start_ids) != set(members):
            return  # incomplete cid coverage; a revision is on its way
        counter = max(p.max_counter for p in proposals) + 1
        origin = min(self.reachable)
        view = View(ViewId(counter, origin), members, frozendict(start_ids))
        self.max_counter = counter
        self._formed_round = self.round
        if self.on_view_formed is not None:
            self.on_view_formed(view)
        for client in sorted(self.active_clients() & members):
            self._mode[client] = "normal"
            self._send(client, ViewNotice(client, view))
            self.views_delivered += 1

    def __repr__(self) -> str:
        return (
            f"<MembershipServer {self.sid} clients={sorted(self.local_clients)} "
            f"reachable={sorted(self.reachable)} round={self.round}>"
        )
