"""Explicit, serialisable membership-server state.

The paper's client-server architecture (Section 8) assumes the
membership service "never crashes and never forgets" its per-client cid
and view-counter watermarks.  This module is what makes that assumption
*explicit* instead of implicit, so it can then be relaxed: a
:class:`MembershipServer`'s mutable protocol state is captured in one
frozen :class:`ServerState` value (``snapshot()``) and re-applied on
recovery (``restore()``), while the watermarks every correct recovery
depends on live in a :class:`WatermarkStore` owned by the *tier* - the
durable half of the service that survives individual server crashes.

Counters may be **bounded** (``counter_bound``): the externally visible
view counter is then the epoch-composed value ``epoch * bound + local``,
so the server-local counter can wrap without the external counter ever
regressing - the convergence idea of "Practically-Self-Stabilizing
Virtual Synchrony" (PAPERS.md) applied to the one watermark Local
Monotonicity depends on.  A recovery that restored only the bounded
local counter would wedge (or fork) once the pre-crash epoch is lost;
composing it with the durably stored epoch converges instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.types import ProcessId, StartChangeId


def compose_counter(epoch: int, local: int, bound: Optional[int]) -> int:
    """The externally visible (monotone) counter for a bounded local one."""
    if bound is None:
        return local
    return epoch * bound + local


def decompose_counter(value: int, bound: Optional[int]) -> Tuple[int, int]:
    """Split an external counter into ``(epoch, local)`` under ``bound``."""
    if bound is None:
        return 0, value
    return divmod(value, bound)


@dataclass(frozen=True)
class ServerState:
    """One server's protocol state, as a frozen serialisable value.

    ``counter`` is the *bounded local* counter and ``epoch`` its wrap
    count; :attr:`max_counter` recomposes the external watermark.  With
    ``counter_bound`` unset the two coincide (``epoch == 0``).
    """

    sid: ProcessId
    local_clients: Tuple[ProcessId, ...]
    crashed_clients: Tuple[ProcessId, ...]
    round: int
    epoch: int
    counter: int
    counter_bound: Optional[int]
    cids: Tuple[Tuple[ProcessId, StartChangeId], ...]
    modes: Tuple[Tuple[ProcessId, str], ...]

    @property
    def max_counter(self) -> int:
        return compose_counter(self.epoch, self.counter, self.counter_bound)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sid": self.sid,
            "local_clients": list(self.local_clients),
            "crashed_clients": list(self.crashed_clients),
            "round": self.round,
            "epoch": self.epoch,
            "counter": self.counter,
            "counter_bound": self.counter_bound,
            "cids": [[pid, cid] for pid, cid in self.cids],
            "modes": [[pid, mode] for pid, mode in self.modes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServerState":
        return cls(
            sid=data["sid"],
            local_clients=tuple(data["local_clients"]),
            crashed_clients=tuple(data["crashed_clients"]),
            round=int(data["round"]),
            epoch=int(data.get("epoch", 0)),
            counter=int(data["counter"]),
            counter_bound=data.get("counter_bound"),
            cids=tuple((pid, cid) for pid, cid in data["cids"]),
            modes=tuple((pid, mode) for pid, mode in data["modes"]),
        )


class WatermarkStore:
    """The tier's durable memory: what must survive a server crash.

    Holds the last persisted :class:`ServerState` per server plus two
    tier-wide floors - the highest round and the highest external view
    counter ever *observed* on any server.  A recovering server restores
    its snapshot and is floored by both, so its first new round exceeds
    every pre-crash round (peers adopt it - a rejoin, not a fork) and
    every counter it issues exceeds every counter a client may have seen
    (Local Monotonicity survives the crash).
    """

    def __init__(self) -> None:
        self._states: Dict[ProcessId, ServerState] = {}
        self._round = 0
        self._counter = 0

    def observe(self, round_no: int, counter: int) -> None:
        """Cheap floor bump: called on every tier send."""
        if round_no > self._round:
            self._round = round_no
        if counter > self._counter:
            self._counter = counter

    def persist(self, state: ServerState) -> None:
        """Durably record a full server snapshot (and bump the floors)."""
        self._states[state.sid] = state
        self.observe(state.round, state.max_counter)

    def load(self, sid: ProcessId) -> Optional[ServerState]:
        return self._states.get(sid)

    def round_floor(self) -> int:
        return self._round

    def counter_floor(self) -> int:
        return self._counter

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round": self._round,
            "counter": self._counter,
            "states": {str(sid): s.to_dict() for sid, s in sorted(self._states.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WatermarkStore":
        store = cls()
        store._round = int(data.get("round", 0))
        store._counter = int(data.get("counter", 0))
        for state in data.get("states", {}).values():
            restored = ServerState.from_dict(state)
            store._states[restored.sid] = restored
        return store

    def __repr__(self) -> str:
        return (
            f"<WatermarkStore servers={sorted(self._states)} "
            f"round>={self._round} counter>={self._counter}>"
        )


__all__ = [
    "ServerState",
    "WatermarkStore",
    "compose_counter",
    "decompose_counter",
]
