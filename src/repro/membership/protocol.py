"""Wire protocol of the membership service (server-server, server-client).

The client-facing notices realise the MBRSHP interface of Figure 2;
the server-server :class:`ServerProposal` realises the one-round
agreement in the style of the paper's companion membership service [27]:
each server proposes its local clients, their fresh start_change
identifiers, and its view-counter watermark, for one *configuration* (the
set of servers it believes reachable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro._collections import frozendict
from repro.types import ProcessId, StartChangeId, View

# Servers are network processes too; by convention their identifiers are
# prefixed so they never collide with client identifiers.
SERVER_PREFIX = "srv:"


def server_id(name: str) -> ProcessId:
    return name if name.startswith(SERVER_PREFIX) else SERVER_PREFIX + name


@dataclass(frozen=True)
class StartChangeNotice:
    """MBRSHP.start_change_p(cid, set), addressed to ``client``."""

    client: ProcessId
    cid: StartChangeId
    members: FrozenSet[ProcessId]


@dataclass(frozen=True)
class ViewNotice:
    """MBRSHP.view_p(v), addressed to ``client``."""

    client: ProcessId
    view: View


@dataclass(frozen=True)
class ServerProposal:
    """One server's contribution to a membership round.

    ``config`` is the proposing server's reachable-server set; a view can
    only form from proposals that agree on the configuration.  ``cids``
    are the start_change identifiers the proposer handed to its local
    clients for this attempt; the union of all proposals' ``cids`` maps
    become the view's ``startId`` function - the paper's key idea carried
    through the membership substrate.
    """

    server: ProcessId
    attempt: int
    config: FrozenSet[ProcessId]
    local_clients: FrozenSet[ProcessId]
    cids: frozendict  # client -> StartChangeId
    estimate: FrozenSet[ProcessId]  # the member set announced to clients
    max_counter: int  # view-counter watermark
