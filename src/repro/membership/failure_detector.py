"""Failure detection for membership servers.

The paper's membership liveness is conditional on the failure detector
and network (Section 3.1); here the detector watches the simulated
network's topology and, after a configurable detection delay, reports
each server's reachable-server set.  The delay lets experiments model
slow failure detection; zero-delay detection gives the idealised runs
used in the liveness tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.membership.server import MembershipServer
from repro.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover - avoids the membership<->net cycle
    from repro.net.network import SimNetwork
    from repro.net.simclock import EventScheduler


class TopologyFailureDetector:
    """Feeds reachability changes of the server tier to each server."""

    def __init__(
        self,
        clock: "EventScheduler",
        network: "SimNetwork",
        detection_delay: float = 0.0,
    ) -> None:
        self.clock = clock
        self.network = network
        self.detection_delay = detection_delay
        self._servers: Dict[ProcessId, MembershipServer] = {}
        self._generation = 0
        network.on_topology_change(self._on_topology_change)

    def attach(self, server: MembershipServer) -> None:
        self._servers[server.sid] = server

    def server_ids(self) -> List[ProcessId]:
        return sorted(self._servers)

    def reachable_servers(self, sid: ProcessId) -> frozenset:
        reachable = self.network.reachable_from(sid)
        return frozenset(s for s in self._servers if s in reachable)

    def bootstrap(self) -> None:
        """Deliver the initial reachability report to every server."""
        for sid, server in self._servers.items():
            server.activate(self.reachable_servers(sid))

    def _on_topology_change(self) -> None:
        # Suspicions from superseded topologies must not fire: a newer
        # change invalidates older pending reports.
        self._generation += 1
        generation = self._generation

        def report() -> None:
            if generation != self._generation:
                return
            for sid, server in self._servers.items():
                server.set_reachable(self.reachable_servers(sid))

        if self.detection_delay <= 0:
            report()
        else:
            self.clock.schedule(self.detection_delay, report)
