"""A centralized membership oracle.

For controlled experiments (and as the degenerate single-server case of
the client-server architecture), ``OracleMembership`` plays the external
membership service with *configurable timing*: after a reconfiguration
trigger it issues ``start_change`` notices ``detection_delay`` later and
the agreed ``view`` after a further ``round_duration`` - the knob the
parallelism experiments (E1/E3) sweep to model membership rounds of
different lengths.

It maintains the Figure 2 discipline per client (fresh increasing cids, a
start_change before every view, startId read off the latest cids), and it
cancels a pending view delivery for a client whenever a newer
start_change supersedes it - which is how the service, like the paper's,
never delivers views it already knows to be out of date.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro._collections import frozendict
from repro.types import ProcessId, StartChangeId, View, ViewId

if TYPE_CHECKING:  # pragma: no cover - avoids the membership<->net cycle
    from repro.net.simclock import EventScheduler, ScheduledEvent

# Client-side hooks: (cid, members) -> None and (view) -> None.
StartChangeSink = Callable[[StartChangeId, FrozenSet[ProcessId]], None]
ViewSink = Callable[[View], None]


class OracleMembership:
    """Centralized MBRSHP implementation with scripted timing."""

    def __init__(
        self,
        clock: EventScheduler,
        *,
        detection_delay: float = 0.0,
        round_duration: float = 1.0,
    ) -> None:
        self.clock = clock
        self.detection_delay = detection_delay
        self.round_duration = round_duration
        self._start_change_sinks: Dict[ProcessId, StartChangeSink] = {}
        self._view_sinks: Dict[ProcessId, ViewSink] = {}
        self._cid = itertools.count(start=1)
        self._counter = itertools.count(start=1)
        self._last_cid: Dict[ProcessId, StartChangeId] = {}
        self._crashed: set = set()
        # Pending scheduled notifications per client, cancellable when a
        # newer reconfiguration supersedes them.
        self._pending: Dict[ProcessId, List[ScheduledEvent]] = {}
        self.views_formed: List[View] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_client(
        self,
        pid: ProcessId,
        on_start_change: StartChangeSink,
        on_view: ViewSink,
    ) -> None:
        self._start_change_sinks[pid] = on_start_change
        self._view_sinks[pid] = on_view

    def client_crashed(self, pid: ProcessId) -> None:
        self._crashed.add(pid)

    def client_recovered(self, pid: ProcessId) -> None:
        self._crashed.discard(pid)

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------

    def _cancel_pending(self, pid: ProcessId) -> None:
        for event in self._pending.pop(pid, []):
            event.cancel()

    def reconfigure(
        self,
        groups: Iterable[Iterable[ProcessId]],
        *,
        extra_changes: int = 0,
    ) -> List[View]:
        """Form one view per group; return them (delivery is scheduled).

        ``extra_changes`` inserts additional start_change notifications
        (membership "changing its mind") before the final one, spaced
        evenly across the round - used by tests of repeated changes.
        """
        views: List[View] = []
        for group in groups:
            members = frozenset(group) - self._crashed
            if not members:
                continue
            views.append(self._reconfigure_group(members, extra_changes))
        return views

    def _reconfigure_group(self, members: FrozenSet[ProcessId], extra_changes: int) -> View:
        detect = self.detection_delay
        round_end = detect + self.round_duration
        spacing = self.round_duration / (extra_changes + 1) if extra_changes else 0.0

        for pid in members:
            self._cancel_pending(pid)

        final_cids: Dict[ProcessId, StartChangeId] = {}
        for round_index in range(extra_changes + 1):
            at = detect + round_index * spacing
            for pid in sorted(members):
                cid = next(self._cid)
                final_cids[pid] = cid
                self._schedule_start_change(pid, at, cid, members)
        view = View(ViewId(next(self._counter)), members, frozendict(final_cids))
        self.views_formed.append(view)
        for pid in sorted(members):
            self._schedule_view(pid, round_end, view)
        return view

    def _schedule_start_change(
        self, pid: ProcessId, delay: float, cid: StartChangeId, members: FrozenSet[ProcessId]
    ) -> None:
        def fire() -> None:
            if pid in self._crashed:
                return
            self._last_cid[pid] = cid
            sink = self._start_change_sinks.get(pid)
            if sink is not None:
                sink(cid, members)

        event = self.clock.schedule(delay, fire)
        self._pending.setdefault(pid, []).append(event)

    def _schedule_view(self, pid: ProcessId, delay: float, view: View) -> None:
        def fire() -> None:
            if pid in self._crashed:
                return
            sink = self._view_sinks.get(pid)
            if sink is not None:
                sink(view)

        event = self.clock.schedule(delay, fire)
        self._pending.setdefault(pid, []).append(event)
