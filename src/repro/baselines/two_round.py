"""Baseline: virtual synchrony with identifier pre-agreement (two rounds).

``TwoRoundVsEndpoint`` models the prior-art algorithms the paper
contrasts itself with (e.g. [7, 22]): after the membership view arrives,
the processes must first *agree on a common identifier* for the
synchronization exchange - one additional communication round in which a
coordinator (the least member of the new view) broadcasts the identifier
- and only then exchange synchronization messages tagged with it.

Reconfiguration therefore costs the membership round **plus two** message
exchanges, versus plus-one for the sequential baseline and plus-zero
(overlapped) for the paper's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.baselines.base import SequentialVsEndpoint
from repro.core.messages import WireMessage
from repro.spec.client import BlockStatus
from repro.types import ProcessId, View, ViewId


@dataclass(frozen=True)
class ProposeIdMsg(WireMessage):
    """Round one: the coordinator proposes the agreed identifier."""

    view_id: ViewId
    gid: Hashable


class TwoRoundVsEndpoint(SequentialVsEndpoint):
    """Identifier pre-agreement, then the synchronization round."""

    def _state(self) -> None:
        # agreed_gid[view_id]: the identifier the coordinator announced.
        self.agreed_gid: Dict[ViewId, Hashable] = {}
        self.proposed: set = set()  # view ids this coordinator announced

    # ------------------------------------------------------------------
    # tag selection: only known once the coordinator's proposal arrives
    # ------------------------------------------------------------------

    def sync_tag(self, view: View) -> Optional[Hashable]:
        return self.agreed_gid.get(view.vid)

    def is_coordinator(self, view: View) -> bool:
        return self.pid == min(view.members)

    # ------------------------------------------------------------------
    # OUTPUT co_rfifo.send - the identifier proposal (round one)
    # ------------------------------------------------------------------

    def _propose_ready(self) -> Optional[View]:
        view = self.pending_view()
        if (
            view is not None
            and self.is_coordinator(view)
            and view.vid not in self.proposed
            and view.members <= self.reliable_set
        ):
            return view
        return None

    def _pre_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: WireMessage) -> bool:
        if isinstance(m, ProposeIdMsg):
            view = self._propose_ready()
            return (
                view is not None
                and m.view_id == view.vid
                and frozenset(targets) == view.members - {self.pid}
            )
        return True

    def _eff_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: WireMessage) -> None:
        if isinstance(m, ProposeIdMsg):
            self.proposed.add(m.view_id)
            self.agreed_gid[m.view_id] = m.gid

    def _candidates_co_rfifo_send(self) -> Iterable[Tuple[ProcessId, FrozenSet[ProcessId], WireMessage]]:
        view = self._propose_ready()
        if view is not None:
            gid = ("gid", view.vid, self.pid)
            yield (self.pid, frozenset(view.members - {self.pid}), ProposeIdMsg(view.vid, gid))
        yield from super()._candidates_co_rfifo_send()

    # ------------------------------------------------------------------
    # INPUT co_rfifo.deliver - learn the agreed identifier
    # ------------------------------------------------------------------

    def _eff_co_rfifo_deliver(self, q: ProcessId, p: ProcessId, m: WireMessage) -> None:
        if isinstance(m, ProposeIdMsg):
            self.agreed_gid.setdefault(m.view_id, m.gid)
