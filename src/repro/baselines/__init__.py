"""Baseline virtual synchrony algorithms for comparison (Section 1, 9).

The paper's headline claim is a virtual synchrony algorithm that runs in
one message round *in parallel* with the membership round, without
pre-agreement on a globally unique identifier.  These baselines provide
the same service semantics with the timings of prior approaches:

* :class:`SequentialVsEndpoint` - sync round *after* the membership view
  (the view identifier serves as the agreed tag): membership + 1 round.
* :class:`TwoRoundVsEndpoint` - identifier pre-agreement via a
  coordinator, then the sync round (the [7, 22] shape the paper cites):
  membership + 2 rounds.

Both satisfy the same safety properties (the tests check them with the
same property battery), which makes the latency and message-count
comparisons in the benchmarks apples-to-apples.
"""

from repro.baselines.base import BaselineSyncMsg, SequentialVsEndpoint
from repro.baselines.two_round import ProposeIdMsg, TwoRoundVsEndpoint

__all__ = [
    "BaselineSyncMsg",
    "ProposeIdMsg",
    "SequentialVsEndpoint",
    "TwoRoundVsEndpoint",
]
