"""Baseline: sequential virtual synchrony (no parallel round).

``SequentialVsEndpoint`` provides the same service semantics as the
paper's GCS (within-view FIFO, Virtual Synchrony, Transitional Sets, Self
Delivery) but with the *traditional* timing the paper improves upon: the
synchronization round starts only **after** the membership view has been
delivered, using the view identifier as the globally agreed tag for
synchronization messages.  The paper's contribution is precisely avoiding
this serialisation, so this endpoint is the ablation baseline for the
parallelism experiments (E1/E3).

It reuses the within-view layer (Figure 9) unchanged and the simple
forwarding strategy of Section 5.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro._collections import frozendict
from repro.core.forwarding import ForwardingStrategy, SimpleStrategy
from repro.core.messages import SyncMsg, WireMessage
from repro.core.wv_endpoint import WvRfifoEndpoint
from repro.ioa import ActionKind
from repro.spec.client import BlockStatus
from repro.types import Cut, ProcessId, StartChange, StartChangeId, View


@dataclass(frozen=True)
class BaselineSyncMsg(WireMessage):
    """A synchronization message tagged with a globally agreed identifier."""

    tag: Hashable
    view: View
    cut: Cut


class SequentialVsEndpoint(WvRfifoEndpoint):
    """VS+TS+SD with the sync round serialised after the membership round."""

    SIGNATURE = {
        "mbrshp.start_change": ActionKind.INPUT,  # (p, cid, set)
        "block_ok": ActionKind.INPUT,  # (p,)
        "block": ActionKind.OUTPUT,  # (p,)
        "view": ActionKind.OUTPUT,  # (p, v, T)
    }

    PARAM_PROJECTIONS = {
        "view": lambda p, v, T: (p, v),
    }

    def __init__(
        self,
        pid: ProcessId,
        *,
        forwarding: Optional[ForwardingStrategy] = None,
        gc_views: bool = False,
        **kwargs: Any,
    ) -> None:
        self.forwarding = forwarding or SimpleStrategy()
        self.gc_views = gc_views
        super().__init__(pid, **kwargs)

    def _state(self) -> None:
        self.start_change: Optional[StartChange] = None
        # sync_store[q][tag] -> BaselineSyncMsg
        self.sync_store: Dict[ProcessId, Dict[Hashable, BaselineSyncMsg]] = {}
        self.block_status = BlockStatus.UNBLOCKED
        self.forwarded_set: set = set()

    # ------------------------------------------------------------------
    # tag selection - the serialisation point this baseline embodies
    # ------------------------------------------------------------------

    def pending_view(self) -> Optional[View]:
        if self.mbrshp_view.vid > self.current_view.vid:
            return self.mbrshp_view
        return None

    def sync_tag(self, view: View) -> Optional[Hashable]:
        """The agreed identifier for syncs towards ``view`` (None: unknown).

        The sequential baseline uses the view identifier itself - already
        globally unique and agreed, but only available once the membership
        round has completed.
        """
        return ("vid", view.vid)

    # ------------------------------------------------------------------
    # sync-message bookkeeping (shared with the two-round child)
    # ------------------------------------------------------------------

    def stored_sync(self, q: ProcessId, tag: Hashable) -> Optional[BaselineSyncMsg]:
        return self.sync_store.get(q, {}).get(tag)

    def own_sync_msg(self) -> Optional[BaselineSyncMsg]:
        view = self.pending_view()
        if view is None:
            return None
        tag = self.sync_tag(view)
        if tag is None:
            return None
        return self.stored_sync(self.pid, tag)

    def latest_sync_msgs_in_view(self, view: View) -> List[Tuple[ProcessId, BaselineSyncMsg]]:
        result = []
        for q, by_tag in self.sync_store.items():
            in_view = [m for m in by_tag.values() if m.view == view]
            if in_view:
                result.append((q, in_view[-1]))
        return result

    def holds_message(self, origin: ProcessId, view: View, index: int) -> bool:
        log = self.peek_buffer(origin, view)
        return log is not None and log.has(index)

    def local_cut(self) -> Cut:
        view = self.current_view
        bindings = {}
        for q in view.members:
            log = self.peek_buffer(q, view)
            bindings[q] = log.longest_prefix() if log is not None else 0
        return frozendict(bindings)

    def transitional_set_for(self, v: View) -> Optional[FrozenSet[ProcessId]]:
        tag = self.sync_tag(v)
        if tag is None:
            return None
        members = []
        for q in v.members & self.current_view.members:
            sync = self.stored_sync(q, tag)
            if sync is None:
                return None
            if sync.view == self.current_view:
                members.append(q)
        return frozenset(members)

    # ------------------------------------------------------------------
    # INPUT mbrshp.start_change / block_ok
    # ------------------------------------------------------------------

    def _eff_mbrshp_start_change(self, p: ProcessId, cid: StartChangeId, members: FrozenSet[ProcessId]) -> None:
        # Only used to widen the reliable set early; no sync is sent yet.
        self.start_change = StartChange(cid, frozenset(members))

    def _eff_block_ok(self, p: ProcessId) -> None:
        self.block_status = BlockStatus.BLOCKED

    # ------------------------------------------------------------------
    # OUTPUT block_p() - requested once the new view is known
    # ------------------------------------------------------------------

    def _pre_block(self, p: ProcessId) -> bool:
        return self.pending_view() is not None and self.block_status is BlockStatus.UNBLOCKED

    def _eff_block(self, p: ProcessId) -> None:
        self.block_status = BlockStatus.REQUESTED

    def _candidates_block(self) -> Iterable[Tuple[ProcessId]]:
        if self.pending_view() is not None and self.block_status is BlockStatus.UNBLOCKED:
            yield (self.pid,)

    # ------------------------------------------------------------------
    # OUTPUT co_rfifo.reliable_p(set)
    # ------------------------------------------------------------------

    def _desired_reliable_set(self) -> FrozenSet[ProcessId]:
        desired = set(self.current_view.members)
        pending = self.pending_view()
        if pending is not None:
            desired |= pending.members
        if self.start_change is not None:
            desired |= self.start_change.members
        return frozenset(desired)

    # ------------------------------------------------------------------
    # OUTPUT co_rfifo.send - baseline sync messages and forwarding
    # ------------------------------------------------------------------

    def _sync_send_ready(self) -> bool:
        view = self.pending_view()
        if view is None or self.block_status is not BlockStatus.BLOCKED:
            return False
        tag = self.sync_tag(view)
        return (
            tag is not None
            and view.members <= self.reliable_set
            and self.stored_sync(self.pid, tag) is None
        )

    def _pre_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: WireMessage) -> bool:
        if isinstance(m, BaselineSyncMsg):
            view = self.pending_view()
            return (
                self._sync_send_ready()
                and view is not None
                and m.tag == self.sync_tag(view)
                and frozenset(targets) == view.members - {self.pid}
                and m.view == self.current_view
                and m.cut == self.local_cut()
            )
        return True

    def _eff_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: WireMessage) -> None:
        if isinstance(m, BaselineSyncMsg):
            self.sync_store.setdefault(self.pid, {})[m.tag] = m
        from repro.core.messages import FwdMsg

        if isinstance(m, FwdMsg):
            for q in targets:
                self.forwarded_set.add((q, m.origin, m.view, m.index))

    def _candidates_co_rfifo_send(self) -> Iterable[Tuple[ProcessId, FrozenSet[ProcessId], WireMessage]]:
        yield from super()._candidates_co_rfifo_send()
        if self._sync_send_ready():
            view = self.pending_view()
            yield (
                self.pid,
                frozenset(view.members - {self.pid}),
                BaselineSyncMsg(self.sync_tag(view), self.current_view, self.local_cut()),
            )
        from repro.core.messages import FwdMsg

        for targets, origin, view, index in self.forwarding.candidates(self):
            log = self.peek_buffer(origin, view)
            if log is not None and log.has(index):
                yield (self.pid, targets, FwdMsg(origin, view, index, log.get(index)))

    # ------------------------------------------------------------------
    # INPUT co_rfifo.deliver - store peers' syncs
    # ------------------------------------------------------------------

    def _eff_co_rfifo_deliver(self, q: ProcessId, p: ProcessId, m: WireMessage) -> None:
        if isinstance(m, BaselineSyncMsg):
            self.sync_store.setdefault(q, {})[m.tag] = m

    # ------------------------------------------------------------------
    # OUTPUT deliver - cut restriction during a pending change
    # ------------------------------------------------------------------

    def _delivery_limit(self, q: ProcessId) -> Optional[int]:
        view = self.pending_view()
        if view is None:
            return None
        tag = self.sync_tag(view)
        if tag is None or self.stored_sync(self.pid, tag) is None:
            return None
        limit = 0
        for r in view.members & self.current_view.members:
            sync = self.stored_sync(r, tag)
            if sync is not None and sync.view == self.current_view:
                limit = max(limit, sync.cut.get(q, 0))
        return limit

    def _pre_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> bool:
        limit = self._delivery_limit(q)
        return limit is None or self.dlvrd(q) + 1 <= limit

    def _candidates_deliver(self) -> Iterable[Tuple[ProcessId, ProcessId, Any]]:
        for candidate in super()._candidates_deliver():
            _p, q, _m = candidate
            limit = self._delivery_limit(q)
            if limit is None or self.dlvrd(q) + 1 <= limit:
                yield candidate

    # ------------------------------------------------------------------
    # OUTPUT view_p(v, T)
    # ------------------------------------------------------------------

    def _pre_view(self, p: ProcessId, v: View, T: FrozenSet[ProcessId]) -> bool:
        expected = self.transitional_set_for(v)
        if expected is None or frozenset(T) != expected:
            return False
        tag = self.sync_tag(v)
        cuts = [self.stored_sync(r, tag).cut for r in expected]
        for q in self.current_view.members:
            agreed = max((cut.get(q, 0) for cut in cuts), default=0)
            if self.dlvrd(q) != agreed:
                return False
        return True

    def _eff_view(self, p: ProcessId, v: View, T: FrozenSet[ProcessId]) -> None:
        self.block_status = BlockStatus.UNBLOCKED
        self.start_change = None
        if self.gc_views:
            # repro: allow[R2.parent-write] - view GC prunes the parent's
            # buffers; memory reclamation has no counterpart in [26].
            self.msgs = {
                q: {view: log for view, log in buffers.items() if view == v}
                for q, buffers in self.msgs.items()
            }
            self.sync_store = {}
            self.forwarded_set = set()

    def _candidates_view(self) -> Iterable[Tuple[ProcessId, View, FrozenSet[ProcessId]]]:
        v = self.pending_view()
        if v is None:
            return
        expected = self.transitional_set_for(v)
        if expected is not None:
            yield (self.pid, v, expected)
