"""E15: the same workload measured across execution substrates.

The deployment layer's promise is that one scenario runs unchanged over
the simulator, the asyncio runtime and real TCP sockets.  This
experiment makes the comparison quantitative: a fixed multicast workload
is driven through :mod:`repro.deploy` on each substrate, the trace is
audited by the full property battery, and per-substrate event counts
confirm the *observable behaviour* is the same even though the transports
could hardly differ more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.checking.events import DeliverEvent, SendEvent, ViewEvent
from repro.deploy import SUBSTRATES, Deployment, run_scenario


@dataclass
class SubstrateResult:
    substrate: str
    nodes: int
    rounds: int
    sends: int  # application multicasts issued
    deliveries: int  # application deliveries (sends x group size if correct)
    view_events: int  # views installed across all end-points
    checked: bool  # full safety + MBRSHP battery passed


def _workload(nodes: int, rounds: int):
    pids = [chr(ord("a") + i) for i in range(nodes)]

    async def scenario(deployment: Deployment) -> None:
        await deployment.setup(pids)
        for round_no in range(rounds):
            for pid in pids:
                await deployment.send(pid, (pid, round_no))
            await deployment.settle()

    return scenario


def measure_substrate(
    substrate: str, *, nodes: int = 3, rounds: int = 2, check: bool = True
) -> SubstrateResult:
    """Run the fixed workload on one substrate and tally its trace."""
    deployment = run_scenario(substrate, _workload(nodes, rounds))
    if check:
        deployment.check()
    trace = deployment.trace
    return SubstrateResult(
        substrate=substrate,
        nodes=nodes,
        rounds=rounds,
        sends=len(trace.of_type(SendEvent)),
        deliveries=len(trace.of_type(DeliverEvent)),
        view_events=len(trace.of_type(ViewEvent)),
        checked=check,
    )


def substrate_matrix(
    *, nodes: int = 3, rounds: int = 2, check: bool = True
) -> List[SubstrateResult]:
    """The E15 table: one row per substrate, identical workload."""
    return [
        measure_substrate(substrate, nodes=nodes, rounds=rounds, check=check)
        for substrate in SUBSTRATES
    ]


def behaviour_fingerprint(result: SubstrateResult) -> Tuple[int, int]:
    """The substrate-independent part of a result: (sends, deliveries)."""
    return (result.sends, result.deliveries)


def matrix_agrees(results: List[SubstrateResult]) -> bool:
    """True when all substrates produced the same observable workload."""
    fingerprints = {behaviour_fingerprint(r) for r in results}
    return len(fingerprints) == 1


__all__ = [
    "SubstrateResult",
    "behaviour_fingerprint",
    "matrix_agrees",
    "measure_substrate",
    "substrate_matrix",
]
