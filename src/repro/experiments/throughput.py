"""E6: steady-state within-view FIFO multicast.

With the group settled, every member multicasts ``messages`` payloads;
the experiment measures total deliveries, simulated completion time and
end-to-end delivery latency percentiles - the cost side of the service
that Sections 5.1's WV_RFIFO layer provides between reconfigurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.checking.events import DeliverEvent, SendEvent
from repro.net import ConstantLatency, LatencyModel, SimWorld


@dataclass
class ThroughputResult:
    group_size: int
    messages_per_sender: int
    total_deliveries: int
    sim_duration: float
    deliveries_per_time_unit: float
    latency_p50: float
    latency_p99: float
    wire_messages: int


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def measure_throughput(
    *,
    group_size: int = 8,
    messages_per_sender: int = 20,
    latency: Optional[LatencyModel] = None,
) -> ThroughputResult:
    latency = latency or ConstantLatency(1.0)
    world = SimWorld(latency=latency, membership="oracle", round_duration=1.0)
    nodes = world.add_nodes([f"p{i:03d}" for i in range(group_size)])
    world.start()
    world.run()
    world.network.reset_counters()

    start = world.now()
    for round_no in range(messages_per_sender):
        for node in nodes:
            node.send((node.pid, round_no))
    world.run()
    duration = world.now() - start

    send_times: Dict[object, float] = {}
    latencies: List[float] = []
    deliveries = 0
    for event in world.trace:
        if isinstance(event, SendEvent):
            send_times[event.payload] = event.time
        elif isinstance(event, DeliverEvent) and event.time >= start:
            deliveries += 1
            sent_at = send_times.get(event.payload)
            if sent_at is not None:
                latencies.append(event.time - sent_at)
    return ThroughputResult(
        group_size=group_size,
        messages_per_sender=messages_per_sender,
        total_deliveries=deliveries,
        sim_duration=duration,
        deliveries_per_time_unit=deliveries / duration if duration else 0.0,
        latency_p50=_percentile(latencies, 0.50),
        latency_p99=_percentile(latencies, 0.99),
        wire_messages=sum(world.network.totals().values()),
    )
