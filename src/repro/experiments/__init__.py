"""The evaluation harness (experiments E1-E9, see EXPERIMENTS.md).

The paper contains no measurement tables - its figures are specifications
and algorithms - so the reproduction turns each *quantitative claim* into
an experiment: one-round reconfiguration (E1-E3), forwarding cost (E4),
obsolete-view suppression (E5), steady-state multicast (E6), blocking
windows (E7), crash recovery (E8).  Each experiment is a pure function of
its parameters over the deterministic simulator, returning structured
rows; the ``benchmarks/`` tree wraps them in pytest-benchmark and prints
the claim-versus-measured tables.
"""

from repro.experiments.reconfig import (
    ALGORITHMS,
    ReconfigResult,
    measure_reconfiguration,
    reconfiguration_sweep,
)
from repro.experiments.forwarding import ForwardingResult, measure_forwarding
from repro.experiments.obsolete import ObsoleteViewResult, measure_obsolete_views
from repro.experiments.throughput import ThroughputResult, measure_throughput
from repro.experiments.blocking import BlockingResult, measure_blocking_window
from repro.experiments.crash import CrashRecoveryResult, measure_crash_recovery
from repro.experiments.extensions import (
    CompactSyncResult,
    OrderingResult,
    TwoTierResult,
    measure_compact_syncs,
    measure_ordering_overhead,
    measure_two_tier,
)
from repro.experiments.chaos_sweep import (
    ChaosSweepResult,
    chaos_self_test,
    chaos_sweep,
)
from repro.experiments.scale import (
    ScaleEndpointResult,
    ScaleGroupsResult,
    measure_scale_endpoints,
    measure_scale_groups,
    scale_sweep,
)
from repro.experiments.server_chaos import (
    ServerChaosResult,
    measure_server_chaos,
    measure_server_soak,
)
from repro.experiments.servers import ServerTierResult, measure_server_tier
from repro.experiments.substrates import (
    SubstrateResult,
    matrix_agrees,
    measure_substrate,
    substrate_matrix,
)
from repro.experiments.tables import format_table

__all__ = [
    "ALGORITHMS",
    "BlockingResult",
    "ChaosSweepResult",
    "CompactSyncResult",
    "CrashRecoveryResult",
    "ForwardingResult",
    "ObsoleteViewResult",
    "OrderingResult",
    "ReconfigResult",
    "ScaleEndpointResult",
    "ScaleGroupsResult",
    "ServerChaosResult",
    "ServerTierResult",
    "SubstrateResult",
    "ThroughputResult",
    "TwoTierResult",
    "chaos_self_test",
    "chaos_sweep",
    "format_table",
    "matrix_agrees",
    "measure_blocking_window",
    "measure_compact_syncs",
    "measure_crash_recovery",
    "measure_forwarding",
    "measure_obsolete_views",
    "measure_ordering_overhead",
    "measure_reconfiguration",
    "measure_scale_endpoints",
    "measure_scale_groups",
    "measure_server_chaos",
    "measure_server_soak",
    "measure_server_tier",
    "measure_substrate",
    "measure_throughput",
    "measure_two_tier",
    "reconfiguration_sweep",
    "scale_sweep",
    "substrate_matrix",
]
