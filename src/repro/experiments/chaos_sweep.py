"""E16: seeded chaos sweeps - adversarial schedules as an experiment.

The hand-written scenarios of E15 exercise a handful of stories; the
chaos engine (:mod:`repro.chaos`) generates them from seeds.  This
experiment quantifies a sweep: N seeded episodes per substrate, each a
randomized schedule of multicasts, partitions, heals, crashes,
recoveries and reconfigurations under nonzero message-fault rates, each
audited with the full safety battery plus MBRSHP conformance.  The
headline number is simple - **zero violations** - backed by evidence
that the sweep was adversarial (operations and faults actually injected)
and not a calm-weather pass.

The companion *self-test* proves the pipeline can fail: a known-bad
trace mutation (a re-delivered view) must be caught by the checkers and
shrunk to a minimal schedule that replays from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chaos import (
    ChaosPlan,
    ChaosRunner,
    ShrinkResult,
    forge_nonmonotonic_view,
    shrink_plan,
)
from repro.chaos.por import schedule_key


@dataclass
class ChaosSweepResult:
    """One substrate's row of the E16 table."""

    substrate: str
    episodes: int
    violations: int  # safety/conformance/stall findings (0 == pass)
    ops: int  # schedule operations executed across the sweep
    injected: Dict[str, int]  # fault counters summed over the sweep
    failures: List[str]  # summaries of any violating episodes
    por_skipped: int = 0  # seeds skipped as POR-equivalent to a prior episode

    @property
    def ok(self) -> bool:
        return self.violations == 0


def chaos_sweep(
    substrate: str,
    *,
    episodes: int = 25,
    seed_base: int = 0,
    intensity: float = 1.0,
    overlay_leaders: int = 0,
    servers: int = 0,
    por: bool = True,
) -> ChaosSweepResult:
    """Run ``episodes`` seeded chaos episodes on one substrate.

    ``overlay_leaders`` > 0 runs every episode under the two-tier scale
    overlay, with ``leader_crash`` ops targeting its acting leaders.
    ``servers`` >= 2 runs every episode on a crashable membership tier
    of that size, folding ``server_crash``/``server_recover``/
    ``server_partition`` ops into the schedules (E20).

    ``por=True`` skips seeds whose generated plan is equivalent - up to
    exchanges of independent ops (:mod:`repro.chaos.por`) - to one this
    sweep already executed: re-running a behaviour class the sweep has
    audited proves nothing new.  ``episodes`` still counts the seeds
    *covered*; ``por_skipped`` of them cost no episode.
    """
    runner = ChaosRunner(substrate)
    ops = 0
    injected: Dict[str, int] = {}
    failures: List[str] = []
    seen: set = set()
    por_skipped = 0
    for seed in range(seed_base, seed_base + episodes):
        plan = ChaosPlan.generate(
            seed,
            intensity=intensity,
            overlay_leaders=overlay_leaders,
            servers=servers,
        )
        if por:
            key = schedule_key(plan)
            if key in seen:
                por_skipped += 1
                continue
            seen.add(key)
        episode = runner.run(plan)
        ops += len(episode.plan.ops)
        for key, count in episode.counters.items():
            injected[key] = injected.get(key, 0) + count
        if not episode.ok:
            failures.append(episode.summary())
    return ChaosSweepResult(
        substrate=substrate,
        episodes=episodes,
        violations=len(failures),
        ops=ops,
        injected=injected,
        failures=failures,
        por_skipped=por_skipped,
    )


def chaos_self_test(
    *,
    substrate: str = "sim",
    seed: int = 7,
    max_runs: int = 40,
) -> Optional[ShrinkResult]:
    """Prove the pipeline catches and shrinks a known-bad episode.

    Runs one episode with the forge-nonmonotonic-view mutation applied to
    its trace before checking; the checkers must reject it, and the
    shrinker must reduce the schedule.  Returns the :class:`ShrinkResult`
    (``None`` means the mutation was *not* caught - the checkers are
    broken, and the caller should fail loudly).
    """
    runner = ChaosRunner(substrate, mutate_trace=forge_nonmonotonic_view)
    plan = ChaosPlan.generate(seed)
    return shrink_plan(runner, plan, max_runs=max_runs)


__all__ = [
    "ChaosSweepResult",
    "chaos_self_test",
    "chaos_sweep",
]
