"""E8: crash and recovery without stable storage (Section 8).

A member crashes mid-traffic and later recovers *with its variables in
initial state* but under its original identity.  The experiment measures
how long the surviving group needs to reconfigure around the crash, how
long reintegration takes after recovery, and verifies that the recovered
process ends up in the same final view and receives post-recovery traffic
- the paper's claim that the algorithm remains meaningful without stable
storage because the membership service keeps the watermarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.checking.properties import check_all_safety
from repro.net import ConstantLatency, LatencyModel, SimWorld


@dataclass
class CrashRecoveryResult:
    group_size: int
    reconfigure_after_crash: float  # crash to survivors' view
    reintegration_time: float  # recovery to full view everywhere
    recovered_in_final_view: bool
    post_recovery_delivery_ok: bool
    monotone_view_ids: bool


def measure_crash_recovery(
    *,
    group_size: int = 5,
    round_duration: float = 2.0,
    latency: Optional[LatencyModel] = None,
    check: bool = False,
) -> CrashRecoveryResult:
    latency = latency or ConstantLatency(1.0)
    world = SimWorld(
        latency=latency,
        membership="oracle",
        round_duration=round_duration,
        gc_views=False,
    )
    pids = [f"p{i}" for i in range(group_size)]
    nodes = world.add_nodes(pids)
    world.start()
    world.run()
    for node in nodes:
        node.send("pre-" + node.pid)
    world.run()

    victim = pids[-1]
    t_crash = world.now()
    world.crash(victim)
    world.run()
    reconfigured = world.now() - t_crash

    t_recover = world.now()
    world.recover(victim)
    world.run()
    reintegrated = world.now() - t_recover

    final = world.oracle.views_formed[-1]
    nodes[0].send("post-recovery")
    world.run()
    if check:
        check_all_safety(world.trace, list(world.nodes))
    victim_views = [v for v, _t in world.nodes[victim].views]
    vids = [v.vid for v in victim_views]
    return CrashRecoveryResult(
        group_size=group_size,
        reconfigure_after_crash=reconfigured,
        reintegration_time=reintegrated,
        recovered_in_final_view=world.nodes[victim].current_view == final,
        post_recovery_delivery_ok=("p0", "post-recovery") in world.nodes[victim].delivered,
        monotone_view_ids=vids == sorted(vids) and len(set(vids)) == len(vids),
    )
