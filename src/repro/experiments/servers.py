"""E14: the membership-server tier (the client-server architecture).

The paper's architecture puts membership agreement on a small tier of
dedicated servers.  The experiment measures, for a fixed client
population, how bootstrap and reconfiguration latency and the server-tier
message load vary with the number of servers - the trade-off an operator
of the [27]-style service tunes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.checking.properties import check_all_safety
from repro.net import ConstantLatency, LatencyModel, SimWorld


@dataclass
class ServerTierResult:
    clients: int
    servers: int
    bootstrap_time: float  # start() to all clients in the first view
    reconfig_time: float  # client crash to survivors' converged view
    proposal_messages: int  # server-server traffic during the reconfig
    converged: bool


def measure_server_tier(
    *,
    clients: int = 8,
    servers: int = 2,
    detection_delay: float = 0.0,
    latency: Optional[LatencyModel] = None,
    check: bool = False,
) -> ServerTierResult:
    latency = latency or ConstantLatency(1.0)
    world = SimWorld(
        latency=latency,
        membership="servers",
        servers=servers,
        detection_delay=detection_delay,
    )
    pids = [f"p{i:02d}" for i in range(clients)]
    nodes = world.add_nodes(pids)
    world.start()
    world.run(max_events=1_000_000)
    bootstrap_time = world.now()
    first_view = nodes[0].current_view
    converged_bootstrap = all(n.current_view == first_view for n in nodes)

    world.network.reset_counters()
    start = world.now()
    world.crash(pids[-1])
    world.run(max_events=1_000_000)
    reconfig_time = world.now() - start
    survivors = [world.nodes[p] for p in pids[:-1]]
    final = survivors[0].current_view
    converged = converged_bootstrap and all(n.current_view == final for n in survivors)
    if check:
        check_all_safety(world.trace, list(world.nodes))
    return ServerTierResult(
        clients=clients,
        servers=servers,
        bootstrap_time=bootstrap_time,
        reconfig_time=reconfig_time,
        proposal_messages=world.network.totals().get("ServerProposal", 0),
        converged=converged,
    )
