"""E19: the scale sweep - both axes of the paper's scalability claim.

Section 9 argues the algorithm scales two ways: *in group size*, via the
two-tier leader hierarchy (sync traffic n + L(L-1) + nL instead of the
flat n(n-1)), and *in the number of groups*, via the client-server
architecture (a small membership tier serving many groups).  E19
measures both:

* **endpoint axis** (:func:`measure_scale_endpoints`): one group of n
  members with the :mod:`repro.scale` overlay installed; a member crash
  triggers a reconfiguration and the sync-carrying wire messages are
  counted against the §9 cost model and the flat baseline.  Runs on any
  substrate through :mod:`repro.deploy` (the overlay is
  substrate-agnostic); the n=1000 point runs on the simulator.
* **group axis** (:func:`measure_scale_groups`): g groups over n shared
  processes on a :class:`~repro.scale.world.ScaleWorld` with a
  group-sharded membership tier; measures settle latency and - the
  client-server selling point - how few groups one process crash
  actually reconfigures.

``benchmarks/bench_e19_scale.py`` runs the full sweep
(n in {32, 200, 1000} x g in {8, 64, 1000}) and records
``BENCH_E19.json``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.checking.events import MbrshpViewEvent, ViewEvent
from repro.checking.properties import check_all_safety
from repro.net import ConstantLatency, SimWorld
from repro.scale import install_overlay
from repro.scale.overlay import TwoTierOverlay, auto_leaders, balanced_groups
from repro.scale.world import ScaleWorld, auto_shards

_SYNC_KINDS = ("SyncMsg", "UpSync", "AggregatedSync")


@dataclass
class ScaleEndpointResult:
    """One endpoint-axis point: a member crash at group size n."""

    substrate: str
    n: int
    leaders: int
    sync_messages: int  # sync-carrying wire copies during the change
    model_messages: int  # §9 two-tier model: n + L(L-1) + nL
    flat_messages: int  # flat baseline: n(n-1)
    model_ratio: float  # measured / model (acceptance: <= 2.0)
    extra_latency: float  # GCS view time - membership view time
    wall_seconds: float
    converged: bool


@dataclass
class ScaleGroupsResult:
    """One group-axis point: g groups over n processes, one crash."""

    processes: int
    groups: int
    group_size: int
    shards: int
    views_formed: int
    settle_time: float  # virtual time to settle all groups initially
    crash_groups_touched: int  # groups reconfigured by one process crash
    wall_seconds: float
    all_settled: bool


def _cost_model(n: int, leaders: int) -> int:
    return n + leaders * (leaders - 1) + n * leaders


def measure_scale_endpoints(
    *,
    n: int = 32,
    leaders: int = 0,
    round_duration: float = 3.0,
    substrate: str = "sim",
    check: bool = False,
) -> ScaleEndpointResult:
    """Crash-triggered reconfiguration at group size ``n`` with the overlay.

    ``leaders=0`` auto-sizes L ~ sqrt(n).  The simulator path drives
    :class:`~repro.net.world.SimWorld` directly (fast enough for
    n=1000); other substrates go through :mod:`repro.deploy` - sized for
    smoke scale, their point is that the *same* overlay installs there.
    """
    leader_count = leaders or auto_leaders(n)
    if substrate == "sim":
        return _measure_endpoints_sim(n, leader_count, round_duration, check)
    return asyncio.run(_measure_endpoints_deploy(n, leader_count, substrate, check))


def _measure_endpoints_sim(
    n: int, leaders: int, round_duration: float, check: bool
) -> ScaleEndpointResult:
    started = time.perf_counter()
    world = SimWorld(
        latency=ConstantLatency(1.0),
        membership="oracle",
        round_duration=round_duration,
        gc_views=False,
    )
    pids = [f"p{i:04d}" for i in range(n)]
    world.add_nodes(pids)
    TwoTierOverlay(
        {pid: node.runner for pid, node in world.nodes.items()},
        world.clock.schedule,
        balanced_groups(pids, leaders),
        connected=world.network.connected,
    )
    world.start()
    world.run()
    world.network.reset_counters()
    world.crash(pids[-1])
    world.run()
    view = world.oracle.views_formed[-1]
    membership_time = max(
        e.time for e in world.trace.of_type(MbrshpViewEvent) if e.view == view
    )
    gcs_time = max(e.time for e in world.trace.of_type(ViewEvent) if e.view == view)
    if check:
        check_all_safety(world.trace, list(world.nodes))
    counts = world.network.totals()
    sync = sum(counts.get(kind, 0) for kind in _SYNC_KINDS)
    model = _cost_model(n, leaders)
    return ScaleEndpointResult(
        substrate="sim",
        n=n,
        leaders=leaders,
        sync_messages=sync,
        model_messages=model,
        flat_messages=n * (n - 1),
        model_ratio=sync / model,
        extra_latency=gcs_time - membership_time,
        wall_seconds=time.perf_counter() - started,
        converged=world.all_in_view(view),
    )


async def _measure_endpoints_deploy(
    n: int, leaders: int, substrate: str, check: bool
) -> ScaleEndpointResult:
    from repro.deploy import make_deployment

    started = time.perf_counter()
    pids = [f"p{i:04d}" for i in range(n)]
    deployment = make_deployment(substrate)
    try:
        await deployment.setup(pids)
        install_overlay(deployment, leaders=leaders)
        await deployment.settle()
        deployment.links.reset_counters()
        await deployment.crash(pids[-1])
        await deployment.settle()
        survivors = frozenset(pids[:-1])
        converged = all(
            deployment.current_view(pid).members == survivors for pid in pids[:-1]
        )
        if check:
            deployment.check()
        counts = deployment.link_totals()
    finally:
        await deployment.close()
    sync = sum(counts.get(kind, 0) for kind in _SYNC_KINDS)
    model = _cost_model(n, leaders)
    return ScaleEndpointResult(
        substrate=substrate,
        n=n,
        leaders=leaders,
        sync_messages=sync,
        model_messages=model,
        flat_messages=n * (n - 1),
        model_ratio=sync / model,
        extra_latency=0.0,  # real substrates have no common virtual clock
        wall_seconds=time.perf_counter() - started,
        converged=converged,
    )


def measure_scale_groups(
    *,
    processes: int = 50,
    groups: int = 8,
    group_size: int = 4,
    shards: int = 0,
    round_duration: float = 1.0,
) -> ScaleGroupsResult:
    """g groups over n processes on the sharded membership tier.

    Groups are overlapping windows over the process ring (group i holds
    processes i .. i+size-1 mod n), so one crash lands in several groups
    but never in most - the locality the sharded tier preserves.
    """
    started = time.perf_counter()
    shard_count = shards or auto_shards(groups)
    world = ScaleWorld(round_duration=round_duration, shards=shard_count)
    pids = [f"p{i:04d}" for i in range(processes)]
    world.add_processes(pids)
    size = min(group_size, processes)
    names = [f"g{i:04d}" for i in range(groups)]
    for index, name in enumerate(names):
        world.set_group(name, [pids[(index + k) % processes] for k in range(size)])
    world.run()
    settle_time = world.now()
    # Crash the anchor of the middle group - a process that is a member
    # of several (but far from all) groups.
    touched = world.crash(pids[(groups // 2) % processes])
    world.run()
    all_settled = all(world.settled(name) for name in names)
    return ScaleGroupsResult(
        processes=processes,
        groups=groups,
        group_size=size,
        shards=shard_count,
        views_formed=world.tier.views_formed(),
        settle_time=settle_time,
        crash_groups_touched=touched,
        wall_seconds=time.perf_counter() - started,
        all_settled=all_settled,
    )


def scale_sweep(
    *,
    ns: tuple = (32, 200, 1000),
    gs: tuple = (8, 64, 1000),
    group_processes: int = 1000,
    check_small: bool = True,
) -> tuple:
    """The full E19 table: one endpoint-axis row per n, one group-axis
    row per g.  Safety checking is confined to the small points (the
    battery itself is O(trace^2)-ish and would dominate n=1000)."""
    endpoint_rows: List[ScaleEndpointResult] = []
    for n in ns:
        endpoint_rows.append(
            measure_scale_endpoints(n=n, check=check_small and n <= 64)
        )
    group_rows: List[ScaleGroupsResult] = []
    for g in gs:
        group_rows.append(measure_scale_groups(processes=group_processes, groups=g))
    return endpoint_rows, group_rows


__all__ = [
    "ScaleEndpointResult",
    "ScaleGroupsResult",
    "measure_scale_endpoints",
    "measure_scale_groups",
    "scale_sweep",
]
