"""E5: obsolete-view suppression (Section 1).

The paper: "our algorithm never delivers views that reflect a membership
that is already known to be out of date" - when the membership changes
its mind during a reconfiguration (new joiners, revised estimates), the
start_change interface lets it *revise* the attempt in flight: clients
get a fresh start_change, re-synchronise under the new identifier, and
only the final view reaches the application.  Integrated prior designs
(e.g. [22, 16]) must run each membership invocation to completion,
delivering every intermediate view to the application and paying an
application-level reconfiguration for each.

The experiment fires ``churn`` membership revisions in one burst and
counts application-visible views per process:

* ``revise`` mode - the revisions supersede each other (our interface);
* ``serialize`` mode - each invocation completes before the next starts
  (the prior-art discipline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.checking.properties import check_all_safety
from repro.net import ConstantLatency, LatencyModel, SimWorld


@dataclass
class ObsoleteViewResult:
    mode: str
    group_size: int
    churn: int
    app_views_per_process: float  # views the application processed
    total_time: float  # burst start to final convergence
    converged: bool


def measure_obsolete_views(
    mode: str = "revise",
    *,
    group_size: int = 6,
    churn: int = 4,
    round_duration: float = 4.0,
    latency: Optional[LatencyModel] = None,
    check: bool = False,
) -> ObsoleteViewResult:
    if mode not in ("revise", "serialize"):
        raise ValueError(f"mode must be 'revise' or 'serialize', got {mode!r}")
    latency = latency or ConstantLatency(1.0)
    world = SimWorld(
        latency=latency,
        membership="oracle",
        round_duration=round_duration,
        gc_views=False,
    )
    pids = [f"p{i}" for i in range(group_size)]
    world.add_nodes(pids)
    world.start()
    world.run()
    settled = {pid: len(world.nodes[pid].views) for pid in pids}

    start = world.now()
    if mode == "revise":
        # each revision lands mid-round and supersedes the previous attempt
        for _ in range(churn):
            world.oracle.reconfigure([pids])
            world.run_until(world.now() + round_duration / 2)
    else:
        # prior-art discipline: every invocation runs to completion
        for _ in range(churn):
            world.oracle.reconfigure([pids])
            world.run()
    world.run()
    total_time = world.now() - start

    final = world.oracle.views_formed[-1]
    converged = world.all_in_view(final)
    if check:
        check_all_safety(world.trace, list(world.nodes))
    app_views = [len(world.nodes[pid].views) - settled[pid] for pid in pids]
    return ObsoleteViewResult(
        mode=mode,
        group_size=group_size,
        churn=churn,
        app_views_per_process=sum(app_views) / len(app_views),
        total_time=total_time,
        converged=converged,
    )
