"""E7: the application blocking window (Section 5.3).

Self Delivery plus Virtual Synchrony require blocking the application
from sending during a view change ([19], cited in Section 5.3).  The cost
of that guarantee is the *blocking window*: the time between the block
request (right after the first start_change) and the view delivery that
unblocks.  With the paper's parallel design the window is roughly the
membership round; sequential designs extend it by their extra rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.baselines import SequentialVsEndpoint, TwoRoundVsEndpoint
from repro.checking.events import BlockEvent, ViewEvent
from repro.core import GcsEndpoint
from repro.core.wv_endpoint import WvRfifoEndpoint
from repro.net import ConstantLatency, LatencyModel, SimWorld


@dataclass
class BlockingResult:
    algorithm: str
    group_size: int
    mean_blocking_window: float
    max_blocking_window: float


def measure_blocking_window(
    endpoint_cls: Type[WvRfifoEndpoint] = GcsEndpoint,
    *,
    group_size: int = 6,
    round_duration: float = 3.0,
    latency: Optional[LatencyModel] = None,
    algorithm_name: str = "",
) -> BlockingResult:
    latency = latency or ConstantLatency(1.0)
    world = SimWorld(
        latency=latency,
        membership="oracle",
        round_duration=round_duration,
        endpoint_cls=endpoint_cls,
        gc_views=False,
    )
    nodes = world.add_nodes([f"p{i}" for i in range(group_size)])
    world.start()
    world.run()
    for node in nodes:
        node.send("load-" + node.pid)
    world.run()
    mark = world.now()
    world.crash(nodes[-1].pid)
    world.run()

    blocked_at: Dict[str, float] = {}
    windows: List[float] = []
    for event in world.trace:
        if event.time < mark:
            continue
        if isinstance(event, BlockEvent):
            blocked_at.setdefault(event.proc, event.time)
        elif isinstance(event, ViewEvent) and event.proc in blocked_at:
            windows.append(event.time - blocked_at.pop(event.proc))
    return BlockingResult(
        algorithm=algorithm_name or endpoint_cls.__name__,
        group_size=group_size,
        mean_blocking_window=sum(windows) / len(windows) if windows else 0.0,
        max_blocking_window=max(windows, default=0.0),
    )
