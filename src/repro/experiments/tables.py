"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    rendered: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
