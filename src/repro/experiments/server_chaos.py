"""E20: the server fault domain under chaos - crash, recover, soak.

The paper assumes the membership service away (Section 8: servers
"never crash and never forget").  This repo mechanises that assumption
instead: servers snapshot their state, crash, and rejoin via round
adoption over a durable watermark floor.  E20 quantifies the claim that
the *client-observable* guarantees survive the mechanisation:

* a seeded sweep per substrate with ``server_crash`` / ``server_recover``
  / ``server_partition`` folded into the schedules, audited by the full
  battery including the server-tier conformance rules
  (``MBRSHP-SRV-FORK``, ``MBRSHP-SRV-MONO``), must report **zero
  findings** while demonstrably exercising the tier;
* a soak - an open-ended stream of the same op distribution for at
  least one simulated hour - must stay green at every periodic audit
  *and* hold peak endpoint memory under a duration-independent bound
  (the E15 acknowledgement-GC machinery doing its job under server
  churn).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.chaos import ChaosPlan, SoakReport, SoakRunner
from repro.experiments.chaos_sweep import ChaosSweepResult, chaos_sweep


@dataclass
class ServerChaosResult:
    """One substrate's row of the E20 table."""

    sweep: ChaosSweepResult
    servers: int
    server_ops: Dict[str, int] = field(default_factory=dict)  # per op kind

    @property
    def ok(self) -> bool:
        # A sweep that never touched the tier proves nothing about it.
        return self.sweep.ok and sum(self.server_ops.values()) > 0


def measure_server_chaos(
    substrate: str,
    *,
    episodes: int = 25,
    seed_base: int = 0,
    servers: int = 3,
    intensity: float = 1.0,
) -> ServerChaosResult:
    """The E20 sweep: seeded episodes on a crashable membership tier."""
    sweep = chaos_sweep(
        substrate,
        episodes=episodes,
        seed_base=seed_base,
        intensity=intensity,
        servers=servers,
    )
    server_ops: Dict[str, int] = {}
    for seed in range(seed_base, seed_base + episodes):
        plan = ChaosPlan.generate(seed, intensity=intensity, servers=servers)
        for op in plan.ops:
            if op.kind.startswith("server_"):
                server_ops[op.kind] = server_ops.get(op.kind, 0) + 1
    return ServerChaosResult(sweep=sweep, servers=servers, server_ops=server_ops)


def measure_server_soak(
    substrate: str = "sim",
    *,
    seed: int = 42,
    duration: float = 3600.0,
    servers: int = 3,
    audit_every: int = 50,
) -> SoakReport:
    """The E20 soak: one simulated hour (default) of server churn.

    On the simulator the duration is virtual time, so the default hour
    costs seconds of wall clock; on the runtimes it is wall time and
    callers should shorten it.
    """
    return SoakRunner(substrate).soak(
        seed, duration=duration, servers=servers, audit_every=audit_every
    )


__all__ = [
    "ServerChaosResult",
    "measure_server_chaos",
    "measure_server_soak",
]
