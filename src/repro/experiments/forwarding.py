"""E4: message-recovery cost of the forwarding strategies (Section 5.2.2).

Setup: a settled group; the *departing* end-point multicasts a backlog of
messages over asymmetric links, so that exactly ``holders`` of the
survivors receive them before a partition removes the sender (the slow
copies bounce).  The survivors then reconfigure: the holders' cuts commit
to the backlog, the other survivors miss it, and the forwarding strategy
determines how many copies cross the network.

Paper's claim: with the *simple* strategy every committed holder forwards
to every missing peer (``holders`` copies per missing message), while
*min-copies* deterministically elects a single forwarder (one copy per
missing message).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.checking.properties import check_all_safety
from repro.core.forwarding import ForwardingStrategy
from repro.net import SimWorld
from repro.net.latency import LatencyModel
from repro.types import ProcessId


class _AsymmetricLatency(LatencyModel):
    """Base latency everywhere, except slow links from ``sender`` to
    everyone outside ``fast_peers`` - the knob that creates holders."""

    def __init__(self, sender: ProcessId, fast_peers: FrozenSet[ProcessId],
                 base: float = 1.0, slow: float = 50.0) -> None:
        self.sender = sender
        self.fast_peers = frozenset(fast_peers)
        self.base = base
        self.slow = slow

    def sample(self, src: ProcessId, dst: ProcessId) -> float:
        if src == self.sender and dst not in self.fast_peers:
            return self.slow
        return self.base

    def mean(self) -> float:
        return self.base


@dataclass
class ForwardingResult:
    strategy: str
    group_size: int
    holders: int
    backlog: int
    missing_instances: int  # (message, needy-peer) pairs to repair
    forwarded_copies: int
    copies_per_missing: float
    converged: bool
    agreed: bool  # all survivors delivered the same backlog prefix


def measure_forwarding(
    strategy: ForwardingStrategy,
    *,
    group_size: int = 6,
    backlog: int = 4,
    holders: int = 2,
    check: bool = False,
) -> ForwardingResult:
    """Partition the sender away mid-stream; count forwarded copies."""
    if holders >= group_size - 1:
        raise ValueError("need at least one survivor without the backlog")
    pids = [f"p{i}" for i in range(group_size - 1)] + ["zz-sender"]
    sender = pids[-1]
    fast = frozenset(pids[:holders])
    latency = _AsymmetricLatency(sender, fast)
    world = SimWorld(
        latency=latency,
        membership="oracle",
        round_duration=2.0,
        forwarding=strategy,
        gc_views=False,
    )
    nodes = world.add_nodes(pids)
    world.start()
    world.run()

    for i in range(backlog):
        nodes[-1].send(f"bulk-{i}")
    # let the fast copies land; the slow ones are still in flight
    world.run_until(world.now() + latency.base + 0.01)
    survivors = pids[:-1]
    world.partition([survivors, [sender]])
    world.network.reset_counters()
    world.run()

    final = next(v for v in reversed(world.oracle.views_formed)
                 if v.members == frozenset(survivors))
    converged = world.all_in_view(final)
    if check:
        check_all_safety(world.trace, list(world.nodes))
    copies = world.network.totals().get("FwdMsg", 0)
    prefixes = {
        p: tuple(m for s, m in world.nodes[p].delivered if s == sender)
        for p in survivors
    }
    agreed = len(set(prefixes.values())) == 1
    held = len(prefixes[survivors[0]])
    missing = held * (group_size - 1 - holders)
    return ForwardingResult(
        strategy=type(strategy).__name__,
        group_size=group_size,
        holders=holders,
        backlog=backlog,
        missing_instances=missing,
        forwarded_copies=copies,
        copies_per_missing=(copies / missing) if missing else 0.0,
        converged=converged,
        agreed=agreed,
    )
