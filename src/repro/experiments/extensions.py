"""E10-E12: the implemented extensions and optimizations.

* E10 - the two-tier hierarchy of Section 9 (sync aggregation through
  leaders): message count versus extra latency.
* E11 - the compact synchronization messages of Section 5.2.4: sync
  volume on partition merges.
* E12 - the ordering layers built on the FIFO service (Section 4.1.1's
  "FIFO is a basic service upon which one can build stronger services"):
  delivery latency of FIFO vs causal vs total order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.checking.events import DeliverEvent, MbrshpViewEvent, SendEvent, ViewEvent
from repro.checking.properties import check_all_safety
from repro.net import ConstantLatency, SimWorld
from repro.net.hierarchy import TwoTierOverlay, balanced_groups
from repro.order import CausalOrderNode, TotalOrderNode


@dataclass
class TwoTierResult:
    group_size: int
    leaders: int  # 0 = flat (no hierarchy)
    sync_messages: int  # sync-carrying messages during the change
    extra_latency: float  # GCS view time - membership view time
    converged: bool


def measure_two_tier(
    *,
    group_size: int = 16,
    leaders: int = 0,
    round_duration: float = 3.0,
    check: bool = False,
) -> TwoTierResult:
    """One member-crash reconfiguration, flat or with a leader hierarchy."""
    world = SimWorld(
        latency=ConstantLatency(1.0),
        membership="oracle",
        round_duration=round_duration,
        gc_views=False,
    )
    pids = [f"p{i:02d}" for i in range(group_size)]
    nodes = world.add_nodes(pids)
    if leaders:
        TwoTierOverlay(world, balanced_groups(pids, leaders))
    world.start()
    world.run()
    for node in nodes:
        node.send("warm-" + node.pid)
    world.run()
    world.network.reset_counters()
    world.crash(pids[-1])
    world.run()
    view = world.oracle.views_formed[-1]
    membership_time = max(e.time for e in world.trace.of_type(MbrshpViewEvent) if e.view == view)
    gcs_time = max(e.time for e in world.trace.of_type(ViewEvent) if e.view == view)
    if check:
        check_all_safety(world.trace, list(world.nodes))
    counts = world.network.totals()
    sync_messages = sum(
        counts.get(kind, 0) for kind in ("SyncMsg", "UpSync", "AggregatedSync")
    )
    return TwoTierResult(
        group_size=group_size,
        leaders=leaders,
        sync_messages=sync_messages,
        extra_latency=gcs_time - membership_time,
        converged=world.all_in_view(view),
    )


@dataclass
class CompactSyncResult:
    group_size: int
    compact: bool
    sync_messages: int
    sync_volume: int  # estimated units (cut entries + membership + header)
    converged: bool


def measure_compact_syncs(
    *,
    group_size: int = 6,
    compact: bool = False,
    check: bool = False,
) -> CompactSyncResult:
    """A partition merge - the case where start_change.set strictly
    exceeds current views and the Section 5.2.4 optimization bites."""
    world = SimWorld(
        latency=ConstantLatency(1.0),
        membership="oracle",
        round_duration=2.0,
        compact_syncs=compact,
        gc_views=False,
    )
    pids = [f"p{i}" for i in range(group_size)]
    nodes = world.add_nodes(pids)
    world.start()
    world.run()
    half = group_size // 2
    world.partition([pids[:half], pids[half:]])
    world.run()
    for node in nodes:
        node.send("island-" + node.pid)
    world.run()
    world.network.reset_counters()
    world.heal()
    world.run()
    view = world.oracle.views_formed[-1]
    if check:
        check_all_safety(world.trace, list(world.nodes))
    return CompactSyncResult(
        group_size=group_size,
        compact=compact,
        sync_messages=world.network.sent.get("SyncMsg", 0),
        sync_volume=world.network.volume.get("SyncMsg", 0),
        converged=world.all_in_view(view),
    )


@dataclass
class OrderingResult:
    layer: str
    group_size: int
    mean_delivery_latency: float
    agreed_order: bool


def measure_ordering_overhead(
    layer: str,
    *,
    group_size: int = 6,
    messages_per_sender: int = 5,
) -> OrderingResult:
    """Mean send-to-deliver latency under each ordering layer.

    Total order pays the sequencing hop (order messages from the least
    member) on top of the FIFO service's single hop; causal order costs
    nothing extra for concurrent traffic.
    """
    if layer not in ("fifo", "causal", "total"):
        raise ValueError(f"layer must be fifo/causal/total, got {layer!r}")
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=1.0)
    nodes = world.add_nodes([f"p{i}" for i in range(group_size)])

    send_time: Dict = {}
    latencies: List[float] = []

    def on_deliver(_sender, payload) -> None:
        sent = send_time.get(payload)
        if sent is not None:
            latencies.append(world.now() - sent)

    wrapped: List = []
    if layer == "total":
        wrapped = [TotalOrderNode(node, on_deliver=on_deliver) for node in nodes]
    elif layer == "causal":
        wrapped = [CausalOrderNode(node, on_deliver=on_deliver) for node in nodes]
    else:
        for node in nodes:
            node.set_app(on_deliver=on_deliver)
    world.start()
    world.run()

    for i in range(messages_per_sender):
        for index, node in enumerate(nodes):
            payload = (node.pid, i)
            send_time[payload] = world.now()
            if wrapped:
                wrapped[index].broadcast(payload)
            else:
                node.send(payload)
        world.run()  # settle each wave so timestamps stay meaningful

    expected = group_size * group_size * messages_per_sender
    assert len(latencies) == expected, (len(latencies), expected)
    agreed = True
    if layer == "total":
        agreed = len({tuple(w.delivered) for w in wrapped}) == 1
    return OrderingResult(
        layer=layer,
        group_size=group_size,
        mean_delivery_latency=sum(latencies) / len(latencies),
        agreed_order=agreed,
    )
