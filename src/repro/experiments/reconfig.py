"""E1-E3: reconfiguration latency, message cost, and parallelism.

The paper's headline claim (Sections 1, 5, 9): the virtual synchrony
round runs *in parallel* with the membership round, so the GCS view is
delivered as soon as the membership view is - no extra rounds and no
identifier pre-agreement messages.  The prior-art baselines pay one
(sequential) or two (pre-agreement) extra message exchanges.

``measure_reconfiguration`` runs one controlled view change - a settled
group loses a member - and reports, per algorithm:

* ``membership_latency`` - trigger to last membership-view delivery;
* ``gcs_latency`` - trigger to last GCS-view delivery;
* ``extra_rounds`` - the gap between the two, in units of the mean
  one-way network latency (the paper's "communication rounds");
* message counts by kind during the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Type

from repro.baselines import SequentialVsEndpoint, TwoRoundVsEndpoint
from repro.checking.events import MbrshpViewEvent, ViewEvent
from repro.checking.properties import check_all_safety
from repro.core import GcsEndpoint
from repro.core.wv_endpoint import WvRfifoEndpoint
from repro.net import ConstantLatency, LatencyModel, SimWorld

ALGORITHMS: Dict[str, Type[WvRfifoEndpoint]] = {
    "gcs-1round (paper)": GcsEndpoint,
    "sequential-vs": SequentialVsEndpoint,
    "two-round-vs": TwoRoundVsEndpoint,
}


@dataclass
class ReconfigResult:
    algorithm: str
    group_size: int
    membership_latency: float
    gcs_latency: float
    extra_latency: float
    extra_rounds: float
    messages: Dict[str, int] = field(default_factory=dict)

    @property
    def sync_messages(self) -> int:
        return self.messages.get("SyncMsg", 0) + self.messages.get("BaselineSyncMsg", 0)

    @property
    def agreement_messages(self) -> int:
        return self.messages.get("ProposeIdMsg", 0)


def measure_reconfiguration(
    endpoint_cls: Type[WvRfifoEndpoint],
    *,
    group_size: int = 8,
    latency: Optional[LatencyModel] = None,
    round_duration: float = 3.0,
    warm_messages: int = 2,
    check: bool = False,
    algorithm_name: str = "",
) -> ReconfigResult:
    """One controlled view change (a member leaves a settled group)."""
    latency = latency or ConstantLatency(1.0)
    world = SimWorld(
        latency=latency,
        membership="oracle",
        round_duration=round_duration,
        endpoint_cls=endpoint_cls,
        gc_views=False,
    )
    nodes = world.add_nodes([f"p{i:03d}" for i in range(group_size)])
    world.start()
    world.run()
    for _ in range(warm_messages):
        for node in nodes:
            node.send(f"warm-{node.pid}")
    world.run()

    world.network.reset_counters()
    trigger_time = world.now()
    world.crash(nodes[-1].pid)
    world.run()

    view = world.oracle.views_formed[-1]
    membership_time = max(
        e.time for e in world.trace.of_type(MbrshpViewEvent) if e.view == view
    )
    gcs_time = max(e.time for e in world.trace.of_type(ViewEvent) if e.view == view)
    if check:
        check_all_safety(world.trace, list(world.nodes))
    extra = gcs_time - membership_time
    return ReconfigResult(
        algorithm=algorithm_name or endpoint_cls.__name__,
        group_size=group_size,
        membership_latency=membership_time - trigger_time,
        gcs_latency=gcs_time - trigger_time,
        extra_latency=extra,
        extra_rounds=extra / latency.mean() if latency.mean() else 0.0,
        messages=dict(world.network.totals()),
    )


def reconfiguration_sweep(
    group_sizes: Iterable[int],
    *,
    latency: Optional[LatencyModel] = None,
    round_duration: float = 3.0,
) -> List[ReconfigResult]:
    """E1/E2 sweep: every algorithm at every group size."""
    results = []
    for n in group_sizes:
        for name, endpoint_cls in ALGORITHMS.items():
            results.append(
                measure_reconfiguration(
                    endpoint_cls,
                    group_size=n,
                    latency=latency,
                    round_duration=round_duration,
                    algorithm_name=name,
                )
            )
    return results
