"""Transitional set specification, Figure 6.

TRANS_SET : SPEC delivers with each view ``v'`` a transitional set ``T``
satisfying Property 4.1: a subset of ``v.set & v'.set`` containing
exactly those processes that move to ``v'`` *directly from* ``v``.  A
process "declares" the view it will move from via the internal action
``set_prev_view``; a view may only be delivered to ``p`` once every
member of the intersection has declared.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.ioa import ActionKind, Automaton
from repro.types import ProcessId, View, initial_view


class TransSetSpec(Automaton):
    """TRANS_SET : SPEC (Figure 6), a stand-alone automaton."""

    SIGNATURE = {
        # repro: allow[R3.missing-candidates] - trace-checked spec; the
        # implementation trace drives it, never enabled_actions().
        "view": ActionKind.OUTPUT,  # (p, v, T)
        # repro: allow[R3.missing-candidates]
        "set_prev_view": ActionKind.INTERNAL,  # (p, v)
    }

    def __init__(self, processes: Iterable[ProcessId], name: str = "trans_set_spec", **kwargs: Any) -> None:
        self.processes: Tuple[ProcessId, ...] = tuple(sorted(set(processes)))
        super().__init__(name, **kwargs)

    def _state(self) -> None:
        self.current_view: Dict[ProcessId, View] = {p: initial_view(p) for p in self.processes}
        # prev_view[(p, v)]: the view p declared it will move to v from.
        self.prev_view: Dict[Tuple[ProcessId, View], View] = {}

    # -- set_prev_view_p(v) ---------------------------------------------------

    def _pre_set_prev_view(self, p: ProcessId, v: View) -> bool:
        return p in v.members and (p, v) not in self.prev_view

    def _eff_set_prev_view(self, p: ProcessId, v: View) -> None:
        self.prev_view[(p, v)] = self.current_view[p]

    # -- view_p(v, T) -------------------------------------------------------------

    def expected_transitional_set(self, p: ProcessId, v: View) -> Optional[FrozenSet[ProcessId]]:
        """The unique T enabled for ``view_p(v, T)``, or None if none is."""
        current = self.current_view[p]
        intersection = v.members & current.members
        if self.prev_view.get((p, v)) != current:
            return None
        if any((q, v) not in self.prev_view for q in intersection):
            return None
        return frozenset(q for q in intersection if self.prev_view[(q, v)] == current)

    def _pre_view(self, p: ProcessId, v: View, T: FrozenSet[ProcessId]) -> bool:
        return self.expected_transitional_set(p, v) == frozenset(T)

    def _eff_view(self, p: ProcessId, v: View, T: FrozenSet[ProcessId]) -> None:
        self.current_view[p] = v
