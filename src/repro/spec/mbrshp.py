"""The external membership service specification, Figure 2.

``MbrshpSpec`` is the centralized MBRSHP automaton: it validates and
tracks ``start_change`` and ``view`` deliveries per process, enforcing
Self Inclusion, Local Monotonicity, the start_change-before-view mode
discipline, and the ``startId``/subset relations between a view and the
start_changes that preceded it.

``MembershipDriver`` generates legal membership behaviours - stabilizing
runs for liveness tests and chaotic partitionable runs for adversarial
safety tests - by enumerating enabled MBRSHP output actions.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro._collections import frozendict
from repro.ioa import Action, ActionKind, Automaton
from repro.types import (
    CID_ZERO,
    ProcessId,
    StartChange,
    StartChangeId,
    View,
    ViewId,
    initial_view,
)

MODE_NORMAL = "normal"
MODE_CHANGE_STARTED = "change_started"


class MbrshpSpec(Automaton):
    """The MBRSHP specification automaton (Figure 2), plus the crash and
    recovery inputs of Section 8 (the membership service itself never
    crashes and never loses its state)."""

    SIGNATURE = {
        # repro: allow[R3.missing-candidates] - trace-checked spec; the
        # membership service drives these, never enabled_actions().
        "mbrshp.start_change": ActionKind.OUTPUT,  # (p, cid, set)
        # repro: allow[R3.missing-candidates]
        "mbrshp.view": ActionKind.OUTPUT,  # (p, v)
        "crash": ActionKind.INPUT,  # (p,)
        "recover": ActionKind.INPUT,  # (p,)
    }

    def __init__(self, processes: Iterable[ProcessId], name: str = "mbrshp", **kwargs) -> None:
        self.processes: Tuple[ProcessId, ...] = tuple(sorted(set(processes)))
        super().__init__(name, **kwargs)

    def _state(self) -> None:
        self.mbrshp_view: Dict[ProcessId, View] = {p: initial_view(p) for p in self.processes}
        self.start_change: Dict[ProcessId, StartChange] = {
            p: StartChange(CID_ZERO, frozenset()) for p in self.processes
        }
        self.mode: Dict[ProcessId, str] = {p: MODE_NORMAL for p in self.processes}

    # -- start_change_p(cid, set) --------------------------------------

    def _pre_mbrshp_start_change(self, p: ProcessId, cid: StartChangeId, members: FrozenSet[ProcessId]) -> bool:
        return cid > self.start_change[p].cid and p in members

    def _eff_mbrshp_start_change(self, p: ProcessId, cid: StartChangeId, members: FrozenSet[ProcessId]) -> None:
        self.start_change[p] = StartChange(cid, frozenset(members))
        self.mode[p] = MODE_CHANGE_STARTED

    # -- view_p(v) ------------------------------------------------------

    def _pre_mbrshp_view(self, p: ProcessId, v: View) -> bool:
        return (
            v.vid > self.mbrshp_view[p].vid
            and v.members <= self.start_change[p].members
            and p in v.members
            and v.start_id(p) == self.start_change[p].cid
            and self.mode[p] == MODE_CHANGE_STARTED
        )

    def _eff_mbrshp_view(self, p: ProcessId, v: View) -> None:
        self.mbrshp_view[p] = v
        self.mode[p] = MODE_NORMAL

    # -- crash / recovery (Section 8) ------------------------------------

    def _eff_crash(self, p: ProcessId) -> None:
        # The membership service observes the crash; its own state (the
        # per-client cid/vid watermarks) survives, which is what preserves
        # Local Monotonicity across client recoveries.
        pass

    def _eff_recover(self, p: ProcessId) -> None:
        self.mode[p] = MODE_NORMAL

    # -- helpers ----------------------------------------------------------

    def last_cid(self, p: ProcessId) -> StartChangeId:
        return self.start_change[p].cid

    def current_view(self, p: ProcessId) -> View:
        return self.mbrshp_view[p]

    def max_view_counter(self) -> int:
        return max(self.mbrshp_view[p].vid.counter for p in self.processes)


class MembershipDriver:
    """Generates legal MBRSHP behaviours against an :class:`MbrshpSpec`.

    The driver is the adversary of the safety tests and the benefactor of
    the liveness tests.  It produces actions through the composed system
    (so the algorithm end-points receive them as inputs) and never
    violates the MBRSHP preconditions.
    """

    def __init__(
        self,
        spec: MbrshpSpec,
        seed: int = 0,
        *,
        max_concurrent_views: int = 2,
    ) -> None:
        self.spec = spec
        self.rng = random.Random(seed)
        self.max_concurrent_views = max_concurrent_views
        self._cid_counter = itertools.count(start=1)
        self._vid_counter = itertools.count(start=1)

    # -- primitives -------------------------------------------------------

    def start_change_actions(self, members: Iterable[ProcessId]) -> List[Action]:
        """One fresh start_change per member of ``members``."""
        member_set = frozenset(members)
        actions = []
        for p in sorted(member_set):
            cid = max(next(self._cid_counter), self.spec.last_cid(p) + 1)
            actions.append(Action("mbrshp.start_change", (p, cid, member_set)))
        return actions

    def view_for_current_changes(self, members: Iterable[ProcessId]) -> View:
        """Assemble a view deliverable to each member after start_changes.

        The ``startId`` map is read off the members' latest start_changes,
        exactly how a real membership service builds it.
        """
        member_set = frozenset(members)
        start_ids = {p: self.spec.last_cid(p) for p in member_set}
        counter = max(next(self._vid_counter), self.spec.max_view_counter() + 1)
        return View(ViewId(counter), member_set, frozendict(start_ids))

    def view_actions(self, view: View, recipients: Optional[Iterable[ProcessId]] = None) -> List[Action]:
        targets = sorted(view.members if recipients is None else recipients)
        return [Action("mbrshp.view", (p, view)) for p in targets]

    # -- canned behaviours --------------------------------------------------

    def form_view(self, members: Iterable[ProcessId]) -> Tuple[View, List[Action]]:
        """A full, clean view change: start_changes then the view, for all.

        Returns the formed view and the action list (to be injected /
        executed in order).
        """
        member_set = frozenset(members)
        actions = self.start_change_actions(member_set)
        # The view must be assembled after the start_changes are applied,
        # so we pre-compute the cids the start_change actions will install.
        cids = {action.params[0]: action.params[1] for action in actions}
        counter = max(next(self._vid_counter), self.spec.max_view_counter() + 1)
        view = View(ViewId(counter), member_set, frozendict(cids))
        actions.extend(Action("mbrshp.view", (p, view)) for p in sorted(member_set))
        return view, actions

    def partitioned_views(
        self, groups: Sequence[Iterable[ProcessId]]
    ) -> Tuple[List[View], List[Action]]:
        """Concurrent disjoint views, one per group (partitionable service)."""
        views: List[View] = []
        actions: List[Action] = []
        for group in groups:
            view, group_actions = self.form_view(group)
            views.append(view)
            actions.extend(group_actions)
        return views, actions

    def random_behaviour(self, steps: int) -> List[Action]:
        """A chaotic but legal action sequence for adversarial tests.

        Mixes overlapping start_changes, views delivered to only some
        members (partitions), repeated reconfiguration attempts, and
        processes joining mid-change.
        """
        processes = list(self.spec.processes)
        actions: List[Action] = []
        for _ in range(steps):
            kind = self.rng.random()
            group_size = self.rng.randint(1, len(processes))
            group = frozenset(self.rng.sample(processes, group_size))
            if kind < 0.5:
                actions.extend(self.start_change_actions(group))
            else:
                _view, group_actions = self.form_view(group)
                # Sometimes withhold the view from a suffix of members,
                # modelling a partition striking mid-delivery.
                drop = self.rng.randint(0, group_size - 1)
                view_actions = [a for a in group_actions if a.name == "mbrshp.view"]
                keep = len(view_actions) - drop
                actions.extend(a for a in group_actions if a.name == "mbrshp.start_change")
                actions.extend(view_actions[:keep])
        return actions
