"""The blocking-client assumption, Figure 12.

``ClientSpec`` is the abstract specification of an application client at
one end-point: it eventually answers every ``block`` request with
``block_ok`` and refrains from sending until the next view.  The safety
proof of Self Delivery (Section 6.4) and the liveness proof (Section 7)
are both conditional on clients behaving this way.

``ScriptedClient`` is a concrete client usable in closed-system tests: it
sends payloads from a script while unblocked and acknowledges block
requests, which is exactly the fair behaviour the liveness property
assumes.
"""

from __future__ import annotations

import enum
from typing import Any, Deque, Iterable, List, Optional, Tuple

from collections import deque

from repro.ioa import Action, ActionKind, Automaton
from repro.types import ProcessId, View


class BlockStatus(enum.Enum):
    UNBLOCKED = "unblocked"
    REQUESTED = "requested"
    BLOCKED = "blocked"


class ClientSpec(Automaton):
    """CLIENT_p : SPEC (Figure 12)."""

    SIGNATURE = {
        "deliver": ActionKind.INPUT,  # (p, q, m)
        "view": ActionKind.INPUT,  # (p, v, T)
        "block": ActionKind.INPUT,  # (p,)
        # repro: allow[R3.missing-candidates] - concrete clients
        # (ScriptedClient) supply the candidates.
        "send": ActionKind.OUTPUT,  # (p, m)
        "block_ok": ActionKind.OUTPUT,  # (p,)
    }

    def __init__(self, pid: ProcessId, name: Optional[str] = None, **kwargs: Any) -> None:
        self.pid = pid
        super().__init__(name or f"client:{pid}", **kwargs)

    def _state(self) -> None:
        self.block_status = BlockStatus.UNBLOCKED

    def accepts(self, action: Action) -> bool:
        return super().accepts(action) and action.params and action.params[0] == self.pid

    # -- block_p() ----------------------------------------------------------

    def _eff_block(self, p: ProcessId) -> None:
        self.block_status = BlockStatus.REQUESTED

    # -- block_ok_p() --------------------------------------------------------

    def _pre_block_ok(self, p: ProcessId) -> bool:
        return self.block_status is BlockStatus.REQUESTED

    def _eff_block_ok(self, p: ProcessId) -> None:
        self.block_status = BlockStatus.BLOCKED

    def _candidates_block_ok(self) -> Iterable[Tuple[ProcessId]]:
        if self.block_status is BlockStatus.REQUESTED:
            yield (self.pid,)

    # -- send_p(m) -------------------------------------------------------------

    def _pre_send(self, p: ProcessId, m: Any) -> bool:
        return self.block_status is not BlockStatus.BLOCKED

    def _eff_send(self, p: ProcessId, m: Any) -> None:
        pass

    # -- deliver_p(q, m) / view_p(v, T) -------------------------------------------

    def _eff_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> None:
        pass

    def _eff_view(self, p: ProcessId, v: View, T: Any = None) -> None:
        self.block_status = BlockStatus.UNBLOCKED


# repro: allow[R5] - the send/block_ok race is the point: an adversarial
# scheduler may acknowledge the block before or after any given scripted
# send, and the Figure 12 contract must hold either way.
class ScriptedClient(ClientSpec):
    """A client that sends a scripted sequence of payloads when allowed.

    The script is consumed in order; one payload is offered per scheduler
    visit, so an adversarial scheduler may interleave sends with the view
    change arbitrarily - but never while blocked, per the parent's
    precondition.
    """

    def __init__(self, pid: ProcessId, script: Iterable[Any] = (), **kwargs: Any) -> None:
        self._initial_script = list(script)
        super().__init__(pid, **kwargs)

    def _state(self) -> None:
        self.script: Deque[Any] = deque(self._initial_script)
        self.sent: List[Any] = []
        self.delivered: List[Tuple[ProcessId, Any]] = []
        self.views: List[Tuple[View, Any]] = []

    def queue(self, *payloads: Any) -> None:
        """Append payloads for future sending."""
        self.script.extend(payloads)
        # Out-of-band state change: a composition caching this client's
        # (possibly empty) enabled set must re-enumerate the candidates.
        self.touch()

    def _candidates_send(self) -> Iterable[Tuple[ProcessId, Any]]:
        if self.script and self.block_status is not BlockStatus.BLOCKED:
            yield (self.pid, self.script[0])

    def _eff_send(self, p: ProcessId, m: Any) -> None:
        if self.script and self.script[0] == m:
            self.script.popleft()
        self.sent.append(m)

    def _eff_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> None:
        self.delivered.append((q, m))

    def _eff_view(self, p: ProcessId, v: View, T: Any = None) -> None:
        self.views.append((v, T))
