"""Abstract specification automata (paper Sections 3 and 4).

* :mod:`repro.spec.mbrshp` - the external membership service (Figure 2).
* :mod:`repro.spec.co_rfifo` - connection-oriented reliable FIFO
  multicast (Figure 3).
* :mod:`repro.spec.wv_rfifo` - within-view reliable FIFO multicast
  (Figure 4).
* :mod:`repro.spec.vs_rfifo` - virtual synchrony, a child of WV_RFIFO
  (Figure 5).
* :mod:`repro.spec.trans_set` - transitional sets (Figure 6).
* :mod:`repro.spec.self_delivery` - self delivery, a child of WV_RFIFO
  (Figure 7).
* :mod:`repro.spec.client` - the blocking client assumption (Figure 12).

These automata are executable: used forward they generate legal
behaviours (environments for the algorithm under test); used as acceptors
they check that a trace is legal (the safety checkers of
:mod:`repro.checking` replay traces through them).
"""

from repro.spec.client import BlockStatus, ClientSpec, ScriptedClient
from repro.spec.co_rfifo import CoRfifoSpec
from repro.spec.mbrshp import MbrshpSpec, MembershipDriver
from repro.spec.self_delivery import SelfDeliverySpec
from repro.spec.trans_set import TransSetSpec
from repro.spec.vs_rfifo import FullSafetySpec, VsRfifoSpec
from repro.spec.wv_rfifo import WvRfifoSpec

__all__ = [
    "BlockStatus",
    "ClientSpec",
    "CoRfifoSpec",
    "FullSafetySpec",
    "MbrshpSpec",
    "MembershipDriver",
    "ScriptedClient",
    "SelfDeliverySpec",
    "TransSetSpec",
    "VsRfifoSpec",
    "WvRfifoSpec",
]
