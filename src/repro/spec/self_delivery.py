"""Self Delivery specification, Figure 7.

SELF : SPEC is a child of WV_RFIFO : SPEC adding one precondition to
``view``: an end-point may not deliver a new view before it has delivered
to its own application every message that application sent in the current
view.  Stated as a *safety* property; combined with liveness Property 4.2
it implies the usual "processes eventually deliver their own messages".
"""

from __future__ import annotations

from typing import Any

from repro.ioa import ActionKind
from repro.spec.wv_rfifo import WvRfifoSpec
from repro.types import ProcessId, View


class SelfDeliverySpec(WvRfifoSpec):
    """SELF : SPEC MODIFIES WV_RFIFO : SPEC (Figure 7)."""

    SIGNATURE = {
        # repro: allow[R3.missing-candidates] - trace-checked spec; the
        # implementation trace drives it, never enabled_actions().
        "view": ActionKind.OUTPUT,  # modifies wv_rfifo.view (same params)
    }

    def _pre_view(self, p: ProcessId, v: View, T: Any = None) -> bool:
        sent = self.msgs[p].get(self.current_view[p], [])
        return self.last_dlvrd[(p, p)] == len(sent)
