"""Within-view reliable FIFO multicast specification, Figure 4.

WV_RFIFO : SPEC is a centralized automaton with per-(sender, view)
message queues.  It captures three guarantees at once: views preserve
Local Monotonicity and Self Inclusion; every message is delivered in the
view in which it was sent; and per-sender delivery within a view is
gap-free FIFO.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.ioa import ActionKind, Automaton
from repro.types import ProcessId, View, initial_view


class WvRfifoSpec(Automaton):
    """WV_RFIFO : SPEC (Figure 4).

    The ``view`` action carries ``(p, v, T)`` - the transitional-set
    parameter added by the TRANS_SET layer rides along unused here, so a
    single trace can be replayed through every spec in the stack.
    """

    SIGNATURE = {
        "send": ActionKind.INPUT,  # (p, m)
        "deliver": ActionKind.OUTPUT,  # (p, q, m)  receiver, sender
        # repro: allow[R3.missing-candidates] - trace-checked spec; the
        # implementation trace drives it, never enabled_actions().
        "view": ActionKind.OUTPUT,  # (p, v, T)
    }

    def __init__(self, processes: Iterable[ProcessId], name: str = "wv_rfifo_spec", **kwargs: Any) -> None:
        self.processes: Tuple[ProcessId, ...] = tuple(sorted(set(processes)))
        super().__init__(name, **kwargs)

    def _state(self) -> None:
        # msgs[p][v]: messages sent by p in view v, in send order.
        self.msgs: Dict[ProcessId, Dict[View, List[Any]]] = {p: {} for p in self.processes}
        # last_dlvrd[(q, p)]: index of the last message from q delivered to
        # p in p's current view (paper: last_dlvrd[q][p]).
        self.last_dlvrd: Dict[Tuple[ProcessId, ProcessId], int] = {
            (q, p): 0 for q in self.processes for p in self.processes
        }
        self.current_view: Dict[ProcessId, View] = {p: initial_view(p) for p in self.processes}

    # -- helpers ------------------------------------------------------------

    def _queue(self, p: ProcessId, v: View) -> List[Any]:
        return self.msgs[p].setdefault(v, [])

    # -- send_p(m) ------------------------------------------------------------

    def _eff_send(self, p: ProcessId, m: Any) -> None:
        self._queue(p, self.current_view[p]).append(m)

    # -- deliver_p(q, m) ---------------------------------------------------------

    def _pre_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> bool:
        queue = self.msgs[q].get(self.current_view[p], [])
        index = self.last_dlvrd[(q, p)]  # 0-based next == index
        return index < len(queue) and queue[index] == m

    def _eff_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> None:
        self.last_dlvrd[(q, p)] += 1

    def _candidates_deliver(self) -> Iterable[Tuple[ProcessId, ProcessId, Any]]:
        for p in self.processes:
            view = self.current_view[p]
            for q in self.processes:
                queue = self.msgs[q].get(view, [])
                index = self.last_dlvrd[(q, p)]
                if index < len(queue):
                    yield (p, q, queue[index])

    # -- view_p(v) -----------------------------------------------------------------

    def _pre_view(self, p: ProcessId, v: View, T: Any = None) -> bool:
        return p in v.members and v.vid > self.current_view[p].vid

    def _eff_view(self, p: ProcessId, v: View, T: Any = None) -> None:
        for q in self.processes:
            self.last_dlvrd[(q, p)] = 0
        self.current_view[p] = v
