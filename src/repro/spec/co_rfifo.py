"""Connection-oriented reliable FIFO multicast specification, Figure 3.

The centralized CO_RFIFO automaton keeps a FIFO ``channel[p][q]`` per
ordered process pair.  ``reliable_p(set)`` declares to whom ``p`` wants
gap-free connections; messages to anyone else may lose an arbitrary
suffix (the ``lose`` internal action).  ``live_p(set)`` records the
*actual* network situation and only shapes the fairness (task) structure:
messages to live destinations must eventually be delivered.

Per Figure 8, the membership outputs may be linked to the ``live`` input
(``start_change_p(id, set)`` => ``live_p(set)``, ``view_p(v)`` =>
``live_p(v.set)``); pass ``link_membership=True`` to enable the linkage.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.ioa import Action, ActionKind, Automaton
from repro.types import ProcessId, View


# repro: allow[R5] - the deliver/lose choice on a channel IS the Figure 3
# nondeterminism: an unreliable channel either delivers the head or drops
# it, and schedulers are meant to explore both orders.
class CoRfifoSpec(Automaton):
    """The CO_RFIFO specification automaton (Figure 3)."""

    SIGNATURE = {
        "co_rfifo.send": ActionKind.INPUT,  # (p, set, m)
        "co_rfifo.reliable": ActionKind.INPUT,  # (p, set)
        "co_rfifo.live": ActionKind.INPUT,  # (p, set)
        "co_rfifo.deliver": ActionKind.OUTPUT,  # (p, q, m)   sender, receiver
        "co_rfifo.lose": ActionKind.INTERNAL,  # (p, q)
        "crash": ActionKind.INPUT,  # (p,)
    }

    # The Figure 8 membership linkage: instances accept the membership
    # outputs as extra inputs only when link_membership is requested.
    OPTIONAL_SIGNATURE = {
        "mbrshp.start_change": ActionKind.INPUT,  # (p, cid, set)
        "mbrshp.view": ActionKind.INPUT,  # (p, v)
    }

    def __init__(
        self,
        processes: Iterable[ProcessId],
        name: str = "co_rfifo",
        *,
        link_membership: bool = False,
        **kwargs: Any,
    ) -> None:
        self.processes: Tuple[ProcessId, ...] = tuple(sorted(set(processes)))
        self.link_membership = link_membership
        super().__init__(name, **kwargs)
        if link_membership:
            # Accept the membership outputs as extra inputs (Figure 8).
            self.enable_optional_actions("mbrshp.start_change", "mbrshp.view")

    def _state(self) -> None:
        self.channel: Dict[Tuple[ProcessId, ProcessId], Deque[Any]] = {
            (p, q): deque() for p in self.processes for q in self.processes
        }
        self.reliable_set: Dict[ProcessId, FrozenSet[ProcessId]] = {
            p: frozenset({p}) for p in self.processes
        }
        self.live_set: Dict[ProcessId, FrozenSet[ProcessId]] = {
            p: frozenset({p}) for p in self.processes
        }

    # -- send_p(set, m) ---------------------------------------------------

    def _eff_co_rfifo_send(self, p: ProcessId, targets: FrozenSet[ProcessId], m: Any) -> None:
        for q in targets:
            self.channel[(p, q)].append(m)

    # -- reliable_p(set) / live_p(set) -------------------------------------

    def _eff_co_rfifo_reliable(self, p: ProcessId, targets: FrozenSet[ProcessId]) -> None:
        self.reliable_set[p] = frozenset(targets)

    def _eff_co_rfifo_live(self, p: ProcessId, targets: FrozenSet[ProcessId]) -> None:
        self.live_set[p] = frozenset(targets)

    # -- linkage from membership outputs (Figure 8) -------------------------

    def _eff_mbrshp_start_change(self, p: ProcessId, cid: int, members: FrozenSet[ProcessId]) -> None:
        self.live_set[p] = frozenset(members)

    def _eff_mbrshp_view(self, p: ProcessId, v: View) -> None:
        self.live_set[p] = frozenset(v.members)

    # -- deliver_{p,q}(m) ----------------------------------------------------

    def _pre_co_rfifo_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> bool:
        chan = self.channel[(p, q)]
        return bool(chan) and chan[0] == m

    def _eff_co_rfifo_deliver(self, p: ProcessId, q: ProcessId, m: Any) -> None:
        self.channel[(p, q)].popleft()

    def _candidates_co_rfifo_deliver(self) -> Iterable[Tuple[ProcessId, ProcessId, Any]]:
        for (p, q), chan in self.channel.items():
            if chan:
                yield (p, q, chan[0])

    # -- lose(p, q) -----------------------------------------------------------

    def _pre_co_rfifo_lose(self, p: ProcessId, q: ProcessId) -> bool:
        return q not in self.reliable_set[p] and bool(self.channel[(p, q)])

    def _eff_co_rfifo_lose(self, p: ProcessId, q: ProcessId) -> None:
        self.channel[(p, q)].pop()  # dequeue the *last* message

    def _candidates_co_rfifo_lose(self) -> Iterable[Tuple[ProcessId, ProcessId]]:
        for (p, q), chan in self.channel.items():
            if chan and q not in self.reliable_set[p]:
                yield (p, q)

    # -- crash (Section 8) ------------------------------------------------------

    def _eff_crash(self, p: ProcessId) -> None:
        # The last messages from a crashed p may be dropped.
        self.reliable_set[p] = frozenset()
        self.live_set[p] = frozenset()

    # -- tasks (Figure 3) ----------------------------------------------------------

    def tasks(self) -> Dict[str, Any]:
        """One task per live (p, q) pair, plus a dummy task.

        Deliveries to destinations in ``live_set[p]`` must happen; the
        dummy task collects non-live deliveries and losses, which the
        fairness condition never forces.
        """

        def live_delivery(p: ProcessId, q: ProcessId) -> Callable[[Action], bool]:
            return (
                lambda action: action.name == "co_rfifo.deliver"
                and action.params[0] == p
                and action.params[1] == q
                and q in self.live_set[p]
            )

        tasks: Dict[str, Any] = {
            f"deliver[{p}][{q}]": live_delivery(p, q)
            for p in self.processes
            for q in self.processes
        }
        tasks["dummy"] = (
            lambda action: action.name == "co_rfifo.lose"
            or (
                action.name == "co_rfifo.deliver"
                and action.params[1] not in self.live_set[action.params[0]]
            )
        )
        return tasks
