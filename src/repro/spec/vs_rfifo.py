"""Virtually synchronous reliable FIFO multicast specification, Figure 5.

VS_RFIFO : SPEC is a *child* of WV_RFIFO : SPEC in the inheritance
construct of [26]: it adds the internal ``set_cut`` action which
non-deterministically fixes, per (old view, new view) pair, the vector of
last-delivered indices every process moving between the two views must
realise before delivering the new view.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.ioa import ActionKind
from repro.spec.self_delivery import SelfDeliverySpec
from repro.spec.wv_rfifo import WvRfifoSpec
from repro.types import Cut, ProcessId, View


class VsRfifoSpec(WvRfifoSpec):
    """VS_RFIFO : SPEC MODIFIES WV_RFIFO : SPEC (Figure 5)."""

    SIGNATURE = {
        # repro: allow[R3.missing-candidates] - trace-checked spec; the
        # implementation trace drives it, never enabled_actions().
        "view": ActionKind.OUTPUT,  # modifies wv_rfifo.view (same params)
        # repro: allow[R3.missing-candidates]
        "set_cut": ActionKind.INTERNAL,  # (v, v', c) new
    }

    def _state(self) -> None:
        # cut[(v, v')]: the agreed delivery cut for moving from v to v',
        # or absent (the paper's bottom) while not yet fixed.
        self.cut: Dict[Tuple[View, View], Cut] = {}

    # -- set_cut(v, v', c) -------------------------------------------------

    def _pre_set_cut(self, v: View, v_new: View, c: Cut) -> bool:
        return (v, v_new) not in self.cut

    def _eff_set_cut(self, v: View, v_new: View, c: Cut) -> None:
        self.cut[(v, v_new)] = c

    # -- view_p(v) restriction ------------------------------------------------

    def _pre_view(self, p: ProcessId, v: View, T: Any = None) -> bool:
        key = (self.current_view[p], v)
        if key not in self.cut:
            return False
        cut = self.cut[key]
        return all(self.last_dlvrd[(q, p)] == cut.get(q, 0) for q in self.processes)

    def cut_for(self, old: View, new: View) -> Optional[Cut]:
        return self.cut.get((old, new))


class FullSafetySpec(VsRfifoSpec, SelfDeliverySpec):
    """The conjunction of VS_RFIFO : SPEC and SELF : SPEC.

    Both are children of WV_RFIFO : SPEC; composing their transition
    restrictions (this class's MRO conjoins every ``view`` precondition)
    yields the complete safety specification the GCS automaton must
    satisfy, except for TRANS_SET : SPEC which is stated as a separate
    automaton (Figure 6) and checked independently.
    """
