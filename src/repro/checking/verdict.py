"""The single-pass verdict engine: every trace rule, one earliest witness.

:func:`run_verdict` runs a set of registered rules
(:mod:`repro.checking.codes`) over a :class:`~repro.checking.events.GcsTrace`
in one pass and returns a structured :class:`Verdict`: ``PASS``, or
``FAIL`` with one :class:`Violation` per violated rule, each carrying the
**earliest** event index witnessing that rule's violation.

Witness semantics: for a rule R, ``witness_index`` is the smallest ``i``
such that the prefix ``trace[0..i]`` already violates R.  Violations that
involve a pair of events (a FIFO inversion, co-movers disagreeing) are
therefore witnessed at the *later* event - the first point where the run
is demonstrably wrong.  End-of-run violations (liveness, a missing
element under a golden skeleton) are witnessed at ``len(trace)``: no
prefix violates them, only the completed run does.

Each rule is an incremental object fed ``(index, event)`` pairs; a rule
retires at its first violation, so its reported witness is minimal by
construction.  Violations are ordered by the deterministic key of
:func:`repro.checking.codes.violation_sort_key` and the verdict
serialises to canonical JSON - two runs over the same trace are
byte-identical.

Soundness: a ``PASS`` verdict means no *registered* rule in the run's
rule set was violated *on the observed run*.  It says nothing about
other schedules, other interleavings, or properties outside the
registry; see :data:`SOUNDNESS`.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro._collections import frozendict
from repro.checking.codes import DEFAULT_CODES, REGISTRY, violation_sort_key
from repro.checking.events import (
    CrashEvent,
    DeliverEvent,
    GcsEvent,
    GcsTrace,
    MbrshpFormEvent,
    MbrshpStartChangeEvent,
    MbrshpViewEvent,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.checking.refinement import SkeletonBuilder, TraceSkeleton, skeleton_divergence
from repro.errors import ActionNotEnabled
from repro.ioa import Action
from repro.spec.mbrshp import MbrshpSpec
from repro.spec.vs_rfifo import FullSafetySpec
from repro.types import ProcessId, View, initial_view

#: The run-level guarantee a PASS verdict makes - nothing more.
SOUNDNESS = (
    "PASS => no registered rule in this verdict's rule set was violated on "
    "the observed run; nothing is implied about other schedules or about "
    "properties outside the code registry"
)


@dataclass(frozen=True)
class Violation:
    """One violated rule: stable code, earliest witness, human message."""

    code: str
    witness_index: int
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "witness_index": self.witness_index,
            "message": self.message,
        }


@dataclass(frozen=True)
class Verdict:
    """The structured outcome of one verdict-engine pass over a trace."""

    status: str  # "PASS" | "FAIL"
    events: int  # trace length
    rules: Tuple[str, ...]  # codes that ran, sorted
    violations: Tuple[Violation, ...]  # deterministically ordered

    @property
    def ok(self) -> bool:
        return self.status == "PASS"

    @property
    def primary(self) -> Optional[Violation]:
        """The headline violation: earliest witness, then class, then code."""
        return self.violations[0] if self.violations else None

    @property
    def witness_index(self) -> Optional[int]:
        return self.primary.witness_index if self.primary else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "events": self.events,
            "rules": list(self.rules),
            "soundness": SOUNDNESS,
            "violations": [violation.to_dict() for violation in self.violations],
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Canonical JSON: key-sorted, time-free, byte-stable per trace."""
        if indent is None:
            return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


# ----------------------------------------------------------------------
# Incremental rules
# ----------------------------------------------------------------------


class TraceRule:
    """One registered rule, fed the trace event by event.

    ``feed`` returns the rule's violation the first time the prefix
    ``trace[0..index]`` violates it (the engine then retires the rule, so
    the reported witness is the minimal one); ``finish`` reports
    violations only a completed run can exhibit.
    """

    code: str = ""

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        return None

    def finish(self, length: int) -> Optional[Violation]:
        return None

    def _violation(self, index: int, message: str) -> Violation:
        return Violation(self.code, index, message)


class SelfInclusionRule(TraceRule):
    """Section 3.1: every view delivered to p includes p."""

    code = "VS-SELF-INCL"

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        if isinstance(event, (ViewEvent, MbrshpViewEvent)):
            if event.proc not in event.view.members:
                return self._violation(
                    index,
                    f"Self Inclusion: {event.proc} received {event.view} without itself",
                )
        return None


class MonotonicityRule(TraceRule):
    """Section 3.1: view identifiers at each process strictly increase."""

    code = "VS-MONO"

    def __init__(self) -> None:
        self._last: Dict[Tuple[ProcessId, type], View] = {}

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        if isinstance(event, (ViewEvent, MbrshpViewEvent)):
            key = (event.proc, type(event))
            previous = self._last.get(key)
            if previous is not None and not previous.vid < event.view.vid:
                return self._violation(
                    index,
                    f"Local Monotonicity: {event.proc} got {event.view.vid!r} "
                    f"after {previous.vid!r}",
                )
            self._last[key] = event.view
        return None


class SelfDeliveryRule(TraceRule):
    """Figure 7: before each view change, p delivered everything it sent."""

    code = "VS-SELF-DLV"

    def __init__(self) -> None:
        self._sent: Dict[ProcessId, int] = defaultdict(int)
        self._self_delivered: Dict[ProcessId, int] = defaultdict(int)

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        if isinstance(event, CrashEvent):
            # messages lost to the crash are exempt (Section 8)
            self._sent[event.proc] = 0
            self._self_delivered[event.proc] = 0
        elif isinstance(event, SendEvent):
            self._sent[event.proc] += 1
        elif isinstance(event, DeliverEvent) and event.sender == event.proc:
            self._self_delivered[event.proc] += 1
        elif isinstance(event, ViewEvent):
            p = event.proc
            if self._sent[p] != self._self_delivered[p]:
                return self._violation(
                    index,
                    f"Self Delivery: {p} moved to {event.view} with "
                    f"{self._sent[p]} sent but {self._self_delivered[p]} "
                    f"self-delivered",
                )
            self._sent[p] = 0
            self._self_delivered[p] = 0
        return None


class VirtualSynchronyRule(TraceRule):
    """Section 4.1: co-movers deliver the same messages in the old view.

    With gap-free FIFO per sender, "the same set" reduces to the same
    per-sender delivery counts at the moment of leaving the old view; the
    violation is witnessed at the second mover's view event.
    """

    code = "VS-VSYNC"

    def __init__(self) -> None:
        self._agreed: Dict[Tuple[View, View], Tuple[Dict[ProcessId, int], ProcessId]] = {}
        self._counts: Dict[ProcessId, Dict[ProcessId, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._current: Dict[ProcessId, View] = {}

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        if isinstance(event, RecoverEvent):
            # Section 8: restart in the initial view with empty history.
            self._counts[event.proc] = defaultdict(int)
            self._current[event.proc] = initial_view(event.proc)
        elif isinstance(event, DeliverEvent):
            self._counts[event.proc][event.sender] += 1
        elif isinstance(event, ViewEvent):
            p = event.proc
            old = self._current.get(p, initial_view(p))
            vector = dict(self._counts[p])
            key = (old, event.view)
            if key in self._agreed:
                expected, witness = self._agreed[key]
                if expected != vector:
                    return self._violation(
                        index,
                        f"Virtual Synchrony: {p} left {old} for {event.view} having "
                        f"delivered {vector}, but {witness} delivered {expected}",
                    )
            else:
                self._agreed[key] = (vector, p)
            self._counts[p] = defaultdict(int)
            self._current[p] = event.view
        return None


class TransSetRule(TraceRule):
    """Property 4.1: the decidable-from-the-trace transitional-set laws.

    For every delivery of v' at p from previous view v, with set T_p:
    (a) p is in T_p; (b) T_p is within v.set & v'.set; (c) if q also
    delivers v' (from view u), then q is in T_p iff u == v; (d) two
    deliverers of v' from the same previous view report identical T.

    Pairwise conditions are checked when the *second* member of the pair
    arrives, so every violation is witnessed at the earliest event whose
    prefix already violates the property - the previous batch-mode
    checker grouped by view and could report a later event first.
    """

    code = "VS-TRANS-SET"

    def __init__(self) -> None:
        self._current: Dict[ProcessId, View] = {}
        # arrival-ordered (proc, previous view, T) per new view
        self._arrivals: Dict[View, List[Tuple[ProcessId, View, FrozenSet[ProcessId]]]] = {}

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        if isinstance(event, RecoverEvent):
            self._current[event.proc] = initial_view(event.proc)  # Section 8
            return None
        if not isinstance(event, ViewEvent):
            return None
        p = event.proc
        old = self._current.get(p, initial_view(p))
        new_view = event.view
        T = event.transitional
        if p not in T:
            return self._violation(
                index, f"Transitional Set: {p} not in its own T for {new_view}"
            )
        if not T <= (old.members & new_view.members):
            return self._violation(
                index,
                f"Transitional Set: T of {p} for {new_view} is not within "
                f"{old} intersect {new_view}",
            )
        for q, q_old, q_T in self._arrivals.get(new_view, ()):
            if q_old == old and q_T != T:
                return self._violation(
                    index,
                    f"Transitional Set: deliverers of {new_view} from {old} "
                    f"disagree: {sorted(q_T)} vs {sorted(T)}",
                )
            moved_with = q_old == old
            if q in (old.members & new_view.members) and moved_with != (q in T):
                return self._violation(
                    index,
                    f"Transitional Set: {q} moved to {new_view} from "
                    f"{q_old} but {p} (from {old}) "
                    f"{'included' if q in T else 'excluded'} it",
                )
            if p in (q_old.members & new_view.members) and moved_with != (p in q_T):
                return self._violation(
                    index,
                    f"Transitional Set: {p} moved to {new_view} from "
                    f"{old} but {q} (from {q_old}) "
                    f"{'included' if p in q_T else 'excluded'} it",
                )
        self._arrivals.setdefault(new_view, []).append((p, old, T))
        self._current[p] = new_view
        return None


class SpecRefinementRule(TraceRule):
    """Trace inclusion in WV_RFIFO + VS_RFIFO + SELF (Figures 4, 5, 7)."""

    code = "VS-SPEC-REFINE"

    def __init__(self, processes: Tuple[ProcessId, ...]) -> None:
        self._spec = FullSafetySpec(processes)

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        try:
            if isinstance(event, SendEvent):
                self._spec.apply(Action("send", (event.proc, event.payload)))
            elif isinstance(event, DeliverEvent):
                self._spec.apply(
                    Action("deliver", (event.proc, event.sender, event.payload))
                )
            elif isinstance(event, ViewEvent):
                infer_set_cut(self._spec, event)
                self._spec.apply(
                    Action("view", (event.proc, event.view, event.transitional))
                )
            elif isinstance(event, RecoverEvent):
                reset_recovered_process(self._spec, event.proc)
        except ActionNotEnabled as exc:
            return self._violation(
                index, f"trace not accepted by {type(self._spec).__name__}: {exc}"
            )
        return None


class MbrshpConformanceRule(TraceRule):
    """Figure 2: the membership notices are a behaviour of MBRSHP."""

    code = "MBRSHP-CONF"

    def __init__(self, processes: Iterable[ProcessId]) -> None:
        procs = sorted(set(processes))
        self._spec = MbrshpSpec(procs) if procs else None

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        if self._spec is None:
            return None
        try:
            if isinstance(event, MbrshpStartChangeEvent):
                self._spec.apply(
                    Action(
                        "mbrshp.start_change",
                        (event.proc, event.cid, frozenset(event.members)),
                    )
                )
            elif isinstance(event, MbrshpViewEvent):
                self._spec.apply(Action("mbrshp.view", (event.proc, event.view)))
            elif isinstance(event, CrashEvent):
                self._spec.apply(Action("crash", (event.proc,)))
            elif isinstance(event, RecoverEvent):
                self._spec.apply(Action("recover", (event.proc,)))
        except ActionNotEnabled as exc:
            return self._violation(index, f"MBRSHP conformance (Figure 2): {exc}")
        return None


class ServerForkRule(TraceRule):
    """Section 8 fault domain: one view identifier denotes one view.

    A membership server recovering with forgotten state can re-form a
    view under an identifier it already used - a *fork*: two different
    views share a ``ViewId``.  The rule indexes every view observation
    (formations and deliveries alike) by identifier; any two bearing the
    same identifier must be the same view triple.  Order-insensitive,
    hence sound under arbitrary notice-delivery interleavings.
    """

    code = "MBRSHP-SRV-FORK"

    def __init__(self) -> None:
        self._by_vid: Dict[Any, View] = {}

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        if isinstance(event, (ViewEvent, MbrshpViewEvent, MbrshpFormEvent)):
            view = event.view
            first = self._by_vid.setdefault(view.vid, view)
            if first != view:
                return self._violation(
                    index,
                    f"Server fork: {view.vid!r} denotes both {first} and {view}",
                )
        return None


class ServerCounterMonotonicityRule(TraceRule):
    """Section 8 fault domain: an origin's formed counters strictly increase.

    Reads only :class:`MbrshpFormEvent` records *emitted by the origin
    server itself* (``event.proc == view.vid.origin``).  One server's
    formations are sequential and recorded at formation time, so their
    trace order is its causal order - unlike client-side deliveries,
    whose interleaving across processes is racy.  A server restored from
    the durable watermark store always resumes above its own highest
    issued counter; a recovery that *forgot* the watermark re-forms with
    a stale counter and fails here, at the forgery's formation event.

    Honest limit: a forgetful server that is not the minimum of its
    component (hence not the origin) can drag a component's counter down
    only if every peer's proposal watermark is also stale; the
    one-server recovery scenario this PR mechanises always makes the
    recovering server its own component's origin.
    """

    code = "MBRSHP-SRV-MONO"

    def __init__(self) -> None:
        self._issued: Dict[str, int] = {}

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        if not isinstance(event, MbrshpFormEvent):
            return None
        vid = event.view.vid
        if event.proc != vid.origin:
            return None  # co-former: its order is the origin's business
        high = self._issued.get(vid.origin)
        if high is not None and vid.counter <= high:
            return self._violation(
                index,
                f"Server counter regression: origin {vid.origin} formed "
                f"{event.view} with counter {vid.counter} after issuing "
                f"counter {high}",
            )
        self._issued[vid.origin] = vid.counter
        return None


class LivenessRule(TraceRule):
    """Property 4.2 for a stabilised run; witnessed at len(trace).

    No prefix violates liveness - only the completed run does - so the
    witness index is the trace length, by the earliest-prefix convention.
    """

    code = "VS-LIVE"

    def __init__(self, final_view: View) -> None:
        self._final = final_view
        self._current: Dict[ProcessId, View] = {}
        self._delivered_final: set = set()
        self._sent: Dict[ProcessId, List[Any]] = {}
        self._got: Dict[Tuple[ProcessId, ProcessId], List[Any]] = {}

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        p = event.proc
        if isinstance(event, RecoverEvent):
            self._current[p] = initial_view(p)
        elif isinstance(event, ViewEvent):
            self._current[p] = event.view
            if event.view == self._final:
                self._delivered_final.add(p)
        elif isinstance(event, SendEvent) and self._current.get(p) == self._final:
            self._sent.setdefault(p, []).append(event.payload)
        elif isinstance(event, DeliverEvent) and self._current.get(p) == self._final:
            self._got.setdefault((p, event.sender), []).append(event.payload)
        return None

    def finish(self, length: int) -> Optional[Violation]:
        members = sorted(self._final.members)
        for p in members:
            if p not in self._delivered_final:
                return self._violation(
                    length,
                    f"Liveness: {p} never delivered the stable view {self._final}",
                )
        for p in members:
            payloads = self._sent.get(p, [])
            for q in members:
                got = self._got.get((q, p), [])
                if got != payloads:
                    return self._violation(
                        length,
                        f"Liveness: {q} delivered {got} from {p} in {self._final}, "
                        f"expected {payloads}",
                    )
        return None


class GoldenSkeletonRule(TraceRule):
    """Golden-trace mode: the observed skeleton equals the recorded one."""

    code = "VS-SKEL"

    def __init__(self, golden: TraceSkeleton) -> None:
        self._golden = golden
        self._builder = SkeletonBuilder()

    def feed(self, index: int, event: GcsEvent) -> Optional[Violation]:
        self._builder.feed(index, event)
        return None

    def finish(self, length: int) -> Optional[Violation]:
        found = skeleton_divergence(self._golden, self._builder, length)
        if found is not None:
            index, message = found
            return self._violation(index, f"Golden skeleton: {message}")
        return None


# ----------------------------------------------------------------------
# Spec-replay helpers (shared with repro.checking.properties)
# ----------------------------------------------------------------------


def reset_recovered_process(spec: Any, proc: ProcessId) -> None:
    """Section 8: a recovered end-point restarts from its initial state.

    The spec mirrors the algorithm's reset (current view, delivery
    indices, the initial-view send queue).  Local Monotonicity of the
    views the recovered process subsequently *delivers* is checked
    separately by :class:`MonotonicityRule`, which deliberately does not
    reset - the membership watermarks survive crashes.
    """
    spec.current_view[proc] = initial_view(proc)
    for q in spec.processes:
        spec.last_dlvrd[(q, proc)] = 0
    spec.msgs[proc].pop(initial_view(proc), None)


def infer_set_cut(spec: Any, event: ViewEvent) -> None:
    """Choose the unique enabling ``set_cut`` for a pending view step.

    The first process to move from view v to view v' fixes the cut to the
    last-delivered vector it realised; every later mover must match it
    (Corollary 6.1 made operational).
    """
    old = spec.current_view[event.proc]
    if (old, event.view) in spec.cut:
        return
    vector = frozendict(
        {q: spec.last_dlvrd[(q, event.proc)] for q in spec.processes}
    )
    spec.apply(Action("set_cut", (old, event.view, vector)))


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


def first_violation(trace: GcsTrace, rule: TraceRule) -> Optional[Violation]:
    """Run one rule alone over ``trace``; its earliest violation or None."""
    for index, event in enumerate(trace):
        violation = rule.feed(index, event)
        if violation is not None:
            return violation
    return rule.finish(len(trace))


def _build_rules(
    codes: Tuple[str, ...],
    trace: GcsTrace,
    processes: Optional[Iterable[ProcessId]],
    final_view: Optional[View],
    golden: Optional[TraceSkeleton],
) -> List[TraceRule]:
    spec_procs = (
        tuple(processes)
        if processes is not None
        else tuple(sorted(trace.processes()))
    )
    factories = {
        "VS-SELF-INCL": SelfInclusionRule,
        "VS-MONO": MonotonicityRule,
        "VS-SELF-DLV": SelfDeliveryRule,
        "VS-VSYNC": VirtualSynchronyRule,
        "VS-TRANS-SET": TransSetRule,
        "VS-SPEC-REFINE": lambda: SpecRefinementRule(spec_procs),
        "MBRSHP-CONF": lambda: MbrshpConformanceRule(
            mbrshp_processes(trace, processes)
        ),
        "MBRSHP-SRV-FORK": ServerForkRule,
        "MBRSHP-SRV-MONO": ServerCounterMonotonicityRule,
        "VS-LIVE": lambda: LivenessRule(final_view),
        "VS-SKEL": lambda: GoldenSkeletonRule(golden),
    }
    return [factories[code]() for code in codes]


def mbrshp_processes(
    trace: GcsTrace, processes: Optional[Iterable[ProcessId]]
) -> FrozenSet[ProcessId]:
    """The process universe for MBRSHP conformance (Figure 2 replay)."""
    if processes is not None:
        return frozenset(processes)
    procs = set(trace.processes())
    for event in trace.of_type(ViewEvent, MbrshpViewEvent):
        procs |= set(event.view.members)
    return frozenset(procs)


def run_verdict(
    trace: GcsTrace,
    processes: Optional[Iterable[ProcessId]] = None,
    *,
    final_view: Optional[View] = None,
    golden: Optional[TraceSkeleton] = None,
    include: Optional[Iterable[str]] = None,
) -> Verdict:
    """One pass of every selected rule over ``trace``; the full verdict.

    ``include`` selects the rule set (default :data:`DEFAULT_CODES`);
    giving ``final_view`` adds VS-LIVE and ``golden`` adds VS-SKEL.  Each
    rule contributes at most one violation - its earliest - and the
    result is deterministically ordered and byte-stable under
    :meth:`Verdict.to_json`.
    """
    codes = list(include) if include is not None else list(DEFAULT_CODES)
    if final_view is not None and "VS-LIVE" not in codes:
        codes.append("VS-LIVE")
    if golden is not None and "VS-SKEL" not in codes:
        codes.append("VS-SKEL")
    for code in codes:
        info = REGISTRY.get(code)
        if info is None:
            raise ValueError(f"unknown violation code {code!r}")
        if not info.trace_rule:
            raise ValueError(f"{code} is a runtime finding, not a trace rule")
    if "VS-LIVE" in codes and final_view is None:
        raise ValueError("VS-LIVE requires final_view")
    if "VS-SKEL" in codes and golden is None:
        raise ValueError("VS-SKEL requires a golden skeleton")

    rules = _build_rules(tuple(codes), trace, processes, final_view, golden)
    violations: List[Violation] = []
    active = list(rules)
    for index, event in enumerate(trace):
        if not active:
            break
        survivors = []
        for rule in active:
            violation = rule.feed(index, event)
            if violation is None:
                survivors.append(rule)
            else:
                violations.append(violation)  # the rule retires: witness is minimal
        active = survivors
    for rule in active:
        violation = rule.finish(len(trace))
        if violation is not None:
            violations.append(violation)

    violations.sort(key=lambda v: violation_sort_key(v.code, v.witness_index))
    return Verdict(
        status="PASS" if not violations else "FAIL",
        events=len(trace),
        rules=tuple(sorted(codes)),
        violations=tuple(violations),
    )


__all__ = [
    "GoldenSkeletonRule",
    "LivenessRule",
    "MbrshpConformanceRule",
    "MonotonicityRule",
    "SOUNDNESS",
    "SelfDeliveryRule",
    "SelfInclusionRule",
    "ServerCounterMonotonicityRule",
    "ServerForkRule",
    "SpecRefinementRule",
    "TraceRule",
    "TransSetRule",
    "Verdict",
    "VirtualSynchronyRule",
    "Violation",
    "first_violation",
    "infer_set_cut",
    "mbrshp_processes",
    "reset_recovered_process",
    "run_verdict",
]
