"""The paper's invariants (6.1-6.13, 7.1, 7.2) as executable predicates.

The proofs of Sections 6 and 7 establish these assertions inductively;
here they become runtime checks, asserted after every step of a
model-based test run.  A failure raises
:class:`~repro.errors.InvariantViolation` naming the invariant.

The checks need a view of the *whole* system state - end-points, CO_RFIFO
channels, membership, clients.  :class:`WorldView` adapts either an IOA
composition or the discrete-event simulator to the shape the predicates
expect.

Invariant 6.10 concerns the prophecy variable ``P_legal_views`` used in
the TS simulation proof; it has no concrete system state to check and is
covered instead by the refinement checker in
:mod:`repro.checking.refinement`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.messages import AppMsg, FwdMsg, SyncMsg, ViewMsg
from repro.core.vs_endpoint import VsRfifoTsEndpoint
from repro.core.wv_endpoint import WvRfifoEndpoint
from repro.errors import InvariantViolation
from repro.spec.client import BlockStatus, ClientSpec
from repro.spec.co_rfifo import CoRfifoSpec
from repro.spec.mbrshp import MbrshpSpec
from repro.types import ProcessId, View


class WorldView:
    """A uniform read-only view of a running system's global state."""

    def __init__(
        self,
        endpoints: Dict[ProcessId, WvRfifoEndpoint],
        channel_of: Callable[[ProcessId, ProcessId], Sequence[Any]],
        reliable_set_of: Callable[[ProcessId], Iterable[ProcessId]],
        mbrshp: Optional[MbrshpSpec] = None,
        clients: Optional[Dict[ProcessId, ClientSpec]] = None,
    ) -> None:
        self.endpoints = endpoints
        self.channel_of = channel_of
        self.reliable_set_of = reliable_set_of
        self.mbrshp = mbrshp
        self.clients = clients or {}

    @classmethod
    def from_composition(cls, system: Any) -> "WorldView":
        """Build from an :class:`~repro.ioa.composition.Composition`."""
        endpoints: Dict[ProcessId, WvRfifoEndpoint] = {}
        clients: Dict[ProcessId, ClientSpec] = {}
        co_rfifo: Optional[CoRfifoSpec] = None
        mbrshp: Optional[MbrshpSpec] = None
        for component in system.components:
            if isinstance(component, WvRfifoEndpoint):
                endpoints[component.pid] = component
            elif isinstance(component, ClientSpec):
                clients[component.pid] = component
            elif isinstance(component, CoRfifoSpec):
                co_rfifo = component
            elif isinstance(component, MbrshpSpec):
                mbrshp = component
        if co_rfifo is None:
            raise ValueError("composition has no CoRfifoSpec component")
        net = co_rfifo
        return cls(
            endpoints,
            channel_of=lambda p, q: list(net.channel[(p, q)]),
            reliable_set_of=lambda p: net.reliable_set[p],
            mbrshp=mbrshp,
            clients=clients,
        )

    @classmethod
    def from_sim_world(cls, world: Any) -> "WorldView":
        """Build from a :class:`~repro.net.world.SimWorld`.

        The CO_RFIFO "channel" from p to q is reconstructed as the
        concatenation of p's transport backlog towards q (retransmit +
        pending) and the network's in-flight messages on the (p, q) link -
        exactly the unreceived FIFO suffix the centralized automaton
        models.
        """
        endpoints = {pid: node.endpoint for pid, node in world.nodes.items()}

        def channel_of(p: ProcessId, q: ProcessId) -> List[Any]:
            node = world.nodes.get(p)
            if node is None:
                return []
            transport = node.transport
            queued: List[Any] = []
            queued.extend(transport._retransmit.get(q, ()))
            queued.extend(transport._pending.get(q, ()))
            flight = world.network._in_flight.get((p, q), ())
            # Each in-flight entry is a carrier batching one or more wire
            # copies; channel order is carrier order then copy order.
            in_flight = [
                wire
                for event, carrier in flight
                if not event.cancelled
                for wire in carrier.copies
            ]
            return in_flight + queued

        return cls(
            endpoints,
            channel_of=channel_of,
            reliable_set_of=lambda p: world.nodes[p].transport.reliable_set,
            mbrshp=None,
            clients=None,
        )

    def processes(self) -> List[ProcessId]:
        return sorted(self.endpoints)


def _fail(name: str, message: str) -> None:
    raise InvariantViolation(f"Invariant {name}: {message}")


# ----------------------------------------------------------------------
# Section 6.1 - within-view reliable FIFO
# ----------------------------------------------------------------------


def invariant_6_1(world: WorldView) -> None:
    """Self inclusion of mbrshp_view and current_view at every end-point."""
    for p, ep in world.endpoints.items():
        if p not in ep.mbrshp_view.members:
            _fail("6.1", f"{p} not in its mbrshp_view {ep.mbrshp_view}")
        if p not in ep.current_view.members:
            _fail("6.1", f"{p} not in its current_view {ep.current_view}")


def invariant_6_2(world: WorldView) -> None:
    """view_msg[p] == current_view implies current_view.set within reliable_set."""
    for p, ep in world.endpoints.items():
        if ep.view_msg_of(p) == ep.current_view:
            if not ep.current_view.members <= frozenset(ep.reliable_set):
                _fail(
                    "6.2",
                    f"{p} announced {ep.current_view} but reliable_set is "
                    f"{sorted(ep.reliable_set)}",
                )


def invariant_6_3(world: WorldView) -> None:
    """Monotonicity of the view_msg stream on every channel (3 parts)."""
    for p, sender in world.endpoints.items():
        for q, receiver in world.endpoints.items():
            if p == q:
                continue
            seq = [receiver.view_msg_of(p)]
            seq += [m.view for m in world.channel_of(p, q) if isinstance(m, ViewMsg)]
            for older, newer in zip(seq, seq[1:]):
                if not older.vid < newer.vid:
                    _fail("6.3.1", f"view_msg stream {p}->{q} not increasing: {seq}")
            announced = sender.view_msg_of(p) == sender.current_view
            if not announced:
                if not seq[-1].vid < sender.current_view.vid:
                    _fail(
                        "6.3.2",
                        f"{p} has not announced {sender.current_view} but the "
                        f"stream to {q} already reaches {seq[-1]}",
                    )
            elif q in sender.current_view.members:
                if seq[-1] != sender.current_view:
                    _fail(
                        "6.3.3",
                        f"{p} announced {sender.current_view} to its view but the "
                        f"stream to member {q} ends at {seq[-1]}",
                    )


def invariant_6_4(world: WorldView) -> None:
    """History views of in-transit app messages match the view_msg stream."""
    for p in world.endpoints:
        for q, receiver in world.endpoints.items():
            if p == q:
                continue
            context = receiver.view_msg_of(p)
            for m in world.channel_of(p, q):
                if isinstance(m, ViewMsg):
                    context = m.view
                elif isinstance(m, AppMsg) and m.history_view is not None:
                    if m.history_view != context:
                        _fail(
                            "6.4",
                            f"app message {m.payload!r} on {p}->{q} tagged "
                            f"{m.history_view} but stream context is {context}",
                        )


def invariant_6_5(world: WorldView) -> None:
    """History indices equal preceding same-view messages plus received ones."""
    for p in world.endpoints:
        for q, receiver in world.endpoints.items():
            if p == q:
                continue
            counts: Dict[View, int] = {}
            base_view = receiver.view_msg_of(p)
            counts[base_view] = receiver.rcvd(p)
            for m in world.channel_of(p, q):
                if isinstance(m, ViewMsg):
                    counts[m.view] = 0
                elif isinstance(m, AppMsg) and m.history_index is not None:
                    view = m.history_view
                    counts[view] = counts.get(view, 0) + 1
                    if m.history_index != counts[view]:
                        _fail(
                            "6.5",
                            f"app message {m.payload!r} on {p}->{q} has history "
                            f"index {m.history_index}, expected {counts[view]}",
                        )


def invariant_6_6(world: WorldView) -> None:
    """Buffered/in-transit copies agree with the sender's original queue."""
    endpoints = world.endpoints

    def original(owner: ProcessId, view: View, index: int) -> Any:
        ep = endpoints.get(owner)
        if ep is None:
            return None
        log = ep.peek_buffer(owner, view)
        return log.get(index) if log is not None else None

    for p in endpoints:
        for q in endpoints:
            if p == q:
                continue
            for m in world.channel_of(p, q):
                if isinstance(m, AppMsg) and m.history_view is not None:
                    if original(p, m.history_view, m.history_index) != m.payload:
                        _fail("6.6.1", f"in-transit app message {m.payload!r} not on {p}'s queue")
                elif isinstance(m, FwdMsg):
                    if original(m.origin, m.view, m.index) != m.payload:
                        _fail("6.6.2", f"forwarded {m.payload!r} differs from {m.origin}'s queue")
    for q, ep in endpoints.items():
        for p, buffers in ep.msgs.items():
            if p == q:
                continue
            for view, log in buffers.items():
                for index in range(1, log.last_index() + 1):
                    if log.has(index) and original(p, view, index) != log.get(index):
                        _fail(
                            "6.6.3",
                            f"{q}'s copy of msgs[{p}][{view}][{index}] differs "
                            f"from {p}'s original",
                        )


# ----------------------------------------------------------------------
# Section 6.2-6.4 - virtual synchrony and self delivery
# ----------------------------------------------------------------------


def _vs_endpoints(world: WorldView) -> Dict[ProcessId, VsRfifoTsEndpoint]:
    return {
        p: ep for p, ep in world.endpoints.items() if isinstance(ep, VsRfifoTsEndpoint)
    }


def invariant_6_7(world: WorldView) -> None:
    """A received sync message equals the copy stored at its sender.

    The compact variant of Section 5.2.4 is exempt by construction: it
    deliberately omits the view and cut, and recipients only ever use it
    as a "not in your transitional set" marker.
    """
    endpoints = _vs_endpoints(world)
    for q, ep in endpoints.items():
        for p, by_cid in ep.sync_msg.items():
            if p == q or p not in endpoints:
                continue
            for cid, copy in by_cid.items():
                if getattr(copy, "compact", False):
                    continue
                origin = endpoints[p].sync_msg_for(p, cid)
                if origin != copy:
                    _fail("6.7", f"{q}'s copy of sync_msg[{p}][{cid}] differs from {p}'s")


def invariant_6_8(world: WorldView) -> None:
    """No sync message exists for a cid beyond MBRSHP's last for p."""
    if world.mbrshp is None:
        return
    for p, ep in _vs_endpoints(world).items():
        last = world.mbrshp.last_cid(p)
        for cid in ep.sync_msg.get(p, {}):
            if cid > last:
                _fail("6.8", f"{p} has own sync for future cid {cid} > {last}")


def invariant_6_9(world: WorldView) -> None:
    """Own sync message for the current change carries the current view."""
    for p, ep in _vs_endpoints(world).items():
        own = ep.own_sync_msg()
        if own is not None and own.view != ep.current_view:
            _fail("6.9", f"{p}'s own sync view {own.view} != current {ep.current_view}")


def invariant_6_11(world: WorldView) -> None:
    """End-point and client agree on the block status."""
    for p, client in world.clients.items():
        ep = world.endpoints.get(p)
        if ep is None or not hasattr(ep, "block_status"):
            continue
        if ep.block_status != client.block_status:
            _fail("6.11", f"{p}: endpoint {ep.block_status} vs client {client.block_status}")


def invariant_6_12(world: WorldView) -> None:
    """Not yet blocked implies no own sync message for the current change."""
    for p, ep in _vs_endpoints(world).items():
        if not hasattr(ep, "block_status"):
            continue
        if ep.start_change is not None and ep.block_status is not BlockStatus.BLOCKED:
            if ep.own_sync_msg() is not None:
                _fail("6.12", f"{p} sent its sync before being blocked")


def invariant_6_13(world: WorldView) -> None:
    """The own cut commits to *all* messages sent in the current view."""
    for p, ep in _vs_endpoints(world).items():
        own = ep.own_sync_msg()
        if own is None:
            continue
        log = ep.peek_buffer(p, ep.current_view)
        sent = log.last_index() if log is not None else 0
        if own.cut.get(p, 0) != sent:
            _fail("6.13", f"{p}'s cut[{p}]={own.cut.get(p, 0)} but it sent {sent}")


# ----------------------------------------------------------------------
# Section 7 - liveness-supporting invariants
# ----------------------------------------------------------------------


def invariant_7_1(world: WorldView) -> None:
    """No delivery beyond the agreed cuts during a view change."""
    for p, ep in _vs_endpoints(world).items():
        change = ep.start_change
        if change is None:
            continue
        own = ep.sync_msg_for(p, change.cid)
        if own is None:
            continue
        new_view = ep.mbrshp_view
        for q in ep.current_view.members:
            if new_view.start_ids.get(p) != change.cid:
                limit = own.cut.get(q, 0)
            else:
                limit = 0
                for r in new_view.members & ep.current_view.members:
                    sync = ep.sync_msg_for(r, new_view.start_id(r))
                    if sync is not None and sync.view == ep.current_view:
                        limit = max(limit, sync.cut.get(q, 0))
            if ep.dlvrd(q) > limit:
                _fail("7.1", f"{p} delivered {ep.dlvrd(q)} from {q}, cut limit {limit}")


def invariant_7_2(world: WorldView) -> None:
    """Every message an end-point's cut commits to is in its buffers."""
    for p, ep in _vs_endpoints(world).items():
        change = ep.start_change
        if change is None:
            continue
        own = ep.sync_msg_for(p, change.cid)
        if own is None:
            continue
        for q, limit in own.cut.items():
            log = ep.peek_buffer(q, ep.current_view)
            for index in range(1, limit + 1):
                if log is None or not log.has(index):
                    _fail("7.2", f"{p} committed to msgs[{q}][{ep.current_view}][{index}] it lacks")


ALL_INVARIANTS: Tuple[Callable[[WorldView], None], ...] = (
    invariant_6_1,
    invariant_6_2,
    invariant_6_3,
    invariant_6_4,
    invariant_6_5,
    invariant_6_6,
    invariant_6_7,
    invariant_6_8,
    invariant_6_9,
    invariant_6_11,
    invariant_6_12,
    invariant_6_13,
    invariant_7_1,
    invariant_7_2,
)


def check_invariants(world: WorldView, invariants: Iterable[Callable[[WorldView], None]] = ALL_INVARIANTS) -> None:
    """Assert the given invariants against the world state."""
    for invariant in invariants:
        invariant(world)


def invariant_hook(world: WorldView) -> Callable[..., None]:
    """A scheduler step-hook asserting all invariants after every step."""

    def hook(*_args: Any) -> None:
        check_invariants(world)

    return hook
