"""Executable verification of the paper's properties and proofs.

* :mod:`repro.checking.events` - the canonical observable-event trace.
* :mod:`repro.checking.properties` - black-box trace checkers for every
  specified property (Sections 3.1, 4.1, 4.2).
* :mod:`repro.checking.invariants` - the invariants of Sections 6-7 as
  state predicates (hookable after every scheduler step).
* :mod:`repro.checking.refinement` - the refinement mappings R, R', TS
  of Section 6 as step-by-step simulation checkers.
"""

from repro.checking.events import (
    BlockEvent,
    BlockOkEvent,
    CrashEvent,
    DeliverEvent,
    GcsEvent,
    GcsTrace,
    MbrshpFormEvent,
    MbrshpStartChangeEvent,
    MbrshpViewEvent,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.checking.invariants import (
    ALL_INVARIANTS,
    WorldView,
    check_invariants,
    invariant_hook,
)
from repro.checking.codes import (
    CLASS_ORDER,
    DEFAULT_CODES,
    REGISTRY,
    SAFETY_CODES,
    CodeInfo,
)
from repro.checking.properties import (
    check_all_safety,
    check_deployment_trace,
    check_golden_skeleton,
    check_liveness,
    check_local_monotonicity,
    check_mbrshp_conformance,
    check_safety_spec,
    check_self_delivery,
    check_self_inclusion,
    check_transitional_sets,
    check_virtual_synchrony,
    replay_into_spec,
)
from repro.checking.refinement import (
    SafetyRefinementChecker,
    TraceSkeleton,
    TransSetRefinementChecker,
    attach_refinement_checkers,
    extract_skeleton,
)
from repro.checking.verdict import (
    SOUNDNESS,
    Verdict,
    Violation,
    run_verdict,
)

__all__ = [
    "ALL_INVARIANTS",
    "BlockEvent",
    "BlockOkEvent",
    "CLASS_ORDER",
    "CodeInfo",
    "CrashEvent",
    "DEFAULT_CODES",
    "DeliverEvent",
    "GcsEvent",
    "GcsTrace",
    "MbrshpFormEvent",
    "MbrshpStartChangeEvent",
    "MbrshpViewEvent",
    "REGISTRY",
    "RecoverEvent",
    "SAFETY_CODES",
    "SOUNDNESS",
    "SafetyRefinementChecker",
    "SendEvent",
    "TraceSkeleton",
    "TransSetRefinementChecker",
    "Verdict",
    "ViewEvent",
    "Violation",
    "WorldView",
    "attach_refinement_checkers",
    "check_all_safety",
    "check_deployment_trace",
    "check_golden_skeleton",
    "check_invariants",
    "check_liveness",
    "check_local_monotonicity",
    "check_mbrshp_conformance",
    "check_safety_spec",
    "check_self_delivery",
    "check_self_inclusion",
    "check_transitional_sets",
    "check_virtual_synchrony",
    "extract_skeleton",
    "invariant_hook",
    "replay_into_spec",
    "run_verdict",
]
