"""Executable verification of the paper's properties and proofs.

* :mod:`repro.checking.events` - the canonical observable-event trace.
* :mod:`repro.checking.properties` - black-box trace checkers for every
  specified property (Sections 3.1, 4.1, 4.2).
* :mod:`repro.checking.invariants` - the invariants of Sections 6-7 as
  state predicates (hookable after every scheduler step).
* :mod:`repro.checking.refinement` - the refinement mappings R, R', TS
  of Section 6 as step-by-step simulation checkers.
"""

from repro.checking.events import (
    BlockEvent,
    BlockOkEvent,
    CrashEvent,
    DeliverEvent,
    GcsEvent,
    GcsTrace,
    MbrshpStartChangeEvent,
    MbrshpViewEvent,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.checking.invariants import (
    ALL_INVARIANTS,
    WorldView,
    check_invariants,
    invariant_hook,
)
from repro.checking.properties import (
    check_all_safety,
    check_deployment_trace,
    check_liveness,
    check_local_monotonicity,
    check_mbrshp_conformance,
    check_safety_spec,
    check_self_delivery,
    check_self_inclusion,
    check_transitional_sets,
    check_virtual_synchrony,
    replay_into_spec,
)
from repro.checking.refinement import (
    SafetyRefinementChecker,
    TransSetRefinementChecker,
    attach_refinement_checkers,
)

__all__ = [
    "ALL_INVARIANTS",
    "BlockEvent",
    "BlockOkEvent",
    "CrashEvent",
    "DeliverEvent",
    "GcsEvent",
    "GcsTrace",
    "MbrshpStartChangeEvent",
    "MbrshpViewEvent",
    "RecoverEvent",
    "SafetyRefinementChecker",
    "SendEvent",
    "TransSetRefinementChecker",
    "ViewEvent",
    "WorldView",
    "attach_refinement_checkers",
    "check_all_safety",
    "check_deployment_trace",
    "check_invariants",
    "check_liveness",
    "check_local_monotonicity",
    "check_mbrshp_conformance",
    "check_safety_spec",
    "check_self_delivery",
    "check_self_inclusion",
    "check_transitional_sets",
    "check_virtual_synchrony",
    "invariant_hook",
    "replay_into_spec",
]
