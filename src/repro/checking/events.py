"""Canonical records of externally observable GCS events.

Every execution substrate in this package - the IOA schedulers, the
discrete-event simulator, the asyncio runtime - emits its externally
observable behaviour as a :class:`GcsTrace` of the event types below, so
a single set of property checkers (:mod:`repro.checking.properties`)
applies to all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.types import ProcessId, StartChangeId, View, initial_view


@dataclass(frozen=True)
class GcsEvent:
    """Base event: something observable happened at process ``proc``."""

    time: float
    proc: ProcessId


@dataclass(frozen=True)
class SendEvent(GcsEvent):
    """The application at ``proc`` sent ``payload`` (GCS.send_p(m))."""

    payload: Any


@dataclass(frozen=True)
class DeliverEvent(GcsEvent):
    """``payload`` from ``sender`` was delivered to the application."""

    sender: ProcessId
    payload: Any


@dataclass(frozen=True)
class ViewEvent(GcsEvent):
    """The GCS delivered ``view`` with transitional set ``transitional``."""

    view: View
    transitional: FrozenSet[ProcessId]


@dataclass(frozen=True)
class BlockEvent(GcsEvent):
    """The GCS asked the application to stop sending."""


@dataclass(frozen=True)
class BlockOkEvent(GcsEvent):
    """The application acknowledged the block request."""


@dataclass(frozen=True)
class MbrshpStartChangeEvent(GcsEvent):
    """The membership service sent start_change(cid, members) to ``proc``."""

    cid: StartChangeId
    members: FrozenSet[ProcessId]


@dataclass(frozen=True)
class MbrshpViewEvent(GcsEvent):
    """The membership service delivered ``view`` to ``proc``."""

    view: View


@dataclass(frozen=True)
class MbrshpFormEvent(GcsEvent):
    """Membership server ``proc`` *formed* ``view`` (its durability point).

    Unlike the client-side notices, formation is recorded at the server
    the moment its agreement round completes - before any notice is in
    flight - so the event order of one server's formations follows that
    server's causal order even when notice deliveries interleave across
    clients.  This is what makes the server fault-domain rules sound:
    ``MBRSHP-SRV-MONO`` reads only the *origin* server's own formations
    (a single server forms views sequentially), where delivery-order
    would be racy."""

    view: View


@dataclass(frozen=True)
class CrashEvent(GcsEvent):
    """Process ``proc`` crashed (Section 8)."""


@dataclass(frozen=True)
class RecoverEvent(GcsEvent):
    """Process ``proc`` recovered with its state reset (Section 8)."""


class GcsTrace:
    """An append-only sequence of :class:`GcsEvent` with query helpers."""

    def __init__(self, events: Iterable[GcsEvent] = ()) -> None:
        self.events: List[GcsEvent] = list(events)

    def append(self, event: GcsEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[GcsEvent]:
        return iter(self.events)

    def of_type(self, *types: type) -> List[GcsEvent]:
        return [e for e in self.events if isinstance(e, types)]

    def at(self, proc: ProcessId) -> List[GcsEvent]:
        return [e for e in self.events if e.proc == proc]

    def processes(self) -> FrozenSet[ProcessId]:
        return frozenset(e.proc for e in self.events)

    # ------------------------------------------------------------------
    # view-relative queries ("an event occurs at p in view v")
    # ------------------------------------------------------------------

    def views_at(self, proc: ProcessId) -> List[ViewEvent]:
        return [e for e in self.events if isinstance(e, ViewEvent) and e.proc == proc]

    def per_view_segments(self, proc: ProcessId) -> List[Tuple[View, List[GcsEvent]]]:
        """Split ``proc``'s events into segments by the view they occur in.

        The first segment is the default initial view ``v_proc``.  An
        event belongs to view ``v`` when ``v`` was the last view delivered
        to ``proc`` before the event (the paper's Section 1 convention).
        Recovery (Section 8) resets the end-point to its initial view, so
        a :class:`RecoverEvent` opens a fresh initial-view segment.
        """
        segments: List[Tuple[View, List[GcsEvent]]] = [(initial_view(proc), [])]
        for event in self.events:
            if event.proc != proc:
                continue
            if isinstance(event, ViewEvent):
                segments.append((event.view, []))
            elif isinstance(event, RecoverEvent):
                segments.append((initial_view(proc), []))
            else:
                segments[-1][1].append(event)
        return segments

    def sends_in_view(self, proc: ProcessId, view: View) -> List[Any]:
        """Payloads ``proc`` sent while ``view`` was its current view."""
        payloads: List[Any] = []
        for seg_view, events in self.per_view_segments(proc):
            if seg_view == view:
                payloads.extend(e.payload for e in events if isinstance(e, SendEvent))
        return payloads

    def deliveries_in_view(
        self, proc: ProcessId, view: View, sender: Optional[ProcessId] = None
    ) -> List[Tuple[ProcessId, Any]]:
        """(sender, payload) pairs delivered at ``proc`` in ``view``."""
        result: List[Tuple[ProcessId, Any]] = []
        for seg_view, events in self.per_view_segments(proc):
            if seg_view == view:
                result.extend(
                    (e.sender, e.payload)
                    for e in events
                    if isinstance(e, DeliverEvent) and (sender is None or e.sender == sender)
                )
        return result

    def transition_of(self, proc: ProcessId, view: View) -> Optional[View]:
        """The view ``proc`` moved to ``view`` *from*, if it delivered it.

        A recovery resets the previous view to the initial one (Section 8).
        """
        previous = initial_view(proc)
        for event in self.events:
            if event.proc != proc:
                continue
            if isinstance(event, RecoverEvent):
                previous = initial_view(proc)
            elif isinstance(event, ViewEvent):
                if event.view == view:
                    return previous
                previous = event.view
        return None

    def merged(self, *others: "GcsTrace") -> "GcsTrace":
        """A time-ordered union of this trace and ``others``."""
        events = list(self.events)
        for other in others:
            events.extend(other.events)
        events.sort(key=lambda e: e.time)
        return GcsTrace(events)
