"""Trace checkers for the specified safety and liveness properties.

Each checker consumes a :class:`~repro.checking.events.GcsTrace` (the
externally observable behaviour of a run, from any execution substrate)
and raises :class:`~repro.errors.SpecificationViolation` on the first
violation.  ``check_all_safety`` bundles the full battery.

The within-view / virtual-synchrony / self-delivery checks work by
*replaying* the trace through the executable specification automata of
:mod:`repro.spec` - the runtime analogue of the paper's trace-inclusion
theorems.  The internal spec actions that replay must infer (``set_cut``)
are chosen the only way that keeps the spec step enabled, mirroring the
refinement's action correspondence (Lemma 6.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro._collections import frozendict
from repro.checking.events import (
    CrashEvent,
    DeliverEvent,
    GcsTrace,
    MbrshpStartChangeEvent,
    MbrshpViewEvent,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.errors import ActionNotEnabled, SpecificationViolation
from repro.ioa import Action
from repro.spec.mbrshp import MbrshpSpec
from repro.spec.vs_rfifo import FullSafetySpec
from repro.spec.wv_rfifo import WvRfifoSpec
from repro.types import ProcessId, View, initial_view


def _fail(message: str) -> None:
    raise SpecificationViolation(message)


# ----------------------------------------------------------------------
# Membership-facing basics
# ----------------------------------------------------------------------


def check_self_inclusion(trace: GcsTrace) -> None:
    """Every view delivered to p includes p (Section 3.1)."""
    for event in trace.of_type(ViewEvent, MbrshpViewEvent):
        if event.proc not in event.view.members:
            _fail(f"Self Inclusion: {event.proc} received {event.view} without itself")


def check_local_monotonicity(trace: GcsTrace) -> None:
    """View identifiers delivered to each p strictly increase (Section 3.1)."""
    last: Dict[Tuple[ProcessId, type], View] = {}
    for event in trace.of_type(ViewEvent, MbrshpViewEvent):
        key = (event.proc, type(event))
        previous = last.get(key)
        if previous is not None and not previous.vid < event.view.vid:
            _fail(
                f"Local Monotonicity: {event.proc} got {event.view.vid!r} "
                f"after {previous.vid!r}"
            )
        last[key] = event.view


def check_mbrshp_conformance(
    trace: GcsTrace, processes: Optional[Iterable[ProcessId]] = None
) -> None:
    """The membership notices in the trace are a behaviour of Figure 2.

    Replays every ``start_change`` / ``view`` notice (plus crashes and
    recoveries) through a fresh :class:`~repro.spec.mbrshp.MbrshpSpec`:
    any notice whose precondition is false - a non-increasing cid, a view
    without a preceding start_change, a stale startId binding, members
    outside the suggested set - fails the check.  This is how deployments
    whose views come from real membership servers (asyncio, TCP) are held
    to the same standard as the simulator's.
    """
    if processes is None:
        procs = set(trace.processes())
        for event in trace.of_type(ViewEvent, MbrshpViewEvent):
            procs |= set(event.view.members)
    else:
        procs = set(processes)
    if not procs:
        return
    spec = MbrshpSpec(sorted(procs))
    for event in trace:
        try:
            if isinstance(event, MbrshpStartChangeEvent):
                spec.apply(
                    Action(
                        "mbrshp.start_change",
                        (event.proc, event.cid, frozenset(event.members)),
                    )
                )
            elif isinstance(event, MbrshpViewEvent):
                spec.apply(Action("mbrshp.view", (event.proc, event.view)))
            elif isinstance(event, CrashEvent):
                spec.apply(Action("crash", (event.proc,)))
            elif isinstance(event, RecoverEvent):
                spec.apply(Action("recover", (event.proc,)))
        except ActionNotEnabled as exc:
            _fail(f"MBRSHP conformance (Figure 2): {exc}")


# ----------------------------------------------------------------------
# Replay through the executable specification stack
# ----------------------------------------------------------------------


def replay_into_spec(trace: GcsTrace, spec: WvRfifoSpec) -> None:
    """Replay external GCS events through a WV_RFIFO-family spec automaton.

    Raises if any event corresponds to a disabled spec step, i.e. if the
    trace is not a trace of the specification.
    """
    infer_cuts = isinstance(spec, FullSafetySpec) or hasattr(spec, "cut")
    for event in trace:
        try:
            if isinstance(event, SendEvent):
                spec.apply(Action("send", (event.proc, event.payload)))
            elif isinstance(event, DeliverEvent):
                spec.apply(Action("deliver", (event.proc, event.sender, event.payload)))
            elif isinstance(event, ViewEvent):
                if infer_cuts:
                    _infer_set_cut(spec, event)
                spec.apply(Action("view", (event.proc, event.view, event.transitional)))
            elif isinstance(event, RecoverEvent):
                _reset_recovered_process(spec, event.proc)
        except ActionNotEnabled as exc:
            _fail(f"trace not accepted by {type(spec).__name__}: {exc}")


def _reset_recovered_process(spec: WvRfifoSpec, proc: ProcessId) -> None:
    """Section 8: a recovered end-point restarts from its initial state.

    The spec mirrors the algorithm's reset (current view, delivery
    indices, the initial-view send queue).  Local Monotonicity of the
    views the recovered process subsequently *delivers* is checked
    separately by :func:`check_local_monotonicity`, which deliberately
    does not reset - the membership watermarks survive crashes.
    """
    spec.current_view[proc] = initial_view(proc)
    for q in spec.processes:
        spec.last_dlvrd[(q, proc)] = 0
    spec.msgs[proc].pop(initial_view(proc), None)


def _infer_set_cut(spec: Any, event: ViewEvent) -> None:
    """Choose the unique enabling ``set_cut`` for a pending view step.

    The first process to move from view v to view v' fixes the cut to the
    last-delivered vector it realised; every later mover must match it
    (Corollary 6.1 made operational).
    """
    old = spec.current_view[event.proc]
    if (old, event.view) in spec.cut:
        return
    vector = frozendict(
        {q: spec.last_dlvrd[(q, event.proc)] for q in spec.processes}
    )
    spec.apply(Action("set_cut", (old, event.view, vector)))


def check_safety_spec(trace: GcsTrace, processes: Optional[Iterable[ProcessId]] = None) -> None:
    """Trace inclusion in WV_RFIFO + VS_RFIFO + SELF (Figures 4, 5, 7)."""
    procs = tuple(processes) if processes is not None else tuple(sorted(trace.processes()))
    replay_into_spec(trace, FullSafetySpec(procs))


# ----------------------------------------------------------------------
# Virtual synchrony, stated directly (redundant with the replay, but a
# useful independent oracle)
# ----------------------------------------------------------------------


def check_virtual_synchrony(trace: GcsTrace) -> None:
    """Processes moving together v -> v' deliver the same messages in v.

    With gap-free FIFO per sender, "the same set" reduces to the same
    per-sender delivery counts at the moment of leaving v.
    """
    agreed: Dict[Tuple[View, View], Tuple[Dict[ProcessId, int], ProcessId]] = {}
    counts: Dict[ProcessId, Dict[ProcessId, int]] = defaultdict(lambda: defaultdict(int))
    current: Dict[ProcessId, View] = {}
    for event in trace:
        if isinstance(event, RecoverEvent):
            # Section 8: the recovered end-point restarts in its initial
            # view with empty delivery history.
            counts[event.proc] = defaultdict(int)
            current[event.proc] = initial_view(event.proc)
        elif isinstance(event, DeliverEvent):
            counts[event.proc][event.sender] += 1
        elif isinstance(event, ViewEvent):
            p = event.proc
            old = current.get(p, initial_view(p))
            vector = dict(counts[p])
            key = (old, event.view)
            if key in agreed:
                expected, witness = agreed[key]
                if expected != vector:
                    _fail(
                        f"Virtual Synchrony: {p} left {old} for {event.view} having "
                        f"delivered {vector}, but {witness} delivered {expected}"
                    )
            else:
                agreed[key] = (vector, p)
            counts[p] = defaultdict(int)
            current[p] = event.view


# ----------------------------------------------------------------------
# Transitional sets (Property 4.1), black-box part
# ----------------------------------------------------------------------


def check_transitional_sets(trace: GcsTrace) -> None:
    """The decidable-from-the-trace consequences of Property 4.1.

    For every delivery of v' at p from previous view v, with set T_p:
    (a) p is in T_p; (b) T_p is a subset of v.set & v'.set; (c) if q also
    delivers v' (from view u), then q is in T_p iff u == v; (d) two
    deliverers of v' from the same previous view report identical T.
    """
    deliveries: Dict[View, List[ViewEvent]] = defaultdict(list)
    previous: Dict[Tuple[ProcessId, View], View] = {}
    current: Dict[ProcessId, View] = {}
    for event in trace.of_type(ViewEvent, RecoverEvent):
        if isinstance(event, RecoverEvent):
            current[event.proc] = initial_view(event.proc)  # Section 8
            continue
        old = current.get(event.proc, initial_view(event.proc))
        previous[(event.proc, event.view)] = old
        deliveries[event.view].append(event)
        current[event.proc] = event.view

    for new_view, events in deliveries.items():
        for event in events:
            p = event.proc
            old = previous[(p, new_view)]
            T = event.transitional
            if p not in T:
                _fail(f"Transitional Set: {p} not in its own T for {new_view}")
            if not T <= (old.members & new_view.members):
                _fail(
                    f"Transitional Set: T of {p} for {new_view} is not within "
                    f"{old} intersect {new_view}"
                )
            for other in events:
                q = other.proc
                if q == p or q not in (old.members & new_view.members):
                    continue
                moved_with = previous[(q, new_view)] == old
                if moved_with != (q in T):
                    _fail(
                        f"Transitional Set: {q} moved to {new_view} from "
                        f"{previous[(q, new_view)]} but {p} (from {old}) "
                        f"{'included' if q in T else 'excluded'} it"
                    )
        # (d) agreement among same-previous-view deliverers
        by_prev: Dict[View, FrozenSet[ProcessId]] = {}
        for event in events:
            old = previous[(event.proc, new_view)]
            if old in by_prev and by_prev[old] != event.transitional:
                _fail(
                    f"Transitional Set: deliverers of {new_view} from {old} "
                    f"disagree: {sorted(by_prev[old])} vs {sorted(event.transitional)}"
                )
            by_prev.setdefault(old, event.transitional)


# ----------------------------------------------------------------------
# Self delivery (direct statement)
# ----------------------------------------------------------------------


def check_self_delivery(trace: GcsTrace) -> None:
    """Before each view change, p delivered everything it sent (Figure 7)."""
    sent: Dict[ProcessId, int] = defaultdict(int)
    self_delivered: Dict[ProcessId, int] = defaultdict(int)
    for event in trace:
        if isinstance(event, CrashEvent):
            # messages lost to the crash are exempt (Section 8)
            sent[event.proc] = 0
            self_delivered[event.proc] = 0
        elif isinstance(event, SendEvent):
            sent[event.proc] += 1
        elif isinstance(event, DeliverEvent) and event.sender == event.proc:
            self_delivered[event.proc] += 1
        elif isinstance(event, ViewEvent):
            p = event.proc
            if sent[p] != self_delivered[p]:
                _fail(
                    f"Self Delivery: {p} moved to {event.view} with "
                    f"{sent[p]} sent but {self_delivered[p]} self-delivered"
                )
            sent[p] = 0
            self_delivered[p] = 0


# ----------------------------------------------------------------------
# Liveness (Property 4.2)
# ----------------------------------------------------------------------


def check_liveness(trace: GcsTrace, final_view: View) -> None:
    """Property 4.2 for a stabilised execution.

    Assumes the membership delivered ``final_view`` to all its members
    with no later membership events (the caller arranged this).  Checks
    that every member delivered ``final_view`` through the GCS and that
    every message sent in it was delivered by every member.
    """
    members = final_view.members
    for p in members:
        views = [e.view for e in trace.views_at(p)]
        if final_view not in views:
            _fail(f"Liveness: {p} never delivered the stable view {final_view}")
    for p in members:
        payloads = trace.sends_in_view(p, final_view)
        for q in members:
            got = [m for _s, m in trace.deliveries_in_view(q, final_view, sender=p)]
            if got != payloads:
                _fail(
                    f"Liveness: {q} delivered {got} from {p} in {final_view}, "
                    f"expected {payloads}"
                )


# ----------------------------------------------------------------------
# The whole battery
# ----------------------------------------------------------------------


def check_all_safety(trace: GcsTrace, processes: Optional[Iterable[ProcessId]] = None) -> None:
    """Run every safety checker above on ``trace``."""
    check_self_inclusion(trace)
    check_local_monotonicity(trace)
    check_safety_spec(trace, processes)
    check_virtual_synchrony(trace)
    check_transitional_sets(trace)
    check_self_delivery(trace)


def check_deployment_trace(
    trace: GcsTrace,
    processes: Optional[Iterable[ProcessId]] = None,
    *,
    final_view: Optional[View] = None,
) -> None:
    """The post-hoc audit for any deployment's trace, on any substrate.

    Runs the full safety battery plus MBRSHP conformance of the
    membership notices; when the caller knows the run stabilised in
    ``final_view``, also checks liveness (Property 4.2) against it.
    """
    check_all_safety(trace, processes)
    check_mbrshp_conformance(trace, processes)
    if final_view is not None:
        check_liveness(trace, final_view)
