"""Trace checkers for the specified safety and liveness properties.

Each checker consumes a :class:`~repro.checking.events.GcsTrace` (the
externally observable behaviour of a run, from any execution substrate)
and raises :class:`~repro.errors.SpecificationViolation` on the
**earliest** violation.  Since the verdict engine
(:mod:`repro.checking.verdict`) these functions are thin wrappers over
its incremental rules: each rule consumes the trace in event order and
retires at its first violation, so the reported witness is the minimal
index whose prefix already violates the property.  (The previous
batch-mode transitional-set checker grouped deliveries by view and could
report a later event than the earliest violation; the rule form fixes
that.)

``check_all_safety`` bundles the safety battery and
``check_deployment_trace`` the full audit; both return the primary
(earliest, deterministically tie-broken) violation of a single
engine pass.

The within-view / virtual-synchrony / self-delivery checks work by
*replaying* the trace through the executable specification automata of
:mod:`repro.spec` - the runtime analogue of the paper's trace-inclusion
theorems.  The internal spec actions that replay must infer (``set_cut``)
are chosen the only way that keeps the spec step enabled, mirroring the
refinement's action correspondence (Lemma 6.2).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.checking.codes import DEFAULT_CODES, SAFETY_CODES
from repro.checking.events import (
    DeliverEvent,
    GcsTrace,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.checking.refinement import TraceSkeleton
from repro.checking.verdict import (
    GoldenSkeletonRule,
    LivenessRule,
    MbrshpConformanceRule,
    MonotonicityRule,
    SelfDeliveryRule,
    SelfInclusionRule,
    SpecRefinementRule,
    TraceRule,
    TransSetRule,
    Verdict,
    VirtualSynchronyRule,
    first_violation,
    infer_set_cut,
    mbrshp_processes,
    reset_recovered_process,
    run_verdict,
)
from repro.errors import ActionNotEnabled, SpecificationViolation
from repro.ioa import Action
from repro.spec.vs_rfifo import FullSafetySpec
from repro.spec.wv_rfifo import WvRfifoSpec
from repro.types import ProcessId, View

# Back-compat aliases: these helpers started here and moved to the
# verdict module so the engine and the wrappers share one copy.
_infer_set_cut = infer_set_cut
_reset_recovered_process = reset_recovered_process


def _check_rule(trace: GcsTrace, rule: TraceRule) -> None:
    violation = first_violation(trace, rule)
    if violation is not None:
        raise SpecificationViolation(violation.message)


def _raise_primary(verdict: Verdict) -> None:
    if not verdict.ok:
        raise SpecificationViolation(verdict.primary.message)


# ----------------------------------------------------------------------
# Membership-facing basics
# ----------------------------------------------------------------------


def check_self_inclusion(trace: GcsTrace) -> None:
    """Every view delivered to p includes p (Section 3.1)."""
    _check_rule(trace, SelfInclusionRule())


def check_local_monotonicity(trace: GcsTrace) -> None:
    """View identifiers delivered to each p strictly increase (Section 3.1)."""
    _check_rule(trace, MonotonicityRule())


def check_mbrshp_conformance(
    trace: GcsTrace, processes: Optional[Iterable[ProcessId]] = None
) -> None:
    """The membership notices in the trace are a behaviour of Figure 2.

    Replays every ``start_change`` / ``view`` notice (plus crashes and
    recoveries) through a fresh :class:`~repro.spec.mbrshp.MbrshpSpec`:
    any notice whose precondition is false - a non-increasing cid, a view
    without a preceding start_change, a stale startId binding, members
    outside the suggested set - fails the check.  This is how deployments
    whose views come from real membership servers (asyncio, TCP) are held
    to the same standard as the simulator's.
    """
    _check_rule(trace, MbrshpConformanceRule(mbrshp_processes(trace, processes)))


# ----------------------------------------------------------------------
# Replay through the executable specification stack
# ----------------------------------------------------------------------


def replay_into_spec(trace: GcsTrace, spec: WvRfifoSpec) -> None:
    """Replay external GCS events through a WV_RFIFO-family spec automaton.

    Raises if any event corresponds to a disabled spec step, i.e. if the
    trace is not a trace of the specification.
    """
    infer_cuts = isinstance(spec, FullSafetySpec) or hasattr(spec, "cut")
    for event in trace:
        try:
            if isinstance(event, SendEvent):
                spec.apply(Action("send", (event.proc, event.payload)))
            elif isinstance(event, DeliverEvent):
                spec.apply(Action("deliver", (event.proc, event.sender, event.payload)))
            elif isinstance(event, ViewEvent):
                if infer_cuts:
                    infer_set_cut(spec, event)
                spec.apply(Action("view", (event.proc, event.view, event.transitional)))
            elif isinstance(event, RecoverEvent):
                reset_recovered_process(spec, event.proc)
        except ActionNotEnabled as exc:
            raise SpecificationViolation(
                f"trace not accepted by {type(spec).__name__}: {exc}"
            ) from exc


def check_safety_spec(trace: GcsTrace, processes: Optional[Iterable[ProcessId]] = None) -> None:
    """Trace inclusion in WV_RFIFO + VS_RFIFO + SELF (Figures 4, 5, 7)."""
    procs = tuple(processes) if processes is not None else tuple(sorted(trace.processes()))
    _check_rule(trace, SpecRefinementRule(procs))


# ----------------------------------------------------------------------
# Virtual synchrony, stated directly (redundant with the replay, but a
# useful independent oracle)
# ----------------------------------------------------------------------


def check_virtual_synchrony(trace: GcsTrace) -> None:
    """Processes moving together v -> v' deliver the same messages in v.

    With gap-free FIFO per sender, "the same set" reduces to the same
    per-sender delivery counts at the moment of leaving v.
    """
    _check_rule(trace, VirtualSynchronyRule())


# ----------------------------------------------------------------------
# Transitional sets (Property 4.1), black-box part
# ----------------------------------------------------------------------


def check_transitional_sets(trace: GcsTrace) -> None:
    """The decidable-from-the-trace consequences of Property 4.1.

    For every delivery of v' at p from previous view v, with set T_p:
    (a) p is in T_p; (b) T_p is a subset of v.set & v'.set; (c) if q also
    delivers v' (from view u), then q is in T_p iff u == v; (d) two
    deliverers of v' from the same previous view report identical T.
    """
    _check_rule(trace, TransSetRule())


# ----------------------------------------------------------------------
# Self delivery (direct statement)
# ----------------------------------------------------------------------


def check_self_delivery(trace: GcsTrace) -> None:
    """Before each view change, p delivered everything it sent (Figure 7)."""
    _check_rule(trace, SelfDeliveryRule())


# ----------------------------------------------------------------------
# Liveness (Property 4.2)
# ----------------------------------------------------------------------


def check_liveness(trace: GcsTrace, final_view: View) -> None:
    """Property 4.2 for a stabilised execution.

    Assumes the membership delivered ``final_view`` to all its members
    with no later membership events (the caller arranged this).  Checks
    that every member delivered ``final_view`` through the GCS and that
    every message sent in it was delivered by every member.
    """
    _check_rule(trace, LivenessRule(final_view))


# ----------------------------------------------------------------------
# Golden skeletons (cross-substrate execution equivalence)
# ----------------------------------------------------------------------


def check_golden_skeleton(trace: GcsTrace, golden: TraceSkeleton) -> None:
    """The trace's skeleton equals the recorded golden skeleton."""
    _check_rule(trace, GoldenSkeletonRule(golden))


# ----------------------------------------------------------------------
# The whole battery
# ----------------------------------------------------------------------


def check_all_safety(trace: GcsTrace, processes: Optional[Iterable[ProcessId]] = None) -> None:
    """Run every safety checker above on ``trace`` (one engine pass)."""
    _raise_primary(run_verdict(trace, processes, include=SAFETY_CODES))


def check_deployment_trace(
    trace: GcsTrace,
    processes: Optional[Iterable[ProcessId]] = None,
    *,
    final_view: Optional[View] = None,
    golden: Optional[TraceSkeleton] = None,
) -> None:
    """The post-hoc audit for any deployment's trace, on any substrate.

    Runs the full safety battery plus MBRSHP conformance of the
    membership notices; when the caller knows the run stabilised in
    ``final_view``, also checks liveness (Property 4.2) against it, and
    with a recorded ``golden`` skeleton the run must also refine it.
    """
    _raise_primary(
        run_verdict(
            trace,
            processes,
            final_view=final_view,
            golden=golden,
            include=DEFAULT_CODES,
        )
    )
