"""The stable violation-code registry of the verdict engine.

Every rule the verdict engine (:mod:`repro.checking.verdict`) can run is
registered here under a short, stable code (``VS-*`` for the GCS
properties of Sections 3-7, ``MBRSHP-*`` for the membership service of
Figure 2, ``RUN-*`` for runtime-level findings that are not trace
rules).  Codes are the contract between the checker and everything
downstream of it - CI artifacts, shrunk chaos findings, golden-trace
comparisons - so they never change meaning and are never reused.

Violations are ordered deterministically by

1. witness index (earliest event first),
2. rule class, in :data:`CLASS_ORDER`,
3. lexical code.

The class order puts the *contract* rules (direct statements of the
paper's properties) ahead of the *refinement* rule (trace inclusion in
the executable spec stack).  This is a deliberate deviation from a
refinement-first ordering: the spec's ``view`` precondition subsumes
several contract properties (monotonicity, self inclusion), so on a
shared witness index the refinement rule would otherwise mask the
specific property code that names the actual defect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class CodeInfo:
    """One registered violation code and its documentation."""

    code: str
    rule_class: str  # one of CLASS_ORDER
    title: str
    paper_ref: str
    complexity: str  # documented complexity in n = |trace|, p = |processes|
    trace_rule: bool = True  # False: runtime finding, not checkable on a trace

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "class": self.rule_class,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "complexity": self.complexity,
            "trace_rule": self.trace_rule,
        }


#: Deterministic tiebreak order of rule classes on a shared witness index.
CLASS_ORDER: Tuple[str, ...] = (
    "contract",
    "refinement",
    "membership",
    "golden",
    "liveness",
    "runtime",
)

_CLASS_RANK = {name: rank for rank, name in enumerate(CLASS_ORDER)}


REGISTRY: Dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            "VS-SELF-INCL",
            "contract",
            "Self Inclusion: every view delivered to p contains p",
            "Section 3.1",
            "O(n)",
        ),
        CodeInfo(
            "VS-MONO",
            "contract",
            "Local Monotonicity: view identifiers at each process strictly increase",
            "Section 3.1",
            "O(n)",
        ),
        CodeInfo(
            "VS-SELF-DLV",
            "contract",
            "Self Delivery: p delivers its own messages before leaving the view",
            "Figure 7",
            "O(n)",
        ),
        CodeInfo(
            "VS-VSYNC",
            "contract",
            "Virtual Synchrony: co-movers deliver the same messages in the old view",
            "Section 4.1",
            "O(n * p)",
        ),
        CodeInfo(
            "VS-TRANS-SET",
            "contract",
            "Transitional Set: T is correct and agreed among co-movers",
            "Property 4.1",
            "O(n * p^2) worst case (p^2 pairwise checks per view change)",
        ),
        CodeInfo(
            "VS-SPEC-REFINE",
            "refinement",
            "Trace inclusion in WV_RFIFO + VS_RFIFO + SELF",
            "Figures 4, 5, 7",
            "O(n * p) (set_cut inference builds a p-vector per view step)",
        ),
        CodeInfo(
            "MBRSHP-CONF",
            "membership",
            "Membership notices are a behaviour of the MBRSHP automaton",
            "Figure 2",
            "O(n)",
        ),
        CodeInfo(
            "MBRSHP-SRV-FORK",
            "membership",
            "One view identifier denotes one view across every observation",
            "Section 8 (server fault domain: recovery must not fork)",
            "O(n)",
        ),
        CodeInfo(
            "MBRSHP-SRV-MONO",
            "membership",
            "An origin server's formed view counters strictly increase",
            "Section 8 (server fault domain: durable counter watermark)",
            "O(n)",
        ),
        CodeInfo(
            "VS-SKEL",
            "golden",
            "Observed trace skeleton refines the recorded golden skeleton",
            "substrate equivalence (E15)",
            "O(n)",
        ),
        CodeInfo(
            "VS-LIVE",
            "liveness",
            "Stabilised run: all members deliver the final view and its messages",
            "Property 4.2",
            "O(n * p)",
        ),
        CodeInfo(
            "RUN-STALL",
            "runtime",
            "The run stalled (settle timeout) under a masked fault model",
            "Section 9 (masking assumption)",
            "n/a (runtime finding, not a trace rule)",
            trace_rule=False,
        ),
    )
}

#: The trace rules run by default when no golden skeleton / final view is given.
DEFAULT_CODES: Tuple[str, ...] = (
    "VS-SELF-INCL",
    "VS-MONO",
    "VS-SELF-DLV",
    "VS-VSYNC",
    "VS-TRANS-SET",
    "VS-SPEC-REFINE",
    "MBRSHP-CONF",
    "MBRSHP-SRV-FORK",
    "MBRSHP-SRV-MONO",
)

#: The safety subset (``check_all_safety``): no membership conformance.
SAFETY_CODES: Tuple[str, ...] = (
    "VS-SELF-INCL",
    "VS-MONO",
    "VS-SELF-DLV",
    "VS-VSYNC",
    "VS-TRANS-SET",
    "VS-SPEC-REFINE",
)


def class_rank(code: str) -> int:
    """The ordering rank of ``code``'s rule class (registry-backed)."""
    return _CLASS_RANK[REGISTRY[code].rule_class]


def violation_sort_key(code: str, witness_index: int) -> Tuple[int, int, str]:
    """The deterministic ordering of violations in a verdict."""
    return (witness_index, class_rank(code), code)


__all__ = [
    "CLASS_ORDER",
    "CodeInfo",
    "DEFAULT_CODES",
    "REGISTRY",
    "SAFETY_CODES",
    "class_rank",
    "violation_sort_key",
]
