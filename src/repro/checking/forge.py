"""Per-code trace forgeries: the negative battery behind the verdict engine.

A green verdict only means something if every registered rule turns red
on a trace that violates exactly it.  Each :class:`Forgery` takes a
known-good trace and applies one targeted corruption chosen so that its
code is the *primary* violation (earliest witness, first in the
deterministic order) and so that the expected witness index is
computable in advance.  The constructions are deliberately conservative:
a corruption that would trip an unrelated rule at an earlier index (for
example, removing a non-final FIFO delivery, which breaks the spec
replay before the targeted property) is avoided by picking the victim
event carefully - see each builder's notes.

Used by the negative-trace test battery (one forgery per registered
trace rule, enforced by a completeness meta-test), by
``python -m repro verdict --mutate CODE``, and - through
:func:`as_mutator` - as ``ChaosRunner`` trace mutators for the
shrink-witness stability tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro._collections import frozendict
from repro.checking.events import (
    CrashEvent,
    DeliverEvent,
    GcsEvent,
    GcsTrace,
    MbrshpFormEvent,
    MbrshpStartChangeEvent,
    MbrshpViewEvent,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.types import ProcessId, View, ViewId


@dataclass
class ForgedTrace:
    """One corrupted trace and the verdict it must produce."""

    trace: GcsTrace
    code: str  # the primary violation code
    expected_index: int  # the earliest witness the verdict must report
    final_view: Optional[View] = None  # pass to run_verdict (VS-LIVE only)


@dataclass(frozen=True)
class Forgery:
    """A targeted corruption producing exactly one primary violation."""

    code: str
    description: str
    apply: Callable[[GcsTrace], Optional[ForgedTrace]]
    needs_final_view: bool = False  # verdict must use ForgedTrace.final_view
    needs_golden: bool = False  # verdict needs the pre-forgery skeleton


def as_mutator(forgery: Forgery) -> Callable[[GcsTrace], GcsTrace]:
    """Adapt a forgery to the ``ChaosRunner`` ``mutate_trace`` hook.

    Traces without the forgery's raw material pass through unchanged, so
    a shrinker candidate that lost the material simply stops failing and
    is rejected (rather than crashing the run).
    """

    def mutate(trace: GcsTrace) -> GcsTrace:
        forged = forgery.apply(trace)
        return forged.trace if forged is not None else trace

    return mutate


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def _identity_index(trace: GcsTrace, victim: GcsEvent) -> int:
    """Position of ``victim`` by identity (equal events may repeat)."""
    return next(i for i, e in enumerate(trace) if e is victim)


def _forge_self_inclusion(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Strip the recipient from the last delivered view.

    The spec replay and the transitional-set rule break at the same
    event, but Self Inclusion wins the deterministic order there
    (contract class, lexically first), so it is the primary.
    """
    views = trace.of_type(ViewEvent)
    if not views:
        return None
    victim = views[-1]
    index = _identity_index(trace, victim)
    forged_view = replace(victim.view, members=victim.view.members - {victim.proc})
    forged = replace(victim, view=forged_view)
    events = list(trace)
    events[index] = forged
    return ForgedTrace(GcsTrace(events), "VS-SELF-INCL", index)


def _forge_monotonicity(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Re-deliver the last view: its identifier is now non-increasing."""
    views = trace.of_type(ViewEvent)
    if not views:
        return None
    mutated = GcsTrace(trace)
    mutated.append(views[-1])
    return ForgedTrace(mutated, "VS-MONO", len(trace))


def _forge_self_delivery(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Remove the *last* self-delivery of a segment closed by a view.

    Removing an earlier one would leave a FIFO gap the spec replay
    rejects at the next self-delivery - before the view event where Self
    Delivery is checked - so only the final (p, p) delivery of a segment
    keeps the targeted code primary.
    """
    last_self: Dict[ProcessId, int] = {}
    for index, event in enumerate(trace):
        p = event.proc
        if isinstance(event, DeliverEvent) and event.sender == p:
            last_self[p] = index
        elif isinstance(event, ViewEvent) and p in last_self:
            victim = last_self[p]
            events = [e for i, e in enumerate(trace) if i != victim]
            return ForgedTrace(GcsTrace(events), "VS-SELF-DLV", index - 1)
        elif isinstance(event, (ViewEvent, RecoverEvent, CrashEvent)):
            last_self.pop(p, None)
    return None


def _forge_virtual_synchrony(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Remove one co-mover's last delivery from another sender.

    The victim delivery must come from a *different* sender (or Self
    Delivery would fire first, lexically earlier) and be the last from
    that sender in its segment (or the spec's FIFO check would fire
    earlier).  The disagreement is witnessed at the second co-mover's
    view event.
    """
    movers = _co_movers(trace)
    for mover_events in movers.values():
        if len(mover_events) < 2:
            continue
        for position, (proc, view_index) in enumerate(mover_events):
            victim = _last_foreign_delivery(trace, proc, view_index)
            if victim is None:
                continue
            # The mismatch surfaces at the first *other* mover whose
            # vector disagrees with the recorded one: the second mover
            # overall if the victim's owner moved first, else the
            # victim's owner's own view event.
            if position == 0:
                witness = mover_events[1][1]
            else:
                witness = view_index
            events = [e for i, e in enumerate(trace) if i != victim]
            return ForgedTrace(GcsTrace(events), "VS-VSYNC", witness - 1)
    return None


def _co_movers(trace: GcsTrace) -> Dict[Tuple[View, View], List[Tuple[ProcessId, int]]]:
    """(old view, new view) -> in-order (proc, view event index) movers."""
    from repro.types import initial_view

    current: Dict[ProcessId, View] = {}
    movers: Dict[Tuple[View, View], List[Tuple[ProcessId, int]]] = {}
    for index, event in enumerate(trace):
        if isinstance(event, RecoverEvent):
            current[event.proc] = initial_view(event.proc)
        elif isinstance(event, ViewEvent):
            old = current.get(event.proc, initial_view(event.proc))
            movers.setdefault((old, event.view), []).append((event.proc, index))
            current[event.proc] = event.view
    return movers


def _last_foreign_delivery(
    trace: GcsTrace, proc: ProcessId, view_index: int
) -> Optional[int]:
    """Index of a delivery at ``proc`` before its view event at
    ``view_index``, from a sender other than ``proc``, that is the last
    from that sender in the segment; None if the segment has none."""
    last_by_sender: Dict[ProcessId, int] = {}
    for index in range(view_index - 1, -1, -1):
        event = trace.events[index]
        if event.proc != proc:
            continue
        if isinstance(event, (ViewEvent, RecoverEvent, CrashEvent)):
            break  # segment start
        if isinstance(event, DeliverEvent) and event.sender != proc:
            # walking backwards, the first hit per sender is its last
            last_by_sender.setdefault(event.sender, index)
    if not last_by_sender:
        return None
    return max(last_by_sender.values())


def _forge_trans_set(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Drop the recipient from its own transitional set (Property 4.1a).

    No other rule reads T, so the code is primary - and unique.
    """
    views = trace.of_type(ViewEvent)
    if not views:
        return None
    victim = views[-1]
    index = _identity_index(trace, victim)
    forged = replace(victim, transitional=victim.transitional - {victim.proc})
    events = list(trace)
    events[index] = forged
    return ForgedTrace(GcsTrace(events), "VS-TRANS-SET", index)


def _forge_spec_refinement(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Swap a same-sender FIFO pair at a third-party receiver.

    Per-sender counts are unchanged, so virtual synchrony and self
    delivery stay green; only the spec replay's gap-free FIFO
    precondition fails, at the earlier of the two positions.
    """
    first_of: Dict[Tuple[ProcessId, ProcessId], int] = {}
    for index, event in enumerate(trace):
        if isinstance(event, (ViewEvent, RecoverEvent, CrashEvent)):
            # new segment at this proc: earlier halves are stale
            first_of = {
                key: i for key, i in first_of.items() if key[0] != event.proc
            }
        elif isinstance(event, DeliverEvent) and event.sender != event.proc:
            key = (event.proc, event.sender)
            earlier = first_of.get(key)
            if earlier is None:
                first_of[key] = index
            elif trace.events[earlier].payload != event.payload:
                events = list(trace)
                events[earlier], events[index] = events[index], events[earlier]
                return ForgedTrace(GcsTrace(events), "VS-SPEC-REFINE", earlier)
    return None


def _forge_mbrshp(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Replay the last start_change notice: its cid is non-increasing.

    Only the MBRSHP conformance rule reads start_change events, so the
    code is primary - and unique.
    """
    notices = trace.of_type(MbrshpStartChangeEvent)
    if not notices:
        return None
    mutated = GcsTrace(trace)
    mutated.append(notices[-1])
    return ForgedTrace(mutated, "MBRSHP-CONF", len(trace))


def _forge_srv_fork(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Append a formation event reusing a seen ViewId with other members.

    Only the server fault-domain rules read :class:`MbrshpFormEvent`, so
    no contract or refinement rule can fire at the appended index.  The
    forging "server" is not the identifier's origin, which keeps the
    counter-monotonicity rule (lexically after FORK anyway) out of play.
    """
    views = trace.of_type(ViewEvent, MbrshpViewEvent, MbrshpFormEvent)
    if not views:
        return None
    victim = views[-1].view
    forged_view = replace(victim, members=victim.members | {"srv-fork-intruder"})
    forged = MbrshpFormEvent(
        time=trace.events[-1].time, proc="srv:forged", view=forged_view
    )
    mutated = GcsTrace(trace)
    mutated.append(forged)
    return ForgedTrace(mutated, "MBRSHP-SRV-FORK", len(trace))


def _forge_srv_mono(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Append an origin's formation pair with a regressing counter.

    Models a membership server that recovered without its durable
    counter watermark: having formed counter 2, it forms counter 1.  A
    fresh origin (never used by the trace's own views) keeps the first,
    benign formation invisible to every other rule - including FORK,
    since both appended identifiers are new.
    """
    if not trace.events:
        return None
    origin = "srv:forged"
    now = trace.events[-1].time
    member = frozenset({"forged-client"})
    high = View(ViewId(2, origin), member, frozendict({"forged-client": 2}))
    stale = View(ViewId(1, origin), member, frozendict({"forged-client": 3}))
    mutated = GcsTrace(trace)
    mutated.append(MbrshpFormEvent(time=now, proc=origin, view=high))
    mutated.append(MbrshpFormEvent(time=now, proc=origin, view=stale))
    return ForgedTrace(mutated, "MBRSHP-SRV-MONO", len(trace) + 1)


def _forge_liveness(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Remove the final view delivery at one process.

    The victim must be that process's last send/deliver/view event, so
    nothing downstream of the removal references the missing view and
    only Property 4.2 - checked against the removed view as the stable
    one - fails, at the end of the run.
    """
    views = trace.of_type(ViewEvent)
    if not views:
        return None
    victim = views[-1]
    index = _identity_index(trace, victim)
    for later in trace.events[index + 1 :]:
        if later.proc == victim.proc and isinstance(
            later, (SendEvent, DeliverEvent, ViewEvent, CrashEvent)
        ):
            return None  # removal would corrupt the suffix
    events = [e for i, e in enumerate(trace) if i != index]
    return ForgedTrace(
        GcsTrace(events), "VS-LIVE", len(trace) - 1, final_view=victim.view
    )


def _forge_skeleton(trace: GcsTrace) -> Optional[ForgedTrace]:
    """Append a send the golden recording never saw.

    A trailing send violates no safety rule (its view never changes
    afterwards), so against the pre-forgery skeleton only VS-SKEL fires,
    witnessing the appended event.
    """
    procs = sorted(trace.processes())
    if not procs:
        return None
    last: GcsEvent = trace.events[-1]
    mutated = GcsTrace(trace)
    mutated.append(SendEvent(time=last.time, proc=procs[0], payload="skel-extra"))
    return ForgedTrace(mutated, "VS-SKEL", len(trace))


FORGERIES: Dict[str, Forgery] = {
    forgery.code: forgery
    for forgery in (
        Forgery(
            "VS-SELF-INCL",
            "strip the recipient from the last delivered view",
            _forge_self_inclusion,
        ),
        Forgery(
            "VS-MONO",
            "re-deliver the last view (non-increasing identifier)",
            _forge_monotonicity,
        ),
        Forgery(
            "VS-SELF-DLV",
            "remove a segment's last self-delivery before its view change",
            _forge_self_delivery,
        ),
        Forgery(
            "VS-VSYNC",
            "remove one co-mover's last delivery from another sender",
            _forge_virtual_synchrony,
        ),
        Forgery(
            "VS-TRANS-SET",
            "drop the recipient from its own transitional set",
            _forge_trans_set,
        ),
        Forgery(
            "VS-SPEC-REFINE",
            "swap a same-sender FIFO delivery pair at a third party",
            _forge_spec_refinement,
        ),
        Forgery(
            "MBRSHP-CONF",
            "replay the last start_change notice",
            _forge_mbrshp,
        ),
        Forgery(
            "MBRSHP-SRV-FORK",
            "re-form a seen view identifier with different members",
            _forge_srv_fork,
        ),
        Forgery(
            "MBRSHP-SRV-MONO",
            "form a regressing counter at a forgetful origin server",
            _forge_srv_mono,
        ),
        Forgery(
            "VS-LIVE",
            "remove the final view delivery at one process",
            _forge_liveness,
            needs_final_view=True,
        ),
        Forgery(
            "VS-SKEL",
            "append a send the golden recording never saw",
            _forge_skeleton,
            needs_golden=True,
        ),
    )
}


__all__ = [
    "FORGERIES",
    "ForgedTrace",
    "Forgery",
    "as_mutator",
]
