"""Executable refinement mappings (Section 6, Appendix A).

The paper proves trace inclusion by exhibiting refinement mappings from
the algorithm automata to the specification automata:

* ``R``  : WV_RFIFO  -> WV_RFIFO : SPEC (Lemma 6.1);
* ``R'`` : VS_RFIFO+TS -> VS_RFIFO : SPEC, extended to GCS -> SELF : SPEC
  (Lemmas 6.2 and 6.5) - ``R`` plus the history variable ``H_cut``;
* ``TS`` : VS_RFIFO+TS -> TRANS_SET : SPEC (Lemma 6.4), which needs the
  prophecy variable ``P_legal_views``.

Here each mapping becomes a *checker* attached to a scheduler as a step
hook: for every external step of the algorithm it applies the
corresponding specification step (inferring internal spec actions exactly
as the proofs' action correspondences do) and then asserts that the
refinement equations hold between the two states.  A disabled spec step
or a broken equation raises
:class:`~repro.errors.RefinementViolation`.

For TS, the prophecy variable predicts at start_change time which future
views will carry the given cid.  Running forward we cannot predict, so
the checker schedules each ``set_prev_view_q(v)`` at the first moment the
view ``v`` is *observed* (its earliest possible naming point).  When
``q`` has already moved past the view its synchronization message
declared by then, the checker *retro-times* the internal action instead:
it splices ``set_prev_view_q(v)`` into its recorded script of spec
actions at the position where ``q`` still held the declared view, and
replays the whole script through a fresh spec instance.  Internal actions
do not appear in traces, so the spliced script is a legal specification
execution with the same trace - the offline equivalent of the paper's
prophecy variable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro._collections import frozendict
from repro.checking.invariants import WorldView
from repro.core.vs_endpoint import VsRfifoTsEndpoint
from repro.errors import ActionNotEnabled, RefinementViolation
from repro.ioa import Action, Automaton, Composition
from repro.spec.trans_set import TransSetSpec
from repro.spec.vs_rfifo import FullSafetySpec, VsRfifoSpec
from repro.spec.wv_rfifo import WvRfifoSpec
from repro.types import ProcessId, View


def _fail(message: str) -> None:
    raise RefinementViolation(message)


class SafetyRefinementChecker:
    """R and R' made executable against WV/VS/SELF specs.

    Attach :meth:`hook` to a scheduler.  ``spec_cls`` selects the target:
    :class:`WvRfifoSpec` checks plain R; :class:`FullSafetySpec` checks
    R' against VS_RFIFO : SPEC and SELF : SPEC simultaneously.
    """

    def __init__(self, world: WorldView, spec_cls: type = FullSafetySpec) -> None:
        self.world = world
        self.spec = spec_cls(world.processes())
        self._check_cuts = isinstance(self.spec, VsRfifoSpec)

    # -- action correspondence ----------------------------------------------

    def hook(self, _system: Composition, _owner: Automaton, action: Action) -> None:
        try:
            self._simulate(action)
        except ActionNotEnabled as exc:
            _fail(f"spec step disabled for algorithm step {action!r}: {exc}")
        self._assert_mapping()

    def _simulate(self, action: Action) -> None:
        if action.name == "send":
            self.spec.apply(action)
        elif action.name == "deliver":
            self.spec.apply(action)
        elif action.name == "view":
            p, view = action.params[0], action.params[1]
            if self._check_cuts:
                old = self.spec.current_view[p]
                if (old, view) not in self.spec.cut:
                    vector = frozendict(
                        {q: self.spec.last_dlvrd[(q, p)] for q in self.spec.processes}
                    )
                    self.spec.apply(Action("set_cut", (old, view, vector)))
            self.spec.apply(Action("view", (p, view, None)))
        # All other algorithm actions simulate the empty spec step.

    # -- the refinement equations -------------------------------------------------

    def _assert_mapping(self) -> None:
        for p, ep in self.world.endpoints.items():
            if self.spec.current_view[p] != ep.current_view:
                _fail(
                    f"R: current_view[{p}] is {self.spec.current_view[p]} in the "
                    f"spec but {ep.current_view} at the end-point"
                )
            for q in self.world.endpoints:
                if self.spec.last_dlvrd[(q, p)] != ep.dlvrd(q):
                    _fail(
                        f"R: last_dlvrd[{q}][{p}] is {self.spec.last_dlvrd[(q, p)]} "
                        f"in the spec but {ep.dlvrd(q)} at the end-point"
                    )
            for view, queue in self.spec.msgs[p].items():
                log = ep.peek_buffer(p, view)
                mine = log.prefix_items() if log is not None else []
                if mine != queue:
                    _fail(
                        f"R: msgs[{p}][{view}] is {queue} in the spec but "
                        f"{mine} at the end-point"
                    )


class TransSetRefinementChecker:
    """The TS refinement (Lemma 6.4) made executable.

    ``prev_view[p][v]`` in the spec must equal
    ``sync_msg[p][v.startId(p)].view`` for the views the prophecy declared
    legal.  The checker performs the declarations (``set_prev_view``) as
    soon as a view is first observed in a membership delivery, reading the
    declared value off the end-points' synchronization messages - the
    white-box state the paper's mapping TS() references.
    """

    def __init__(self, world: WorldView) -> None:
        self.world = world
        self.spec = TransSetSpec(world.processes())
        # Every spec action applied so far, in order - the script that the
        # retro-timing splice replays.
        self._script: list = []

    def _apply(self, action: Action) -> None:
        self.spec.apply(action)
        self._script.append(action)

    def hook(self, _system: Composition, _owner: Automaton, action: Action) -> None:
        if action.name == "mbrshp.view":
            _p, view = action.params
            self._declare_for(view)
        elif action.name == "view":
            p, view = action.params[0], action.params[1]
            T = frozenset(action.params[2]) if len(action.params) > 2 else frozenset()
            self._declare_for(view)
            try:
                self._apply(Action("view", (p, view, T)))
            except ActionNotEnabled as exc:
                _fail(f"TS spec step disabled for view at {p}: {exc}")
            self._assert_mapping()

    def _declare_for(self, view: View) -> None:
        for q in view.members:
            ep = self.world.endpoints.get(q)
            if not isinstance(ep, VsRfifoTsEndpoint):
                continue
            if (q, view) in self.spec.prev_view:
                continue
            sync = ep.sync_msg_for(q, view.start_id(q))
            if sync is None or sync.view is None:
                continue  # not declared yet / compact "not in your T" marker
            declaration = Action("set_prev_view", (q, view))
            if self.spec.current_view[q] == sync.view:
                self._apply(declaration)
            else:
                self._retro_time(declaration, q, sync.view)

    def _retro_time(self, declaration: Action, q: ProcessId, declared_view: View) -> None:
        """Splice an internal declaration into the past and replay.

        ``q`` sent its synchronization message while in ``declared_view``
        and has since moved on; the declaration legally belongs at any
        point where the spec still had ``current_view[q] == declared_view``.
        """
        from repro.types import initial_view

        index = None
        for position, action in enumerate(self._script):
            if (
                action.name == "view"
                and action.params[0] == q
                and action.params[1] == declared_view
            ):
                index = position + 1
                break
        if index is None:
            if declared_view != initial_view(q):
                _fail(
                    f"TS: {q}'s sync declared {declared_view}, which the spec "
                    f"never recorded as {q}'s view"
                )
            index = 0  # declared from the default initial view
        script = self._script[:index] + [declaration] + self._script[index:]
        replayed = TransSetSpec(self.world.processes())
        try:
            for action in script:
                replayed.apply(action)
        except ActionNotEnabled as exc:
            _fail(f"TS: retro-timed declaration for {q} yields an illegal "
                  f"spec execution: {exc}")
        self.spec = replayed
        self._script = script

    def _assert_mapping(self) -> None:
        for p, ep in self.world.endpoints.items():
            if self.spec.current_view[p] != ep.current_view:
                _fail(
                    f"TS: current_view[{p}] is {self.spec.current_view[p]} in the "
                    f"spec but {ep.current_view} at the end-point"
                )


def attach_refinement_checkers(
    scheduler: Any,
    world: WorldView,
    *,
    safety: bool = True,
    transitional: bool = True,
) -> Tuple[Optional[SafetyRefinementChecker], Optional[TransSetRefinementChecker]]:
    """Convenience: hook the refinement checkers onto ``scheduler``."""
    safety_checker = None
    ts_checker = None
    if safety:
        safety_checker = SafetyRefinementChecker(world)
        scheduler.add_hook(safety_checker.hook)
    if transitional:
        ts_checker = TransSetRefinementChecker(world)
        scheduler.add_hook(ts_checker.hook)
    return safety_checker, ts_checker
