"""Executable refinement mappings (Section 6, Appendix A).

The paper proves trace inclusion by exhibiting refinement mappings from
the algorithm automata to the specification automata:

* ``R``  : WV_RFIFO  -> WV_RFIFO : SPEC (Lemma 6.1);
* ``R'`` : VS_RFIFO+TS -> VS_RFIFO : SPEC, extended to GCS -> SELF : SPEC
  (Lemmas 6.2 and 6.5) - ``R`` plus the history variable ``H_cut``;
* ``TS`` : VS_RFIFO+TS -> TRANS_SET : SPEC (Lemma 6.4), which needs the
  prophecy variable ``P_legal_views``.

Here each mapping becomes a *checker* attached to a scheduler as a step
hook: for every external step of the algorithm it applies the
corresponding specification step (inferring internal spec actions exactly
as the proofs' action correspondences do) and then asserts that the
refinement equations hold between the two states.  A disabled spec step
or a broken equation raises
:class:`~repro.errors.RefinementViolation`.

For TS, the prophecy variable predicts at start_change time which future
views will carry the given cid.  Running forward we cannot predict, so
the checker schedules each ``set_prev_view_q(v)`` at the first moment the
view ``v`` is *observed* (its earliest possible naming point).  When
``q`` has already moved past the view its synchronization message
declared by then, the checker *retro-times* the internal action instead:
it splices ``set_prev_view_q(v)`` into its recorded script of spec
actions at the position where ``q`` still held the declared view, and
replays the whole script through a fresh spec instance.  Internal actions
do not appear in traces, so the spliced script is a legal specification
execution with the same trace - the offline equivalent of the paper's
prophecy variable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro._collections import frozendict
from repro.checking.events import (
    CrashEvent,
    DeliverEvent,
    GcsEvent,
    GcsTrace,
    RecoverEvent,
    SendEvent,
    ViewEvent,
)
from repro.checking.invariants import WorldView
from repro.core.vs_endpoint import VsRfifoTsEndpoint
from repro.errors import ActionNotEnabled, RefinementViolation
from repro.ioa import Action, Automaton, Composition
from repro.spec.trans_set import TransSetSpec
from repro.spec.vs_rfifo import FullSafetySpec, VsRfifoSpec
from repro.spec.wv_rfifo import WvRfifoSpec
from repro.types import ProcessId, View


def _fail(message: str) -> None:
    raise RefinementViolation(message)


class SafetyRefinementChecker:
    """R and R' made executable against WV/VS/SELF specs.

    Attach :meth:`hook` to a scheduler.  ``spec_cls`` selects the target:
    :class:`WvRfifoSpec` checks plain R; :class:`FullSafetySpec` checks
    R' against VS_RFIFO : SPEC and SELF : SPEC simultaneously.
    """

    def __init__(self, world: WorldView, spec_cls: type = FullSafetySpec) -> None:
        self.world = world
        self.spec = spec_cls(world.processes())
        self._check_cuts = isinstance(self.spec, VsRfifoSpec)

    # -- action correspondence ----------------------------------------------

    def hook(self, _system: Composition, _owner: Automaton, action: Action) -> None:
        try:
            self._simulate(action)
        except ActionNotEnabled as exc:
            _fail(f"spec step disabled for algorithm step {action!r}: {exc}")
        self._assert_mapping()

    def _simulate(self, action: Action) -> None:
        if action.name == "send":
            self.spec.apply(action)
        elif action.name == "deliver":
            self.spec.apply(action)
        elif action.name == "view":
            p, view = action.params[0], action.params[1]
            if self._check_cuts:
                old = self.spec.current_view[p]
                if (old, view) not in self.spec.cut:
                    vector = frozendict(
                        {q: self.spec.last_dlvrd[(q, p)] for q in self.spec.processes}
                    )
                    self.spec.apply(Action("set_cut", (old, view, vector)))
            self.spec.apply(Action("view", (p, view, None)))
        # All other algorithm actions simulate the empty spec step.

    # -- the refinement equations -------------------------------------------------

    def _assert_mapping(self) -> None:
        for p, ep in self.world.endpoints.items():
            if self.spec.current_view[p] != ep.current_view:
                _fail(
                    f"R: current_view[{p}] is {self.spec.current_view[p]} in the "
                    f"spec but {ep.current_view} at the end-point"
                )
            for q in self.world.endpoints:
                if self.spec.last_dlvrd[(q, p)] != ep.dlvrd(q):
                    _fail(
                        f"R: last_dlvrd[{q}][{p}] is {self.spec.last_dlvrd[(q, p)]} "
                        f"in the spec but {ep.dlvrd(q)} at the end-point"
                    )
            for view, queue in self.spec.msgs[p].items():
                log = ep.peek_buffer(p, view)
                mine = log.prefix_items() if log is not None else []
                if mine != queue:
                    _fail(
                        f"R: msgs[{p}][{view}] is {queue} in the spec but "
                        f"{mine} at the end-point"
                    )


class TransSetRefinementChecker:
    """The TS refinement (Lemma 6.4) made executable.

    ``prev_view[p][v]`` in the spec must equal
    ``sync_msg[p][v.startId(p)].view`` for the views the prophecy declared
    legal.  The checker performs the declarations (``set_prev_view``) as
    soon as a view is first observed in a membership delivery, reading the
    declared value off the end-points' synchronization messages - the
    white-box state the paper's mapping TS() references.
    """

    def __init__(self, world: WorldView) -> None:
        self.world = world
        self.spec = TransSetSpec(world.processes())
        # Every spec action applied so far, in order - the script that the
        # retro-timing splice replays.
        self._script: list = []

    def _apply(self, action: Action) -> None:
        self.spec.apply(action)
        self._script.append(action)

    def hook(self, _system: Composition, _owner: Automaton, action: Action) -> None:
        if action.name == "mbrshp.view":
            _p, view = action.params
            self._declare_for(view)
        elif action.name == "view":
            p, view = action.params[0], action.params[1]
            T = frozenset(action.params[2]) if len(action.params) > 2 else frozenset()
            self._declare_for(view)
            try:
                self._apply(Action("view", (p, view, T)))
            except ActionNotEnabled as exc:
                _fail(f"TS spec step disabled for view at {p}: {exc}")
            self._assert_mapping()

    def _declare_for(self, view: View) -> None:
        for q in view.members:
            ep = self.world.endpoints.get(q)
            if not isinstance(ep, VsRfifoTsEndpoint):
                continue
            if (q, view) in self.spec.prev_view:
                continue
            sync = ep.sync_msg_for(q, view.start_id(q))
            if sync is None or sync.view is None:
                continue  # not declared yet / compact "not in your T" marker
            declaration = Action("set_prev_view", (q, view))
            if self.spec.current_view[q] == sync.view:
                self._apply(declaration)
            else:
                self._retro_time(declaration, q, sync.view)

    def _retro_time(self, declaration: Action, q: ProcessId, declared_view: View) -> None:
        """Splice an internal declaration into the past and replay.

        ``q`` sent its synchronization message while in ``declared_view``
        and has since moved on; the declaration legally belongs at any
        point where the spec still had ``current_view[q] == declared_view``.
        """
        from repro.types import initial_view

        index = None
        for position, action in enumerate(self._script):
            if (
                action.name == "view"
                and action.params[0] == q
                and action.params[1] == declared_view
            ):
                index = position + 1
                break
        if index is None:
            if declared_view != initial_view(q):
                _fail(
                    f"TS: {q}'s sync declared {declared_view}, which the spec "
                    f"never recorded as {q}'s view"
                )
            index = 0  # declared from the default initial view
        script = self._script[:index] + [declaration] + self._script[index:]
        replayed = TransSetSpec(self.world.processes())
        try:
            for action in script:
                replayed.apply(action)
        except ActionNotEnabled as exc:
            _fail(f"TS: retro-timed declaration for {q} yields an illegal "
                  f"spec execution: {exc}")
        self.spec = replayed
        self._script = script

    def _assert_mapping(self) -> None:
        for p, ep in self.world.endpoints.items():
            if self.spec.current_view[p] != ep.current_view:
                _fail(
                    f"TS: current_view[{p}] is {self.spec.current_view[p]} in the "
                    f"spec but {ep.current_view} at the end-point"
                )


# ----------------------------------------------------------------------
# Trace skeletons: cross-substrate execution equivalence
# ----------------------------------------------------------------------
#
# A *skeleton* is the time-free, view-identifier-free abstraction of a
# trace: per process, the sequence of view segments it passed through,
# and inside each segment the ordered sends and the per-sender ordered
# deliveries.  Everything substrate-specific is erased - wall-clock
# times, view identifiers (whose origin/counter depend on which
# membership server acted), the relative interleaving of *different*
# processes' events, Block/BlockOk handshakes and the membership-service
# notices (whose timing is an implementation detail of each substrate).
# What remains is exactly the application-observable structure the paper
# specifies, so a scenario recorded on one substrate can be asserted
# against the other two: the observed skeleton must equal the recorded
# ("golden") one, and any divergence is witnessed at the earliest trace
# index where the observed run demonstrably departs from the recording.


@dataclass
class _SkeletonSegment:
    """One per-process view segment as observed, with witness indices."""

    kind: str  # "initial" | "view" | "recover"
    opened_at: int  # index of the event that opened the segment
    members: Optional[Tuple[ProcessId, ...]] = None  # sorted; view segments only
    transitional: Optional[Tuple[ProcessId, ...]] = None
    sends: List[Tuple[Any, int]] = field(default_factory=list)  # (payload, index)
    deliveries: Dict[ProcessId, List[Tuple[Any, int]]] = field(default_factory=dict)
    crashed_at: Optional[int] = None
    closed_at: Optional[int] = None  # index of the event opening the next segment

    def abstract(self) -> Dict[str, Any]:
        """The time-free form stored in a golden skeleton."""
        return {
            "kind": self.kind,
            "members": list(self.members) if self.members is not None else None,
            "transitional": (
                list(self.transitional) if self.transitional is not None else None
            ),
            "sends": [payload for payload, _index in self.sends],
            "deliveries": {
                sender: [payload for payload, _index in items]
                for sender, items in sorted(self.deliveries.items())
            },
            "crashed": self.crashed_at is not None,
        }


class SkeletonBuilder:
    """Incrementally fold a trace into per-process skeleton segments."""

    def __init__(self) -> None:
        self.segments: Dict[ProcessId, List[_SkeletonSegment]] = {}

    def feed(self, index: int, event: GcsEvent) -> None:
        if not isinstance(
            event, (SendEvent, DeliverEvent, ViewEvent, CrashEvent, RecoverEvent)
        ):
            return  # Block handshakes and membership notices are erased
        segments = self.segments.get(event.proc)
        if segments is None:
            segments = self.segments[event.proc] = [_SkeletonSegment("initial", index)]
        segment = segments[-1]
        if isinstance(event, ViewEvent):
            segment.closed_at = index
            segments.append(
                _SkeletonSegment(
                    "view",
                    index,
                    members=tuple(sorted(event.view.members)),
                    transitional=tuple(sorted(event.transitional)),
                )
            )
        elif isinstance(event, RecoverEvent):
            segment.closed_at = index
            segments.append(_SkeletonSegment("recover", index))
        elif isinstance(event, SendEvent):
            segment.sends.append((event.payload, index))
        elif isinstance(event, DeliverEvent):
            segment.deliveries.setdefault(event.sender, []).append(
                (event.payload, index)
            )
        elif segment.crashed_at is None:  # CrashEvent
            segment.crashed_at = index


class TraceSkeleton:
    """The recorded (golden) form: per-process abstract segments."""

    def __init__(self, procs: Dict[ProcessId, List[Dict[str, Any]]]) -> None:
        self.procs = procs

    @classmethod
    def from_builder(cls, builder: SkeletonBuilder) -> "TraceSkeleton":
        return cls(
            {
                proc: [segment.abstract() for segment in segments]
                for proc, segments in sorted(builder.segments.items())
            }
        )

    @classmethod
    def from_trace(cls, trace: GcsTrace) -> "TraceSkeleton":
        builder = SkeletonBuilder()
        for index, event in enumerate(trace):
            builder.feed(index, event)
        return cls.from_builder(builder)

    def to_dict(self) -> Dict[str, Any]:
        return {"procs": self.procs}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceSkeleton":
        return cls(dict(data["procs"]))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "TraceSkeleton":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TraceSkeleton) and self.procs == other.procs


def extract_skeleton(trace: GcsTrace) -> TraceSkeleton:
    """The golden-trace abstraction of ``trace`` (see module notes)."""
    return TraceSkeleton.from_trace(trace)


def skeleton_divergence(
    golden: TraceSkeleton, builder: SkeletonBuilder, length: int
) -> Optional[Tuple[int, str]]:
    """Earliest divergence of the observed run from ``golden``, or None.

    The witness is the smallest trace index at which the divergence is
    demonstrable: an *extra* observed element is witnessed where it
    occurred; a *missing* element is witnessed where its absence becomes
    definite (the segment's close, or ``length`` for the final segment).
    """
    candidates: List[Tuple[int, str]] = []
    observed = builder.segments
    for proc in sorted(set(golden.procs) | set(observed)):
        golden_segments = golden.procs.get(proc)
        observed_segments = observed.get(proc)
        if golden_segments is None:
            candidates.append(
                (
                    observed_segments[0].opened_at,
                    f"unexpected process {proc} in the observed run",
                )
            )
            continue
        if observed_segments is None:
            candidates.append(
                (length, f"process {proc} from the golden skeleton never acted")
            )
            continue
        found = _proc_divergence(proc, golden_segments, observed_segments, length)
        if found is not None:
            candidates.append(found)
    return min(candidates) if candidates else None


def _proc_divergence(
    proc: ProcessId,
    golden_segments: List[Dict[str, Any]],
    observed_segments: List[_SkeletonSegment],
    length: int,
) -> Optional[Tuple[int, str]]:
    """First divergent segment of one process; later segments are moot."""
    for k in range(max(len(golden_segments), len(observed_segments))):
        if k >= len(golden_segments):
            segment = observed_segments[k]
            return (
                segment.opened_at,
                f"{proc}: unexpected extra segment #{k} ({segment.kind})",
            )
        if k >= len(observed_segments):
            kind = golden_segments[k]["kind"]
            return (length, f"{proc}: golden segment #{k} ({kind}) never opened")
        found = _segment_divergence(
            proc, k, golden_segments[k], observed_segments[k], length
        )
        if found is not None:
            return found
    return None


def _segment_divergence(
    proc: ProcessId,
    k: int,
    golden: Dict[str, Any],
    observed: _SkeletonSegment,
    length: int,
) -> Optional[Tuple[int, str]]:
    end = observed.closed_at if observed.closed_at is not None else length
    if golden["kind"] != observed.kind:
        return (
            observed.opened_at,
            f"{proc}: segment #{k} is {observed.kind}, golden says {golden['kind']}",
        )
    members = list(observed.members) if observed.members is not None else None
    if golden.get("members") != members:
        return (
            observed.opened_at,
            f"{proc}: segment #{k} members {members} != golden {golden.get('members')}",
        )
    transitional = (
        list(observed.transitional) if observed.transitional is not None else None
    )
    if golden.get("transitional") != transitional:
        return (
            observed.opened_at,
            f"{proc}: segment #{k} transitional {transitional} != golden "
            f"{golden.get('transitional')}",
        )
    candidates: List[Tuple[int, str]] = []
    found = _sequence_divergence(
        golden.get("sends", []),
        observed.sends,
        end,
        f"{proc}: segment #{k} send",
    )
    if found is not None:
        candidates.append(found)
    golden_deliveries = golden.get("deliveries", {})
    for sender in sorted(set(golden_deliveries) | set(observed.deliveries)):
        found = _sequence_divergence(
            golden_deliveries.get(sender, []),
            observed.deliveries.get(sender, []),
            end,
            f"{proc}: segment #{k} delivery from {sender}",
        )
        if found is not None:
            candidates.append(found)
    observed_crashed = observed.crashed_at is not None
    if bool(golden.get("crashed", False)) != observed_crashed:
        if observed_crashed:
            candidates.append(
                (observed.crashed_at, f"{proc}: unexpected crash in segment #{k}")
            )
        else:
            candidates.append(
                (end, f"{proc}: golden crash in segment #{k} never happened")
            )
    return min(candidates) if candidates else None


def _sequence_divergence(
    golden: List[Any],
    observed: List[Tuple[Any, int]],
    end: int,
    what: str,
) -> Optional[Tuple[int, str]]:
    for i in range(max(len(golden), len(observed))):
        if i >= len(observed):
            return (end, f"{what} #{i} ({golden[i]!r}) missing")
        payload, index = observed[i]
        if i >= len(golden):
            return (index, f"{what} #{i} ({payload!r}) unexpected")
        if golden[i] != payload:
            return (index, f"{what} #{i} is {payload!r}, golden says {golden[i]!r}")
    return None


def attach_refinement_checkers(
    scheduler: Any,
    world: WorldView,
    *,
    safety: bool = True,
    transitional: bool = True,
) -> Tuple[Optional[SafetyRefinementChecker], Optional[TransSetRefinementChecker]]:
    """Convenience: hook the refinement checkers onto ``scheduler``."""
    safety_checker = None
    ts_checker = None
    if safety:
        safety_checker = SafetyRefinementChecker(world)
        scheduler.add_hook(safety_checker.hook)
    if transitional:
        ts_checker = TransSetRefinementChecker(world)
        scheduler.add_hook(ts_checker.hook)
    return safety_checker, ts_checker
