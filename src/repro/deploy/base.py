"""The substrate-agnostic deployment contract.

A :class:`Deployment` is the paper's Figure 1 seen from the outside: a
set of GCS end-points over *some* substrate, with membership changes and
fault injection as environment inputs and one :class:`GcsTrace` of
everything observable.  Scenario scripts, experiments and integration
tests are written against this class only - the same coroutine runs over
the discrete-event simulator, in-process asyncio queues, or real TCP
sockets, and :meth:`check` audits any of them with the same property
checkers.

A new backend is one adapter: subclass, implement the abstract
methods over your transport, and every scenario in
:mod:`repro.deploy.scenarios` (and every parametrized integration test)
runs on it unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.checking.events import GcsTrace
from repro.checking.properties import check_deployment_trace
from repro.checking.refinement import TraceSkeleton, extract_skeleton
from repro.checking.verdict import Verdict, run_verdict
from repro.links import LinkCore
from repro.types import ProcessId, View


class Deployment(ABC):
    """One deployed group of GCS end-points over some substrate."""

    #: Short substrate name ("sim", "async", "tcp"), for display and
    #: parametrized test ids.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @abstractmethod
    async def setup(self, pids: Iterable[ProcessId]) -> View:
        """Create the end-points and form the initial view of all of them."""

    @abstractmethod
    async def close(self) -> None:
        """Tear the substrate down (tasks, sockets, ...)."""

    async def __aenter__(self) -> "Deployment":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    @abstractmethod
    async def send(self, pid: ProcessId, payload: Any) -> None:
        """Multicast ``payload`` from ``pid`` to its current view."""

    @abstractmethod
    async def settle(self) -> None:
        """Run until quiescent; raises SettleTimeoutError if it cannot."""

    @abstractmethod
    async def reconfigure(self, members: Iterable[ProcessId]) -> View:
        """Change the membership to ``members``; return the installed view."""

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    @abstractmethod
    async def partition(self, groups: Iterable[Iterable[ProcessId]]) -> List[View]:
        """Split the network; return the per-group views, in group order."""

    @abstractmethod
    async def heal(self) -> View:
        """Reunite the network; return the merged view."""

    @abstractmethod
    async def crash(self, pid: ProcessId) -> None:
        """Crash the end-point ``pid`` (Section 8)."""

    @abstractmethod
    async def recover(self, pid: ProcessId) -> None:
        """Recover ``pid``; the membership re-admits it."""

    # ------------------------------------------------------------------
    # the server fault domain (substrates with a crashable membership tier)
    # ------------------------------------------------------------------

    def server_ids(self) -> List[ProcessId]:
        """Membership-server ids, sorted; empty when the substrate runs
        an infallible membership (the paper's Section 8 assumption)."""
        return []

    async def server_crash(self, sid: Optional[ProcessId] = None) -> ProcessId:
        """Crash a membership server; its clients fail over to survivors."""
        raise NotImplementedError(f"{self.name} has no crashable membership tier")

    async def server_recover(self, sid: ProcessId) -> None:
        """Recover a crashed membership server from the durable store."""
        raise NotImplementedError(f"{self.name} has no crashable membership tier")

    async def server_partition(self, groups: Iterable[Iterable[ProcessId]]) -> Any:
        """Partition the server tier; clients follow their home server."""
        raise NotImplementedError(f"{self.name} has no crashable membership tier")

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def trace(self) -> GcsTrace:
        """The unconditional trace of every observable event so far."""

    @property
    @abstractmethod
    def links(self) -> LinkCore:
        """The substrate's unified :class:`~repro.links.LinkCore`.

        One partition matrix, fault pipeline, and counter set per
        deployment, whatever the substrate."""

    def link_totals(self) -> Dict[str, int]:
        """Per-kind wire-message counters (uniform across substrates)."""
        return self.links.totals()

    @abstractmethod
    def processes(self) -> List[ProcessId]:
        """All end-point ids, sorted."""

    @abstractmethod
    def current_view(self, pid: ProcessId) -> View:
        """The view currently installed at ``pid``."""

    @abstractmethod
    def delivered(self, pid: ProcessId) -> List[Tuple[ProcessId, Any]]:
        """Everything delivered to ``pid``'s application, in order."""

    @abstractmethod
    def views(self, pid: ProcessId) -> List[View]:
        """Every view installed at ``pid``, in order."""

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def check(
        self,
        *,
        final_view: Optional[View] = None,
        golden: Optional[TraceSkeleton] = None,
    ) -> None:
        """Audit the trace: full safety battery + MBRSHP conformance.

        With ``final_view`` given (a stabilised run), liveness
        (Property 4.2) is checked against it too; with a ``golden``
        skeleton (recorded on another substrate via :meth:`skeleton`),
        the run must also reproduce that execution structure.
        """
        check_deployment_trace(
            self.trace, self.processes(), final_view=final_view, golden=golden
        )

    def verdict(
        self,
        *,
        final_view: Optional[View] = None,
        golden: Optional[TraceSkeleton] = None,
    ) -> Verdict:
        """The same audit as :meth:`check`, as a structured verdict."""
        return run_verdict(
            self.trace, self.processes(), final_view=final_view, golden=golden
        )

    def skeleton(self) -> TraceSkeleton:
        """The golden-trace abstraction of this run (cross-substrate form)."""
        return extract_skeleton(self.trace)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} nodes={self.processes()}>"
