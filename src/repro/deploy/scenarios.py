"""Substrate-free scenario scripts.

Every function here takes a :class:`~repro.deploy.base.Deployment` and
drives it through one story - no substrate-specific branches, no access
to anything outside the Deployment contract.  The integration tests run
each scenario on all three backends and hold the resulting traces to the
same property checkers; that the *same coroutine* passes everywhere is
the repository's executable form of the paper's claim that the algorithm
is substrate-independent.
"""

from __future__ import annotations

from repro.deploy.base import Deployment


async def scenario_self_delivery(deployment: Deployment) -> None:
    """Every member multicasts twice; Self Delivery must hold for all."""
    await deployment.setup(["a", "b", "c"])
    for round_no in range(2):
        for pid in deployment.processes():
            await deployment.send(pid, f"{pid}-{round_no}")
        await deployment.settle()


async def scenario_reconfiguration(deployment: Deployment) -> None:
    """Shrink the group, then grow it back, with traffic in every view."""
    await deployment.setup(["a", "b", "c"])
    await deployment.send("a", "pre")
    await deployment.settle()
    await deployment.reconfigure(["a", "b"])
    await deployment.send("a", "mid")
    await deployment.settle()
    await deployment.reconfigure(["a", "b", "c"])
    await deployment.send("b", "post")
    await deployment.settle()


async def scenario_virtual_synchrony(deployment: Deployment) -> None:
    """Partition, diverge, heal: the virtual-synchrony acid test."""
    await deployment.setup(["a", "b", "c", "d"])
    for pid in deployment.processes():
        await deployment.send(pid, f"pre-{pid}")
    await deployment.settle()
    await deployment.partition([["a", "b"], ["c", "d"]])
    await deployment.send("a", "left")
    await deployment.send("c", "right")
    await deployment.settle()
    await deployment.heal()
    await deployment.send("b", "merged")
    await deployment.settle()


async def scenario_churn(deployment: Deployment) -> None:
    """A member crashes and recovers; traffic flows in every epoch."""
    await deployment.setup(["a", "b", "c"])
    await deployment.send("a", "hello")
    await deployment.settle()
    await deployment.crash("c")
    await deployment.send("a", "while-down")
    await deployment.settle()
    await deployment.recover("c")
    await deployment.send("c", "back")
    await deployment.settle()


async def scenario_crash_mid_sync(deployment: Deployment) -> None:
    """A member crashes while a membership round is in flight (Section 8).

    Messages are multicast and *not* settled before the crash, so the
    crash lands while deliveries and the ensuing view change are still
    in progress - the survivors must agree on what the crashed process's
    last view delivered (Virtual Synchrony across the crash), and the
    recovered process must rejoin under its original identity with a
    fresh initial state.
    """
    await deployment.setup(["a", "b", "c"])
    await deployment.send("a", "pre")
    await deployment.settle()
    # In-flight traffic at crash time: no settle between these and the
    # crash, so synchronization and the crash view change overlap.
    await deployment.send("a", "inflight-1")
    await deployment.send("b", "inflight-2")
    await deployment.crash("c")
    await deployment.settle()
    await deployment.send("a", "after")
    await deployment.settle()
    await deployment.recover("c")
    await deployment.send("c", "back")
    await deployment.settle()


SCENARIOS = {
    "self_delivery": scenario_self_delivery,
    "reconfiguration": scenario_reconfiguration,
    "virtual_synchrony": scenario_virtual_synchrony,
    "churn": scenario_churn,
    "crash_mid_sync": scenario_crash_mid_sync,
}
