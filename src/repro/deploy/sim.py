"""Deployment backend over the discrete-event simulator."""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from repro.checking.events import GcsTrace
from repro.deploy.base import Deployment
from repro.errors import SettleTimeoutError
from repro.net.world import SimWorld
from repro.types import ProcessId, View


class SimDeployment(Deployment):
    """Runs the group on :class:`SimWorld` (oracle membership, zero or
    scripted latency).  The async methods complete synchronously - the
    simulated clock runs to quiescence inside each call."""

    name = "sim"

    def __init__(self, **world_kwargs: Any) -> None:
        world_kwargs.setdefault("membership", "oracle")
        self.world = SimWorld(**world_kwargs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def setup(self, pids: Iterable[ProcessId]) -> View:
        self.world.add_nodes(list(pids))
        self.world.start()
        self.world.settle()
        view = self.world.oracle.views_formed[-1]
        self._verify_installed(view)
        return view

    async def close(self) -> None:
        pass  # nothing runs between calls; the world is plain objects

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    async def send(self, pid: ProcessId, payload: Any) -> None:
        node = self.world.node(pid)
        if node.runner.blocked:
            # The Figure 12 contract: wait out the pending view change.
            self.world.settle()
        node.send(payload)

    async def settle(self) -> None:
        self.world.settle()

    async def reconfigure(self, members: Iterable[ProcessId]) -> View:
        views = self.world.oracle.reconfigure([list(members)])
        self.world.settle()
        self._verify_installed(views[0])
        return views[0]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    async def partition(self, groups: Iterable[Iterable[ProcessId]]) -> List[View]:
        groups = [list(group) for group in groups]
        before = len(self.world.oracle.views_formed)
        self.world.partition(groups)
        self.world.settle()
        views = self.world.oracle.views_formed[before:]
        for view in views:
            self._verify_installed(view)
        return views

    async def heal(self) -> View:
        self.world.heal()
        self.world.settle()
        view = self.world.oracle.views_formed[-1]
        self._verify_installed(view)
        return view

    async def crash(self, pid: ProcessId) -> None:
        self.world.crash(pid)
        self.world.settle()

    async def recover(self, pid: ProcessId) -> None:
        self.world.recover(pid)
        self.world.settle()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    @property
    def trace(self) -> GcsTrace:
        return self.world.trace

    @property
    def links(self):
        return self.world.links

    def processes(self) -> List[ProcessId]:
        return sorted(self.world.nodes)

    def current_view(self, pid: ProcessId) -> View:
        return self.world.node(pid).current_view

    def delivered(self, pid: ProcessId) -> List[Tuple[ProcessId, Any]]:
        return list(self.world.node(pid).delivered)

    def views(self, pid: ProcessId) -> List[View]:
        return [view for view, _transitional in self.world.node(pid).views]

    # ------------------------------------------------------------------

    def _verify_installed(self, view: View) -> None:
        if not self.world.all_in_view(view):
            current = {
                pid: self.world.node(pid).current_view for pid in sorted(view.members)
            }
            raise SettleTimeoutError(
                f"simulation quiescent but {view} not installed everywhere: {current}"
            )
