"""Deployment backend over the discrete-event simulator."""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from repro.checking.events import GcsTrace
from repro.deploy.base import Deployment
from repro.errors import SettleTimeoutError
from repro.net.world import SimWorld
from repro.types import ProcessId, View


class SimDeployment(Deployment):
    """Runs the group on :class:`SimWorld`.  Membership is the scripted
    oracle by default, or - with ``membership='tier'`` - the same
    crash-recoverable :class:`~repro.membership.tier.MembershipTier` the
    runtime clusters use, over the simulated network.  The async methods
    complete synchronously - the simulated clock runs to quiescence
    inside each call."""

    name = "sim"

    def __init__(self, **world_kwargs: Any) -> None:
        world_kwargs.setdefault("membership", "oracle")
        if world_kwargs["membership"] == "servers":
            raise ValueError("SimDeployment supports 'oracle' or 'tier' membership")
        self.world = SimWorld(**world_kwargs)

    @property
    def _tier(self):
        return self.world.tier

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def setup(self, pids: Iterable[ProcessId]) -> View:
        self.world.add_nodes(list(pids))
        self.world.start()
        self.world.settle()
        view = self.world.views_formed[-1]
        self._verify_installed(view)
        return view

    async def close(self) -> None:
        pass  # nothing runs between calls; the world is plain objects

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    async def send(self, pid: ProcessId, payload: Any) -> None:
        node = self.world.node(pid)
        if node.runner.blocked:
            # The Figure 12 contract: wait out the pending view change.
            self.world.settle()
        node.send(payload)

    async def settle(self) -> None:
        self.world.settle()

    async def reconfigure(self, members: Iterable[ProcessId]) -> View:
        members = list(members)
        if self._tier is not None:
            changed = self.world.set_members(members)
            self.world.settle()
            if not changed:
                return self.world.node(members[0]).current_view
            view = self.world.views_formed[-1]
            self._verify_installed(view)
            return view
        views = self.world.oracle.reconfigure([members])
        self.world.settle()
        self._verify_installed(views[0])
        return views[0]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    async def partition(self, groups: Iterable[Iterable[ProcessId]]) -> List[View]:
        groups = [list(group) for group in groups]
        before = len(self.world.views_formed)
        self.world.partition(groups)
        self.world.settle()
        formed = self.world.views_formed[before:]
        if self._tier is not None:
            # The tier forms views in round order, not group order; match
            # each group to its view by membership.
            views = []
            for group in groups:
                target = frozenset(group)
                view = next((v for v in formed if v.members == target), None)
                if view is None:
                    raise SettleTimeoutError(
                        f"no view formed for partition group {sorted(target)}; "
                        f"formed: {formed}"
                    )
                views.append(view)
        else:
            views = formed
        for view in views:
            self._verify_installed(view)
        return views

    async def heal(self) -> View:
        self.world.heal()
        self.world.settle()
        view = self.world.views_formed[-1]
        self._verify_installed(view)
        return view

    async def crash(self, pid: ProcessId) -> None:
        self.world.crash(pid)
        self.world.settle()

    async def recover(self, pid: ProcessId) -> None:
        self.world.recover(pid)
        self.world.settle()

    # ------------------------------------------------------------------
    # the server fault domain (tier mode)
    # ------------------------------------------------------------------

    def server_ids(self) -> List[ProcessId]:
        if self._tier is None:
            return []
        return sorted(self._tier.servers)

    async def server_crash(self, sid: ProcessId = None) -> ProcessId:
        sid = self.world.server_crash(sid)
        self.world.settle()
        return sid

    async def server_recover(self, sid: ProcessId) -> None:
        self.world.server_recover(sid)
        self.world.settle()

    async def server_partition(self, groups: Iterable[Iterable[ProcessId]]) -> None:
        self.world.server_partition(groups)
        self.world.settle()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    @property
    def trace(self) -> GcsTrace:
        return self.world.trace

    @property
    def links(self):
        return self.world.links

    def processes(self) -> List[ProcessId]:
        return sorted(self.world.nodes)

    def current_view(self, pid: ProcessId) -> View:
        return self.world.node(pid).current_view

    def delivered(self, pid: ProcessId) -> List[Tuple[ProcessId, Any]]:
        return list(self.world.node(pid).delivered)

    def views(self, pid: ProcessId) -> List[View]:
        return [view for view, _transitional in self.world.node(pid).views]

    # ------------------------------------------------------------------

    def _verify_installed(self, view: View) -> None:
        if not self.world.all_in_view(view):
            current = {
                pid: self.world.node(pid).current_view for pid in sorted(view.members)
            }
            raise SettleTimeoutError(
                f"simulation quiescent but {view} not installed everywhere: {current}"
            )
