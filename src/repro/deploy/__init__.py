"""One deployment layer, three substrates.

The paper's algorithm is substrate-independent by construction; this
package makes that executable.  :class:`Deployment` is the common
contract, with backends over the discrete-event simulator
(:class:`SimDeployment`), in-process asyncio queues
(:class:`AsyncDeployment`), and real TCP sockets
(:class:`TcpDeployment`).  :func:`run_scenario` runs any scenario
coroutine on any substrate and returns the finished deployment for
post-hoc trace checking::

    from repro.deploy import run_scenario, scenario_reconfiguration
    for substrate in SUBSTRATES:
        deployment = run_scenario(substrate, scenario_reconfiguration)
        deployment.check()
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro.deploy.asyncio_backend import AsyncDeployment
from repro.deploy.base import Deployment
from repro.deploy.scenarios import (
    SCENARIOS,
    scenario_churn,
    scenario_crash_mid_sync,
    scenario_reconfiguration,
    scenario_self_delivery,
    scenario_virtual_synchrony,
)
from repro.deploy.sim import SimDeployment
from repro.deploy.tcp_backend import TcpDeployment

SUBSTRATES = ("sim", "async", "tcp")

_BACKENDS = {
    "sim": SimDeployment,
    "async": AsyncDeployment,
    "tcp": TcpDeployment,
}


def make_deployment(substrate: str, **kwargs: Any) -> Deployment:
    """Instantiate the backend named ``substrate`` ("sim"/"async"/"tcp").

    Must be called with a running event loop for the runtime backends;
    inside :func:`run_scenario` this is taken care of.
    """
    try:
        backend = _BACKENDS[substrate]
    except KeyError:
        raise ValueError(
            f"unknown substrate {substrate!r}; expected one of {sorted(_BACKENDS)}"
        ) from None
    return backend(**kwargs)


def run_scenario(
    substrate: str,
    scenario: Callable[[Deployment], Awaitable[None]],
    **kwargs: Any,
) -> Deployment:
    """Run ``scenario`` on a fresh deployment of ``substrate``.

    Creates the deployment inside the event loop (the runtime backends
    spawn tasks at construction time), always closes it, and returns it
    for inspection - ``deployment.trace``, ``deployment.delivered(pid)``,
    ``deployment.check()``.
    """

    async def main() -> Deployment:
        deployment = make_deployment(substrate, **kwargs)
        try:
            await scenario(deployment)
        finally:
            await deployment.close()
        return deployment

    return asyncio.run(main())


__all__ = [
    "SCENARIOS",
    "SUBSTRATES",
    "AsyncDeployment",
    "Deployment",
    "SimDeployment",
    "TcpDeployment",
    "make_deployment",
    "run_scenario",
    "scenario_churn",
    "scenario_crash_mid_sync",
    "scenario_reconfiguration",
    "scenario_self_delivery",
    "scenario_virtual_synchrony",
]
