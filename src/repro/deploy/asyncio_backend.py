"""Deployment backend over the in-process asyncio runtime."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from repro.checking.events import GcsTrace
from repro.deploy.base import Deployment
from repro.runtime.cluster import AsyncCluster
from repro.types import ProcessId, View


class AsyncDeployment(Deployment):
    """Runs the group on :class:`AsyncCluster`: asyncio queues as the
    transport, a :class:`~repro.membership.tier.MembershipTier` of real
    membership servers on the same hub."""

    name = "async"

    def __init__(self, **cluster_kwargs: Any) -> None:
        self.cluster = AsyncCluster(**cluster_kwargs)

    async def setup(self, pids: Iterable[ProcessId]) -> View:
        self.cluster.add_nodes(list(pids))
        return await self.cluster.start()

    async def close(self) -> None:
        await self.cluster.close()

    async def send(self, pid: ProcessId, payload: Any) -> None:
        await self.cluster.node(pid).send(payload)

    async def settle(self) -> None:
        await self.cluster.quiesce()

    async def reconfigure(self, members: Iterable[ProcessId]) -> View:
        return await self.cluster.reconfigure(members)

    async def partition(self, groups: Iterable[Iterable[ProcessId]]) -> List[View]:
        return await self.cluster.partition(groups)

    async def heal(self) -> View:
        return await self.cluster.heal()

    async def crash(self, pid: ProcessId) -> None:
        await self.cluster.crash(pid)

    async def recover(self, pid: ProcessId) -> None:
        await self.cluster.recover(pid)

    def server_ids(self) -> List[ProcessId]:
        return sorted(self.cluster.tier.servers)

    async def server_crash(self, sid: Optional[ProcessId] = None) -> ProcessId:
        return await self.cluster.server_crash(sid)

    async def server_recover(self, sid: ProcessId) -> None:
        await self.cluster.server_recover(sid)

    async def server_partition(
        self, groups: Iterable[Iterable[ProcessId]]
    ) -> List[View]:
        return await self.cluster.server_partition(groups)

    @property
    def trace(self) -> GcsTrace:
        return self.cluster.trace

    @property
    def links(self):
        return self.cluster.links

    def processes(self) -> List[ProcessId]:
        return sorted(self.cluster.nodes)

    def current_view(self, pid: ProcessId) -> View:
        return self.cluster.node(pid).current_view

    def delivered(self, pid: ProcessId) -> List[Tuple[ProcessId, Any]]:
        return list(self.cluster.node(pid).delivered)

    def views(self, pid: ProcessId) -> List[View]:
        return list(self.cluster.node(pid).views)
