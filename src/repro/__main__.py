"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo`` - run a narrated simulated scenario (multicast, partition,
  heal, recovery) with the safety battery at the end;
* ``experiments`` - run the headline experiments (E1, E4, E5, E10, E11)
  at moderate scale and print their claim-versus-measured tables;
* ``simulate`` - run a parameterised reconfiguration and print its
  numbers (see ``--help`` for knobs);
* ``chaos`` - run seeded adversarial episodes (E16) on any substrate,
  with ``--servers`` to fold membership-server faults in (E20) and
  ``--self-test`` to prove the checkers catch an injected bug and
  shrink it to a replayable minimal schedule;
* ``soak`` - run an open-ended chaos stream (E20) for a target span of
  simulated or wall time, auditing the trace and endpoint memory as it
  goes;
* ``verdict`` - run the verdict engine over a scenario, a seeded chaos
  episode, or a saved plan: every registered rule in one pass, earliest
  violating event index per violated rule, stable ``VS-*``/``MBRSHP-*``
  codes, canonical (byte-stable) JSON output.  ``--record-golden`` /
  ``--golden`` record a trace skeleton on one substrate and assert it on
  another; ``--mutate CODE`` applies the registered forgery for a code;
  ``--shrink`` minimises a failing plan while preserving its finding.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.chaos import ChaosPlan, ChaosRunner
from repro.checking import check_all_safety
from repro.core import MinCopiesStrategy, SimpleStrategy
from repro.experiments import (
    ALGORITHMS,
    format_table,
    measure_compact_syncs,
    measure_forwarding,
    measure_obsolete_views,
    measure_reconfiguration,
    measure_two_tier,
)
from repro.net import ConstantLatency, LognormalLatency, SimWorld


def _cmd_demo(_args: argparse.Namespace) -> int:
    print("== repro demo: virtually synchronous group multicast ==\n")
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
    nodes = world.add_nodes(["alice", "bob", "carol", "dave"])
    world.start()
    world.run()
    print(f"[t={world.now():4.1f}] initial view: {sorted(nodes[0].current_view.members)}")

    nodes[0].send("hello everyone")
    world.run()
    print(f"[t={world.now():4.1f}] alice's message delivered at: "
          f"{[n.pid for n in nodes if ('alice', 'hello everyone') in n.delivered]}")

    world.partition([["alice", "bob"], ["carol", "dave"]])
    world.run()
    print(f"[t={world.now():4.1f}] partition: "
          f"{sorted(nodes[0].current_view.members)} | {sorted(nodes[2].current_view.members)}")

    nodes[2].send("island life")
    world.run()
    world.heal()
    world.run()
    final = world.oracle.views_formed[-1]
    transitional = dict(nodes[0].views)[final]
    print(f"[t={world.now():4.1f}] merged view: {sorted(final.members)}; "
          f"alice's transitional set: {sorted(transitional)}")

    world.crash("dave")
    world.run()
    world.recover("dave")
    world.run()
    print(f"[t={world.now():4.1f}] dave crashed, recovered, rejoined: "
          f"{sorted(world.nodes['dave'].current_view.members)}")

    check_all_safety(world.trace, list(world.nodes))
    print("\nall safety properties verified on the recorded trace")
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    rows = []
    for name, endpoint_cls in ALGORITHMS.items():
        result = measure_reconfiguration(endpoint_cls, group_size=8, algorithm_name=name)
        rows.append((name, result.extra_rounds, result.sync_messages, result.agreement_messages))
    print(format_table(
        ["algorithm", "extra rounds", "sync msgs", "agreement msgs"],
        rows,
        title="E1/E2 reconfiguration (n=8, one member leaves)",
    ))
    print()
    rows = []
    for strategy in (SimpleStrategy(), MinCopiesStrategy()):
        result = measure_forwarding(strategy, group_size=6, backlog=4, holders=2)
        rows.append((result.strategy, result.forwarded_copies, result.copies_per_missing))
    print(format_table(
        ["strategy", "forwarded copies", "copies/missing"],
        rows,
        title="E4 forwarding strategies (2 holders)",
    ))
    print()
    rows = []
    for mode in ("revise", "serialize"):
        result = measure_obsolete_views(mode, churn=4)
        rows.append((mode, result.app_views_per_process, result.total_time))
    print(format_table(
        ["mode", "app views/process", "settle time"],
        rows,
        title="E5 obsolete-view suppression (4 revisions)",
    ))
    print()
    rows = []
    for leaders in (0, 4):
        result = measure_two_tier(group_size=16, leaders=leaders)
        rows.append((leaders or "flat", result.sync_messages, result.extra_latency))
    print(format_table(
        ["leaders", "sync msgs", "extra latency"],
        rows,
        title="E10 two-tier hierarchy (n=16)",
    ))
    print()
    rows = []
    for compact in (False, True):
        result = measure_compact_syncs(group_size=8, compact=compact)
        rows.append(("compact" if compact else "full", result.sync_volume))
    print(format_table(
        ["variant", "sync volume"],
        rows,
        title="E11 compact syncs on a merge (n=8)",
    ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.algorithm not in ALGORITHMS:
        print(f"unknown algorithm {args.algorithm!r}; choose from {sorted(ALGORITHMS)}",
              file=sys.stderr)
        return 2
    latency = (
        LognormalLatency(args.latency, 0.5, seed=args.seed)
        if args.wan
        else ConstantLatency(args.latency)
    )
    result = measure_reconfiguration(
        ALGORITHMS[args.algorithm],
        group_size=args.nodes,
        latency=latency,
        round_duration=args.membership_round,
        algorithm_name=args.algorithm,
        check=True,
    )
    print(format_table(
        ["algorithm", "n", "membership latency", "gcs latency", "extra rounds"],
        [(result.algorithm, result.group_size, result.membership_latency,
          result.gcs_latency, result.extra_rounds)],
        title="reconfiguration simulation (safety-checked)",
    ))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments import chaos_self_test, chaos_sweep

    if args.self_test:
        result = chaos_self_test(substrate=args.backend, seed=args.seed)
        if result is None:
            print("chaos self-test FAILED: the injected known-bad mutation "
                  "was not caught by the checkers", file=sys.stderr)
            return 1
        print("chaos self-test: injected known-bad mutation caught and shrunk")
        print(result.summary())
        print("minimal replayable schedule (replay with "
              f"ChaosPlan.from_dict on backend {args.backend!r}):")
        print(result.plan.describe())
        print("finding (seed, code, witness_index, minimal_schedule):")
        print(result.finding_json())
        return 0

    if args.episodes == 1:
        plan = ChaosPlan.generate(
            args.seed,
            intensity=args.intensity,
            overlay_leaders=args.overlay_leaders,
            servers=args.servers,
        )
        print(plan.describe())
        episode = ChaosRunner(args.backend).run(plan)
        print(episode.summary())
        if episode.ok:
            return 0
        from repro.chaos import shrink_plan

        shrunk = shrink_plan(ChaosRunner(args.backend), plan)
        if shrunk is not None:
            print(shrunk.summary(), file=sys.stderr)
            print(shrunk.finding_json(), file=sys.stderr)
        return 1

    result = chaos_sweep(
        args.backend,
        episodes=args.episodes,
        seed_base=args.seed,
        intensity=args.intensity,
        overlay_leaders=args.overlay_leaders,
        servers=args.servers,
    )
    injected = {k: v for k, v in result.injected.items() if k != "messages"}
    print(f"[{result.substrate}] {result.episodes} episodes "
          f"(seeds {args.seed}..{args.seed + args.episodes - 1}, "
          f"{result.por_skipped} POR-skipped), "
          f"{result.ops} ops, injected faults {injected}: "
          f"{result.violations} violation(s)")
    if result.failures:
        from repro.chaos import shrink_plan

        for failure in result.failures:
            print(failure, file=sys.stderr)
        # Shrink the first failing seed to a replayable minimal schedule.
        first_bad = int(result.failures[0].split("seed=")[1].split()[0])
        shrunk = shrink_plan(
            ChaosRunner(args.backend),
            ChaosPlan.generate(
                first_bad,
                intensity=args.intensity,
                overlay_leaders=args.overlay_leaders,
                servers=args.servers,
            ),
        )
        if shrunk is not None:
            print(shrunk.summary(), file=sys.stderr)
            print(shrunk.plan.describe(), file=sys.stderr)
            print(shrunk.finding_json(), file=sys.stderr)
        return 1
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.chaos import SoakRunner

    runner = SoakRunner(args.backend)
    report = runner.soak(
        args.seed,
        duration=args.duration,
        servers=args.servers,
        intensity=args.intensity,
        audit_every=args.audit_every,
        max_ops=args.max_ops,
    )
    print(report.summary())
    if args.output is not None:
        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")
    return 0 if report.ok else 1


def _cmd_verdict(args: argparse.Namespace) -> int:
    from repro.checking.codes import REGISTRY
    from repro.checking.forge import FORGERIES, as_mutator
    from repro.checking.refinement import TraceSkeleton, extract_skeleton
    from repro.checking.verdict import SOUNDNESS, run_verdict

    if args.codes:
        registry = {code: info.to_dict() for code, info in sorted(REGISTRY.items())}
        print(json.dumps(registry, sort_keys=True, indent=2))
        return 0

    sources = [s for s in (args.scenario, args.plan, args.seed) if s is not None]
    if len(sources) != 1:
        print("verdict: give exactly one of --scenario, --plan, --seed "
              "(or --codes)", file=sys.stderr)
        return 2

    forgery = None
    if args.mutate is not None:
        forgery = FORGERIES.get(args.mutate)
        if forgery is None:
            print(f"verdict: no forgery for code {args.mutate!r}; "
                  f"choose from {sorted(FORGERIES)}", file=sys.stderr)
            return 2

    # -- obtain the trace ------------------------------------------------
    source: dict = {"backend": args.backend}
    episode = None
    if args.scenario is not None:
        from repro.deploy import SCENARIOS, run_scenario

        if args.scenario not in SCENARIOS:
            print(f"verdict: unknown scenario {args.scenario!r}; "
                  f"choose from {sorted(SCENARIOS)}", file=sys.stderr)
            return 2
        source.update(kind="scenario", name=args.scenario)
        deployment = run_scenario(args.backend, SCENARIOS[args.scenario])
        trace, procs = deployment.trace, deployment.processes()
    else:
        if args.plan is not None:
            with open(args.plan) as handle:
                plan = ChaosPlan.from_dict(json.load(handle))
            source.update(kind="plan", seed=plan.seed, path=args.plan)
        else:
            plan = ChaosPlan.generate(args.seed, intensity=args.intensity)
            source.update(kind="seed", seed=args.seed, intensity=args.intensity)
        episode = ChaosRunner(args.backend).run(plan)
        if episode.trace is None:  # stalled: no trace to audit
            output = {
                "source": source,
                "verdict": {
                    "status": "FAIL",
                    "events": episode.events,
                    "rules": [],
                    "soundness": SOUNDNESS,
                    "violations": [{
                        "code": "RUN-STALL",
                        "witness_index": None,
                        "message": episode.violation,
                    }],
                },
            }
            _emit_verdict(output, args.output)
            return 1
        trace, procs = episode.trace, list(plan.processes)

    # -- optional forgery / golden handling ------------------------------
    golden = None
    final_view = None
    if args.record_golden is not None:
        with open(args.record_golden, "w") as handle:
            handle.write(extract_skeleton(trace).to_json())
        source["recorded_golden"] = args.record_golden
    if args.golden is not None:
        with open(args.golden) as handle:
            golden = TraceSkeleton.from_json(handle.read())
        source["golden"] = args.golden
    if forgery is not None:
        if forgery.needs_golden and golden is None:
            golden = extract_skeleton(trace)
        forged = forgery.apply(trace)
        if forged is None:
            print(f"verdict: the trace has no material for --mutate "
                  f"{args.mutate} ({forgery.description})", file=sys.stderr)
            return 2
        trace = forged.trace
        final_view = forged.final_view
        source.update(mutate=args.mutate, expected_index=forged.expected_index)

    verdict = run_verdict(trace, procs, final_view=final_view, golden=golden)
    output = {"source": source, "verdict": verdict.to_dict()}

    # -- optional finding-preserving shrink ------------------------------
    if args.shrink and not verdict.ok and episode is not None:
        from repro.chaos import shrink_plan

        mutator = as_mutator(forgery) if forgery is not None else None
        shrunk = shrink_plan(
            ChaosRunner(args.backend, mutate_trace=mutator), episode.plan
        )
        if shrunk is not None:
            output["finding"] = shrunk.finding()

    _emit_verdict(output, args.output)
    return 0 if verdict.ok else 1


def _emit_verdict(output: dict, path: Optional[str]) -> None:
    """Canonical JSON: key-sorted, time-free, byte-stable per trace."""
    text = json.dumps(output, sort_keys=True, indent=2)
    print(text)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.experiments.scale import measure_scale_endpoints, measure_scale_groups

    rows = []
    for n in args.n:
        result = measure_scale_endpoints(n=n, substrate=args.substrate, check=n <= 64)
        rows.append((
            result.n, result.leaders, result.sync_messages, result.model_messages,
            f"{result.model_ratio:.2f}", result.flat_messages,
            f"{result.wall_seconds:.1f}s", result.converged,
        ))
    print(format_table(
        ["n", "L", "sync msgs", "model", "ratio", "flat", "wall", "converged"],
        rows,
        title=f"E19 endpoint axis ({args.substrate}, member crash with two-tier overlay)",
    ))
    print()
    rows = []
    for g in args.g:
        result = measure_scale_groups(processes=args.processes, groups=g)
        rows.append((
            result.groups, result.shards, result.views_formed,
            f"{result.crash_groups_touched}/{result.groups}",
            f"{result.wall_seconds:.1f}s", result.all_settled,
        ))
    print(format_table(
        ["groups", "shards", "views", "crash touched", "wall", "settled"],
        rows,
        title=f"E19 group axis (sim, {args.processes} processes, sharded membership)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Client-server virtually synchronous group multicast "
                    "(Keidar & Khazan, ICDCS 2000) - reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run a narrated simulated scenario")
    sub.add_parser("experiments", help="run the headline experiments")

    simulate = sub.add_parser("simulate", help="run one parameterised reconfiguration")
    simulate.add_argument("--algorithm", default="gcs-1round (paper)",
                          help="one of: " + ", ".join(sorted(ALGORITHMS)))
    simulate.add_argument("--nodes", type=int, default=8)
    simulate.add_argument("--latency", type=float, default=1.0)
    simulate.add_argument("--membership-round", type=float, default=3.0)
    simulate.add_argument("--wan", action="store_true",
                          help="lognormal (heavy-tailed) latency instead of constant")
    simulate.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser(
        "chaos",
        help="run seeded adversarial fault schedules (E16)",
        description="Run seeded chaos episodes: randomized operation "
                    "schedules under message drop/duplicate/delay/reorder "
                    "faults, audited by the full safety battery.  A "
                    "violating schedule is shrunk to a minimal replayable "
                    "form and printed with its seed.",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed of the episode (or the sweep's first seed)")
    chaos.add_argument("--backend", default="sim", choices=["sim", "async", "tcp"])
    chaos.add_argument("--episodes", type=int, default=1,
                       help="number of consecutive seeds to run (default 1)")
    chaos.add_argument("--intensity", type=float, default=1.0,
                       help="fault-rate multiplier (0 disables message faults)")
    chaos.add_argument("--overlay-leaders", type=int, default=0,
                       help="run episodes under the two-tier scale overlay "
                            "with this many leaders, enabling leader_crash "
                            "ops (default 0: no overlay)")
    chaos.add_argument("--servers", type=int, default=0,
                       help="run episodes on a crashable membership tier of "
                            "this many servers, enabling server_crash/"
                            "server_recover/server_partition ops (E20; "
                            "default 0: infallible membership)")
    chaos.add_argument("--self-test", action="store_true",
                       help="inject a known-bad trace mutation and require "
                            "the pipeline to catch and shrink it")

    soak = sub.add_parser(
        "soak",
        help="run an open-ended chaos stream with periodic audits (E20)",
        description="Soak mode: stream the seeded chaos op distribution "
                    "for a target time span (simulated seconds on the sim "
                    "backend, wall seconds on async/tcp), settling and "
                    "running the full verdict battery every --audit-every "
                    "ops, and asserting bounded endpoint memory at every "
                    "clean audit point on the simulator.",
    )
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--backend", default="sim", choices=["sim", "async", "tcp"])
    soak.add_argument("--duration", type=float, default=3600.0,
                      help="time span: simulated seconds on sim (default "
                           "3600 = one simulated hour), wall seconds on "
                           "async/tcp (shorten it there)")
    soak.add_argument("--servers", type=int, default=3,
                      help="membership-tier size; >= 2 folds server faults "
                           "into the stream (default 3; 0 disables)")
    soak.add_argument("--intensity", type=float, default=1.0,
                      help="fault-rate multiplier (0 disables message faults)")
    soak.add_argument("--audit-every", type=int, default=50,
                      help="ops between settle+verdict audits (default 50)")
    soak.add_argument("--max-ops", type=int, default=None,
                      help="hard cap on operations regardless of duration")
    soak.add_argument("--output", default=None, metavar="FILE",
                      help="write the soak report JSON to FILE (CI artifact)")

    scale = sub.add_parser(
        "scale",
        help="run the E19 scale sweep (two-tier overlay + sharded membership)",
        description="Measure both scalability axes: sync traffic of a "
                    "crash reconfiguration at group size n with the "
                    "two-tier overlay (vs the §9 cost model), and "
                    "reconfiguration locality with g groups on the "
                    "group-sharded membership tier.",
    )
    scale.add_argument("--n", type=int, nargs="*", default=[32, 200],
                       help="endpoint-axis group sizes (default: 32 200)")
    scale.add_argument("--g", type=int, nargs="*", default=[8, 64],
                       help="group-axis group counts (default: 8 64)")
    scale.add_argument("--processes", type=int, default=200,
                       help="process pool for the group axis (default: 200)")
    scale.add_argument("--substrate", default="sim", choices=["sim", "async", "tcp"],
                       help="substrate for the endpoint axis (default: sim)")

    verdict = sub.add_parser(
        "verdict",
        help="run the verdict engine: every trace rule, earliest witness",
        description="Run every registered trace rule over one run's trace "
                    "in a single pass and print the structured verdict: "
                    "PASS, or FAIL with the earliest violating event index "
                    "per violated rule under stable VS-*/MBRSHP-* codes. "
                    "Output JSON is canonical (key-sorted, time-free): two "
                    "runs over the same trace are byte-identical.",
    )
    verdict.add_argument("--scenario", default=None,
                         help="audit a named E15 scenario run")
    verdict.add_argument("--plan", default=None, metavar="FILE",
                         help="audit a saved chaos plan (JSON from a finding)")
    verdict.add_argument("--seed", type=int, default=None,
                         help="audit the chaos episode generated from a seed")
    verdict.add_argument("--backend", default="sim", choices=["sim", "async", "tcp"])
    verdict.add_argument("--intensity", type=float, default=1.0,
                         help="fault-rate multiplier for --seed (default 1.0)")
    verdict.add_argument("--mutate", default=None, metavar="CODE",
                         help="apply the registered forgery for a violation "
                              "code before checking (negative self-test)")
    verdict.add_argument("--golden", default=None, metavar="FILE",
                         help="assert the run against a recorded skeleton")
    verdict.add_argument("--record-golden", default=None, metavar="FILE",
                         help="record this run's trace skeleton to FILE")
    verdict.add_argument("--shrink", action="store_true",
                         help="on a failing plan/seed source, shrink to a "
                              "minimal schedule preserving code and witness")
    verdict.add_argument("--codes", action="store_true",
                         help="print the violation-code registry and exit")
    verdict.add_argument("--output", default=None, metavar="FILE",
                         help="also write the verdict JSON to FILE (CI artifact)")

    lint = sub.add_parser(
        "lint",
        help="statically verify automaton definitions (R1-R4)",
        description="Static verifier for the I/O-automaton DSL: "
                    "precondition purity (R1), inheritance conformance "
                    "(R2), signature coherence (R3), and determinism "
                    "hygiene (R4), without executing any transition.",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "experiments": _cmd_experiments,
        "simulate": _cmd_simulate,
        "chaos": _cmd_chaos,
        "soak": _cmd_soak,
        "scale": _cmd_scale,
        "verdict": _cmd_verdict,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
