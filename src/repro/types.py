"""Core value types of the group communication service (Section 3).

The paper's type ``View = ViewId x SetOf(Proc) x (Proc -> StartChangeId)``
is realised by :class:`View`.  All types here are immutable and hashable:
views are used as dictionary keys throughout the algorithm (``msgs[q][v]``),
and the paper's equality rule - *two views are considered the same if they
consist of identical triples* - falls out of structural equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import total_ordering
from typing import FrozenSet, Iterable, Mapping, Tuple

from repro._collections import frozendict

# A process (equivalently: GCS end-point) identifier.  The paper uses the
# words "process" and "end-point" interchangeably; so do we.
ProcessId = str

# Locally unique, increasing identifiers carried by start_change
# notifications.  Local uniqueness is all the algorithm needs (Section 1);
# integers with the smallest element CID_ZERO suffice.
StartChangeId = int

CID_ZERO: StartChangeId = 0


@total_ordering
@dataclass(frozen=True, eq=True)
class ViewId:
    """A view identifier from a (here: totally) ordered set.

    The paper only requires a partial order with a smallest element
    ``vid_0``.  We use a (counter, origin) pair ordered lexicographically:
    concurrent partitions generate distinct identifiers by virtue of the
    ``origin`` tiebreak, and the total order trivially satisfies the
    required partial order.
    """

    counter: int
    origin: str = ""

    def __lt__(self, other: "ViewId") -> bool:
        if not isinstance(other, ViewId):
            return NotImplemented
        return (self.counter, self.origin) < (other.counter, other.origin)

    def next(self, origin: str = "") -> "ViewId":
        """A fresh identifier strictly greater than this one."""
        return ViewId(self.counter + 1, origin)

    def __reduce__(self):
        # Constructor-based pickling: view identifiers are embedded in
        # every view and wire message, so the strict-mode fingerprint
        # path pickles them constantly.
        return (ViewId, (self.counter, self.origin))

    def __repr__(self) -> str:
        if self.origin:
            return f"ViewId({self.counter}, {self.origin!r})"
        return f"ViewId({self.counter})"


VID_ZERO = ViewId(0)


@dataclass(frozen=True, eq=True)
class View:
    """A membership view: ``(id, set of members, startId map)``.

    ``start_ids`` maps each member to the :data:`StartChangeId` in the last
    ``start_change`` it received before receiving this view.  Including this
    map in the view is the paper's key idea: it lets end-points identify the
    right synchronization messages without pre-agreeing on a global tag.
    """

    vid: ViewId
    members: FrozenSet[ProcessId]
    start_ids: frozendict = field(default_factory=frozendict)

    def __post_init__(self) -> None:
        if not isinstance(self.members, frozenset):
            object.__setattr__(self, "members", frozenset(self.members))
        if not isinstance(self.start_ids, frozendict):
            object.__setattr__(self, "start_ids", frozendict(self.start_ids))

    def start_id(self, process: ProcessId) -> StartChangeId:
        """The paper's ``v.startId(p)``."""
        return self.start_ids[process]

    def __contains__(self, process: ProcessId) -> bool:
        return process in self.members

    def __reduce__(self):
        return (View, (self.vid, self.members, self.start_ids))

    def __repr__(self) -> str:
        members = ",".join(sorted(self.members))
        return f"View({self.vid!r}, {{{members}}})"


def initial_view(process: ProcessId) -> View:
    """The default singleton view ``v_p`` an end-point starts in.

    Per Figure 2: ``v_p = <vid_0, {p}, {(p -> cid_0)}>``.
    """
    return View(VID_ZERO, frozenset({process}), frozendict({process: CID_ZERO}))


def make_view(
    counter: int,
    members: Iterable[ProcessId],
    start_ids: Mapping[ProcessId, StartChangeId] | None = None,
    origin: str = "",
) -> View:
    """Convenience constructor used by tests, examples and the servers.

    When ``start_ids`` is omitted every member is mapped to
    :data:`CID_ZERO`; real membership services always supply the map.
    """
    member_set = frozenset(members)
    if start_ids is None:
        start_ids = {p: CID_ZERO for p in member_set}
    missing = member_set - set(start_ids)
    if missing:
        raise ValueError(f"start_ids missing bindings for {sorted(missing)}")
    return View(ViewId(counter, origin), member_set, frozendict(start_ids))


@dataclass(frozen=True, eq=True)
class StartChange:
    """A ``start_change`` notification: ``(cid, suggested member set)``."""

    cid: StartChangeId
    members: FrozenSet[ProcessId]

    def __post_init__(self) -> None:
        if not isinstance(self.members, frozenset):
            object.__setattr__(self, "members", frozenset(self.members))


# A cut maps each process to the index of the last message from it that the
# cut's owner commits to deliver before the next view (Section 5.2).
Cut = frozendict


def make_cut(bindings: Mapping[ProcessId, int] | Iterable[Tuple[ProcessId, int]]) -> Cut:
    """Build an immutable cut from process -> last-index bindings."""
    return frozendict(dict(bindings))


def cut_max(cuts: Iterable[Cut], processes: Iterable[ProcessId]) -> Cut:
    """Pointwise maximum of ``cuts`` over ``processes``.

    This is the paper's ``max_{r in T} sync_msg[r][...].cut(q)``; absent
    bindings count as 0 (no messages committed).
    """
    cuts = list(cuts)
    return frozendict({q: max((c.get(q, 0) for c in cuts), default=0) for q in processes})
