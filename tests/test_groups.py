"""Tests for multiple multicast groups over shared processes."""

import pytest

from repro.checking import check_all_safety
from repro.groups import MultiGroupWorld
from repro.net import ConstantLatency


def make_world():
    world = MultiGroupWorld(latency=ConstantLatency(1.0), round_duration=1.0)
    for pid in ("p0", "p1", "p2", "p3"):
        world.add_process(pid)
    return world


def test_disjoint_groups_form_independently():
    world = make_world()
    world.join("p0", "red"); world.join("p1", "red")
    world.join("p2", "blue"); world.join("p3", "blue")
    world.run()
    assert world.settled("red") and world.settled("blue")
    assert world.group_view("red").members == {"p0", "p1"}
    assert world.group_view("blue").members == {"p2", "p3"}


def test_overlapping_membership():
    world = make_world()
    for pid in ("p0", "p1", "p2"):
        world.join(pid, "chat")
    for pid in ("p1", "p2", "p3"):
        world.join(pid, "metrics")
    world.run()
    p1 = world.processes["p1"]
    assert set(p1.groups()) == {"chat", "metrics"}
    assert p1.current_view("chat").members == {"p0", "p1", "p2"}
    assert p1.current_view("metrics").members == {"p1", "p2", "p3"}


def test_messages_stay_within_their_group():
    world = make_world()
    for pid in ("p0", "p1", "p2"):
        world.join(pid, "chat")
    for pid in ("p1", "p2", "p3"):
        world.join(pid, "metrics")
    world.run()
    world.processes["p0"].send("chat", "hello")
    world.processes["p3"].send("metrics", "cpu=1")
    world.run()
    p1 = world.processes["p1"]
    assert ("p0", "hello") in p1.delivered["chat"]
    assert ("p3", "cpu=1") in p1.delivered["metrics"]
    assert p1.delivered["chat"] != p1.delivered["metrics"]
    # p3 is not in chat: nothing leaked
    assert "chat" not in world.processes["p3"].delivered


def test_reconfiguring_one_group_leaves_others_untouched():
    world = make_world()
    for pid in ("p0", "p1", "p2"):
        world.join(pid, "chat")
        world.join(pid, "metrics")
    world.run()
    metrics_views = {
        pid: len(world.processes[pid].views["metrics"]) for pid in ("p0", "p1", "p2")
    }
    world.leave("p0", "chat")
    world.run()
    assert world.group_view("chat").members == {"p1", "p2"}
    for pid in ("p0", "p1", "p2"):
        assert len(world.processes[pid].views["metrics"]) == metrics_views[pid]


def test_per_group_traces_satisfy_safety():
    world = make_world()
    for pid in ("p0", "p1", "p2"):
        world.join(pid, "g")
    world.run()
    for pid in ("p0", "p1"):
        world.processes[pid].send("g", "m-" + pid)
    world.run()
    world.leave("p2", "g")
    world.run()
    # the shared trace mixes groups; per-group safety holds on the whole
    # trace because payload streams are disjoint per group here
    check_all_safety(world.trace, ["p0", "p1", "p2"])


def test_join_creates_runner_lazily():
    world = make_world()
    process = world.processes["p0"]
    assert process.groups() == []
    world.join("p0", "late")
    assert process.groups() == ["late"]


def test_duplicate_process_rejected():
    world = make_world()
    with pytest.raises(ValueError):
        world.add_process("p0")


def test_many_groups_scale():
    world = MultiGroupWorld(latency=ConstantLatency(1.0), round_duration=1.0)
    pids = [f"p{i}" for i in range(6)]
    for pid in pids:
        world.add_process(pid)
    for g in range(10):
        for pid in pids[g % 3:]:
            world.join(pid, f"group-{g}")
    world.run()
    for g in range(10):
        assert world.settled(f"group-{g}")
