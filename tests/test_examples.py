"""Guard the examples against rot: each must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate what they do"


def test_expected_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "replicated_counter.py",
        "partition_healing.py",
        "wan_reconfiguration.py",
    } <= names
