"""Configuration wiring of the SimWorld assembly."""

import pytest

from repro.baselines import SequentialVsEndpoint
from repro.core import MinCopiesStrategy
from repro.net import ConstantLatency, SimWorld


def test_unknown_membership_mode_rejected():
    with pytest.raises(ValueError):
        SimWorld(membership="telepathy")


def test_endpoint_options_forwarded():
    world = SimWorld(
        latency=ConstantLatency(1.0),
        forwarding=MinCopiesStrategy(),
        compact_syncs=True,
        ack_gc_interval=7,
        gc_views=False,
    )
    node = world.add_node("a")
    assert isinstance(node.endpoint.forwarding, MinCopiesStrategy)
    assert node.endpoint.compact_syncs
    assert node.endpoint.ack_gc_interval == 7
    assert not node.endpoint.gc_views


def test_endpoint_cls_override():
    world = SimWorld(latency=ConstantLatency(1.0), endpoint_cls=SequentialVsEndpoint)
    node = world.add_node("a")
    assert isinstance(node.endpoint, SequentialVsEndpoint)


def test_oracle_crash_without_reconfigure():
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=1.0)
    nodes = world.add_nodes(["a", "b", "c"])
    world.start()
    world.run()
    views_before = len(world.oracle.views_formed)
    world.crash("c", reconfigure=False)
    world.run()
    assert len(world.oracle.views_formed) == views_before  # nothing formed
    assert nodes[0].current_view.members == {"a", "b", "c"}  # stale but legal


def test_partition_without_reconfigure_just_cuts_links():
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=1.0)
    nodes = world.add_nodes(["a", "b"])
    world.start()
    world.run()
    world.partition([["a"], ["b"]], reconfigure=False)
    nodes[0].send("into the void")
    world.run()
    assert nodes[1].delivered == []  # cut, and no new view was formed


def test_set_app_hooks_fire_after_bookkeeping():
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle", round_duration=1.0)
    node = world.add_node("a")
    world.add_node("b")
    seen = []
    node.set_app(
        on_deliver=lambda sender, payload: seen.append(("dlv", sender, payload)),
        on_view=lambda view, T: seen.append(("view", view.vid.counter)),
    )
    world.start()
    world.run()
    world.nodes["b"].send("ping")
    world.run()
    assert ("view", 1) in seen
    assert ("dlv", "b", "ping") in seen
    assert node.delivered == [("b", "ping")]  # bookkeeping still happened


def test_server_mode_requires_servers():
    world = SimWorld(latency=ConstantLatency(1.0), membership="servers", servers=0)
    with pytest.raises(Exception):
        world.add_node("a")


def test_explicit_home_server_assignment():
    world = SimWorld(latency=ConstantLatency(1.0), membership="servers", servers=2)
    node = world.add_node("a", server="srv:1")
    assert node.home_server == "srv:1"
    assert "a" in world.servers["srv:1"].local_clients
