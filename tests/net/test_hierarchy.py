"""Tests for the two-tier sync aggregation overlay (Section 9)."""

import pytest

from repro.checking import check_all_safety, check_liveness
from repro.net import ConstantLatency, SimWorld
from repro.net.hierarchy import TwoTierOverlay, balanced_groups


def make_world(n=8, leaders=2, **kwargs):
    world = SimWorld(
        latency=ConstantLatency(1.0),
        membership="oracle",
        round_duration=3.0,
        gc_views=False,
        **kwargs,
    )
    pids = [f"p{i:02d}" for i in range(n)]
    nodes = world.add_nodes(pids)
    overlay = TwoTierOverlay(world, balanced_groups(pids, leaders))
    world.start()
    world.run()
    return world, nodes, overlay


class TestBalancedGroups:
    def test_contiguous_split(self):
        groups = balanced_groups(["a", "b", "c", "d"], 2)
        assert groups == {"a": ["a", "b"], "c": ["c", "d"]}

    def test_uneven_split(self):
        groups = balanced_groups(list("abcde"), 2)
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [2, 3]

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            balanced_groups(["a"], 2)
        with pytest.raises(ValueError):
            balanced_groups(["a", "b"], 0)


class TestCorrectness:
    def test_initial_view_forms_through_hierarchy(self):
        world, nodes, _overlay = make_world()
        view = world.oracle.views_formed[-1]
        assert world.all_in_view(view)

    def test_safety_and_liveness_on_reconfiguration(self):
        world, nodes, _overlay = make_world()
        for node in nodes:
            node.send("traffic-" + node.pid)
        world.run()
        world.crash(nodes[-1].pid)
        world.run()
        final = world.oracle.views_formed[-1]
        assert world.all_in_view(final)
        check_all_safety(world.trace, list(world.nodes))
        check_liveness(world.trace, final)

    def test_transitional_sets_unchanged_by_overlay(self):
        world, nodes, _overlay = make_world(n=6, leaders=2)
        world.partition([[n.pid for n in nodes[:3]], [n.pid for n in nodes[3:]]])
        world.run()
        world.heal()
        world.run()
        final = world.oracle.views_formed[-1]
        t_left = dict(nodes[0].views)[final]
        assert t_left == {n.pid for n in nodes[:3]}

    def test_partition_between_leader_groups(self):
        world, nodes, _overlay = make_world(n=8, leaders=2)
        left = [n.pid for n in nodes[:4]]   # exactly group 1
        right = [n.pid for n in nodes[4:]]  # exactly group 2
        world.partition([left, right])
        world.run()
        assert nodes[0].current_view.members == set(left)
        assert nodes[4].current_view.members == set(right)
        check_all_safety(world.trace, list(world.nodes))


class TestEfficiency:
    def test_fewer_sync_messages_than_flat(self):
        from repro.experiments import measure_two_tier

        flat = measure_two_tier(group_size=16, leaders=0)
        tiered = measure_two_tier(group_size=16, leaders=2)
        assert tiered.sync_messages < flat.sync_messages / 2
        assert flat.extra_latency == pytest.approx(0.0)
        assert tiered.extra_latency <= 2.0  # bounded by the extra hops

    def test_direct_syncs_fully_replaced(self):
        world, nodes, _overlay = make_world()
        world.network.reset_counters()
        world.crash(nodes[-1].pid)
        world.run()
        counts = world.network.totals()
        assert counts.get("SyncMsg", 0) == 0  # everything rode the overlay
        assert counts.get("UpSync", 0) > 0
        assert counts.get("AggregatedSync", 0) > 0

    def test_timer_flush_handles_stragglers(self):
        # crash a non-leader right after the start_change: its sync never
        # arrives, and the timer flush must keep the others live.
        world, nodes, overlay = make_world(n=6, leaders=2)
        world.oracle.reconfigure([[n.pid for n in nodes]])
        world.run_until(world.now() + 0.2)
        nodes[1].crash()  # silently, without telling the membership
        world.run()
        # the other five still install the view the membership formed for
        # all six?  No - p01's sync is missing, so they wait; the timer
        # flush only bounds the *leader's* batching.  Reconfigure without
        # the silent node to converge:
        world.oracle.client_crashed(nodes[1].pid)
        world.oracle.reconfigure([[n.pid for n in nodes if n.pid != nodes[1].pid]])
        world.run()
        final = world.oracle.views_formed[-1]
        assert world.all_in_view(final)
