"""Unit tests for the latency models."""

import pytest

from repro.net.latency import ConstantLatency, LognormalLatency, UniformLatency


def test_constant_latency():
    model = ConstantLatency(2.0)
    assert model.sample("a", "b") == 2.0
    assert model.mean() == 2.0


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1.0)


def test_uniform_range_and_mean():
    model = UniformLatency(1.0, 3.0, seed=0)
    samples = [model.sample("a", "b") for _ in range(200)]
    assert all(1.0 <= s <= 3.0 for s in samples)
    assert model.mean() == 2.0


def test_uniform_validates_bounds():
    with pytest.raises(ValueError):
        UniformLatency(3.0, 1.0)


def test_uniform_seed_reproducible():
    a = [UniformLatency(0, 1, seed=5).sample("x", "y") for _ in range(3)]
    b = [UniformLatency(0, 1, seed=5).sample("x", "y") for _ in range(3)]
    # fresh models with the same seed produce the same stream
    assert a == b


def test_lognormal_positive_and_heavy_tailed():
    model = LognormalLatency(median=1.0, sigma=0.8, seed=1)
    samples = [model.sample("a", "b") for _ in range(500)]
    assert all(s > 0 for s in samples)
    assert max(samples) > 3.0  # tail exists
    assert model.mean() > 1.0  # mean above the median for lognormal


def test_lognormal_validates_median():
    with pytest.raises(ValueError):
        LognormalLatency(median=0.0)
