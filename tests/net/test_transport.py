"""Unit tests for the per-process CO_RFIFO transport over the simulator."""

import pytest

from repro.net.latency import ConstantLatency
from repro.net.network import SimNetwork
from repro.net.simclock import EventScheduler
from repro.net.transport import SimTransport


def make_world():
    clock = EventScheduler()
    net = SimNetwork(clock, ConstantLatency(1.0))
    inboxes = {}
    transports = {}
    for pid in ("a", "b"):
        inboxes[pid] = []
        transports[pid] = SimTransport(
            pid, net, on_receive=lambda src, m, box=inboxes[pid]: box.append((src, m))
        )
    return clock, net, transports, inboxes


def test_multicast_excludes_self():
    clock, _net, transports, inboxes = make_world()
    transports["a"].send({"a", "b"}, "m")
    clock.run()
    assert inboxes["b"] == [("a", "m")]
    assert inboxes["a"] == []


def test_fifo_across_partition_heal_for_reliable_peer():
    clock, net, transports, inboxes = make_world()
    transports["a"].set_reliable({"a", "b"})
    transports["a"].send({"b"}, "m1")
    net.partition([["a"], ["b"]])  # m1 bounces into the retransmit queue
    transports["a"].send({"b"}, "m2")  # queued as pending
    clock.run()
    assert inboxes["b"] == []
    net.heal()
    clock.run()
    assert [m for _s, m in inboxes["b"]] == ["m1", "m2"]


def test_unreliable_peer_suffix_lost_on_partition():
    clock, net, transports, inboxes = make_world()
    # default reliable set is {a} only
    transports["a"].send({"b"}, "m1")
    net.partition([["a"], ["b"]])
    transports["a"].send({"b"}, "m2")
    net.heal()
    clock.run()
    assert inboxes["b"] == []  # both lost: CO_RFIFO.lose was allowed


def test_set_reliable_drops_disconnected_backlog():
    clock, net, transports, inboxes = make_world()
    transports["a"].set_reliable({"a", "b"})
    net.partition([["a"], ["b"]])
    transports["a"].send({"b"}, "m1")
    assert transports["a"].backlog("b") == 1
    transports["a"].set_reliable({"a"})
    assert transports["a"].backlog("b") == 0


def test_backlog_kept_for_connected_peer_regardless_of_reliability():
    clock, net, transports, inboxes = make_world()
    transports["a"].send({"b"}, "m1")
    clock.run()
    assert [m for _s, m in inboxes["b"]] == ["m1"]


def test_crash_drops_queues_and_mutes_delivery():
    clock, net, transports, inboxes = make_world()
    transports["a"].set_reliable({"a", "b"})
    net.partition([["a"], ["b"]])
    transports["a"].send({"b"}, "m1")
    transports["a"].crash()
    assert transports["a"].backlog("b") == 0
    net.heal()
    transports["b"].send({"a"}, "to-crashed")
    clock.run()
    assert inboxes["a"] == []  # crashed transport swallows deliveries


def test_recover_restores_sending():
    clock, net, transports, inboxes = make_world()
    transports["a"].crash()
    transports["a"].recover()
    transports["a"].send({"b"}, "m")
    clock.run()
    assert inboxes["b"] == [("a", "m")]


def test_send_while_disconnected_then_heal_preserves_order_with_live_traffic():
    clock, net, transports, inboxes = make_world()
    transports["a"].set_reliable({"a", "b"})
    transports["a"].send({"b"}, "m1")
    clock.run_until(0.5)  # m1 still in flight
    net.partition([["a"], ["b"]])  # m1 bounces
    transports["a"].send({"b"}, "m2")
    net.heal()
    transports["a"].send({"b"}, "m3")
    clock.run()
    assert [m for _s, m in inboxes["b"]] == ["m1", "m2", "m3"]
