"""Unit tests for the simulated network fabric."""

import pytest

from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import SimNetwork
from repro.net.simclock import EventScheduler


class Box:
    def __init__(self):
        self.received = []
        self.bounced = []

    def handler(self, src, message):
        self.received.append((src, message))

    def bounce(self, dst, message):
        self.bounced.append((dst, message))


def make_net(latency=None):
    clock = EventScheduler()
    net = SimNetwork(clock, latency or ConstantLatency(1.0))
    boxes = {}
    for pid in ("a", "b", "c"):
        box = Box()
        net.register(pid, box.handler, box.bounce)
        boxes[pid] = box
    return clock, net, boxes


def test_delivery_after_latency():
    clock, net, boxes = make_net(ConstantLatency(2.5))
    net.send("a", "b", "m")
    clock.run_until(2.0)
    assert boxes["b"].received == []
    clock.run()
    assert boxes["b"].received == [("a", "m")]
    assert clock.now == 2.5


def test_per_link_fifo_with_jitter():
    clock, net, boxes = make_net(UniformLatency(0.1, 5.0, seed=3))
    for i in range(20):
        net.send("a", "b", i)
    clock.run()
    assert [m for _s, m in boxes["b"].received] == list(range(20))


def test_partition_blocks_new_sends():
    clock, net, boxes = make_net()
    net.partition([["a"], ["b", "c"]])
    assert not net.send("a", "b", "m")
    clock.run()
    assert boxes["b"].received == []


def test_partition_bounces_in_flight_messages():
    clock, net, boxes = make_net()
    net.send("a", "b", "m1")
    net.send("a", "b", "m2")
    net.partition([["a"], ["b"]])
    assert boxes["a"].bounced == [("b", "m1"), ("b", "m2")]
    clock.run()
    assert boxes["b"].received == []


def test_heal_restores_connectivity():
    clock, net, boxes = make_net()
    net.partition([["a"], ["b"]])
    net.heal()
    assert net.send("a", "b", "m")
    clock.run()
    assert boxes["b"].received == [("a", "m")]


def test_connectivity_queries():
    _clock, net, _boxes = make_net()
    net.partition([["a", "b"], ["c"]])
    assert net.connected("a", "b")
    assert not net.connected("a", "c")
    assert net.reachable_from("a") == {"a", "b"}


def test_topology_listeners_notified():
    _clock, net, _boxes = make_net()
    calls = []
    net.on_topology_change(lambda: calls.append(1))
    net.partition([["a"], ["b", "c"]])
    net.heal()
    assert len(calls) == 2


def test_message_kind_counters():
    clock, net, _boxes = make_net()
    net.send("a", "b", "text")
    net.send("a", "c", 42)
    clock.run()
    assert net.sent == {"str": 1, "int": 1}
    assert net.delivered == {"str": 1, "int": 1}
    net.reset_counters()
    assert net.totals() == {}


def test_bounce_counter():
    _clock, net, _boxes = make_net()
    net.send("a", "b", "m")
    net.partition([["a"], ["b"]])
    assert net.bounced == {"str": 1}


def test_unmentioned_processes_join_group_zero():
    _clock, net, _boxes = make_net()
    net.partition([["a"]])
    assert net.connected("b", "c")
    assert not net.connected("a", "b")


class _ScriptedLatency:
    """Returns a scripted sequence of latency samples."""

    def __init__(self, values):
        self._values = list(values)

    def sample(self, src, dst):
        return self._values.pop(0)


def test_inflight_entry_keyed_by_event_not_message_identity():
    """Regression: the same message object sent twice on one link.

    ``schedule_at`` converts an absolute arrival back to a delay, and the
    float round-trip ``now + (arrival - now)`` can land strictly below
    ``arrival`` - so the second copy's delivery event fires just before
    the first copy's.  When in-flight bookkeeping matched entries by
    message identity, that early delivery popped the *first* copy's
    entry; a partition struck next could then neither find nor cancel the
    first delivery event, letting the message cross the cut (and double
    count: one bounce plus two deliveries from two sends).
    """
    clock = EventScheduler()
    # Chosen so that 16.83604827991613 + (57.98945040232396 - 16.83604827991613)
    # == 57.98945040232395 < 57.98945040232396: the second send's event
    # fires before the first's despite the per-link FIFO arrival clamp.
    t_second = 16.83604827991613
    latency_first = 57.98945040232396
    net = SimNetwork(clock, _ScriptedLatency([latency_first, 1.0]))
    received, bounced = [], []
    net.register("a", lambda src, m: None, lambda dst, m: bounced.append(m))

    def on_b(src, m):
        received.append(m)
        if len(received) == 1:  # partition the instant the first copy lands
            net.partition([["a"], ["b"]])

    net.register("b", on_b)
    message = ("payload",)
    net.send("a", "b", message)
    clock.schedule(t_second, lambda: net.send("a", "b", message))
    clock.run()
    # Exactly one copy is delivered (before the cut) and exactly one is
    # bounced back by the partition; nothing crosses the cut afterwards.
    assert received == [message]
    assert bounced == [message]
    assert not any(net._in_flight.values())
