"""Unit tests for the discrete-event clock."""

import pytest

from repro.net.simclock import EventScheduler


def test_events_run_in_time_order():
    clock = EventScheduler()
    order = []
    clock.schedule(3.0, lambda: order.append("c"))
    clock.schedule(1.0, lambda: order.append("a"))
    clock.schedule(2.0, lambda: order.append("b"))
    clock.run()
    assert order == ["a", "b", "c"]
    assert clock.now == 3.0


def test_fifo_among_equal_timestamps():
    clock = EventScheduler()
    order = []
    for name in "abc":
        clock.schedule(1.0, lambda n=name: order.append(n))
    clock.run()
    assert order == ["a", "b", "c"]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        EventScheduler().schedule(-1.0, lambda: None)


def test_cancel_prevents_execution():
    clock = EventScheduler()
    fired = []
    event = clock.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    clock.run()
    assert fired == []
    assert event.cancelled


def test_nested_scheduling_during_run():
    clock = EventScheduler()
    order = []

    def outer():
        order.append("outer")
        clock.schedule(1.0, lambda: order.append("inner"))

    clock.schedule(1.0, outer)
    clock.run()
    assert order == ["outer", "inner"]
    assert clock.now == 2.0


def test_run_until_stops_at_boundary():
    clock = EventScheduler()
    fired = []
    clock.schedule(1.0, lambda: fired.append(1))
    clock.schedule(5.0, lambda: fired.append(5))
    clock.run_until(2.0)
    assert fired == [1]
    assert clock.now == 2.0
    clock.run()
    assert fired == [1, 5]


def test_run_max_events():
    clock = EventScheduler()
    for _ in range(10):
        clock.schedule(1.0, lambda: None)
    assert clock.run(max_events=4) == 4
    assert clock.pending() == 6


def test_schedule_at_absolute_time():
    clock = EventScheduler()
    clock.schedule(2.0, lambda: None)
    clock.run()
    fired = []
    clock.schedule_at(1.0, lambda: fired.append("past"))  # clamped to now
    clock.run()
    assert fired == ["past"]
    assert clock.now == 2.0


def test_executed_counter():
    clock = EventScheduler()
    clock.schedule(1.0, lambda: None)
    clock.schedule(2.0, lambda: None)
    clock.run()
    assert clock.executed == 2
