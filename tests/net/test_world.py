"""Integration-level unit tests for the SimWorld assembly."""

import pytest

from repro.checking import check_all_safety
from repro.checking.events import MbrshpViewEvent, ViewEvent
from repro.net import ConstantLatency, SimWorld


def make_world(**kwargs):
    defaults = dict(latency=ConstantLatency(1.0), membership="oracle", round_duration=2.0)
    defaults.update(kwargs)
    world = SimWorld(**defaults)
    nodes = world.add_nodes([f"p{i}" for i in range(4)])
    world.start()
    world.run()
    return world, nodes


def test_initial_view_installed_everywhere():
    world, nodes = make_world()
    view = world.oracle.views_formed[0]
    assert world.all_in_view(view)
    assert all(node.views[0][0] == view for node in nodes)


def test_multicast_reaches_all_members():
    world, nodes = make_world()
    nodes[0].send("hello")
    world.run()
    for node in nodes:
        assert ("p0", "hello") in node.delivered


def test_sender_self_delivers():
    world, nodes = make_world()
    nodes[1].send("mine")
    world.run()
    assert ("p1", "mine") in nodes[1].delivered


def test_duplicate_process_rejected():
    world, _nodes = make_world()
    with pytest.raises(ValueError):
        world.add_node("p0")


def test_gcs_view_time_equals_membership_view_time():
    # The paper's one-round claim: with the sync round overlapped, the GCS
    # view lands at the same simulated instant as the membership view.
    world, nodes = make_world()
    nodes[0].send("traffic")
    world.run()
    world.partition([["p0", "p1"], ["p2", "p3"]])
    world.run()
    view = world.oracle.views_formed[-1]
    mb = max(e.time for e in world.trace.of_type(MbrshpViewEvent) if e.view == view)
    gcs = max(e.time for e in world.trace.of_type(ViewEvent) if e.view == view)
    assert gcs == pytest.approx(mb)


def test_partition_then_heal_safety():
    world, nodes = make_world()
    nodes[0].send("before")
    world.run()
    world.partition([["p0", "p1"], ["p2", "p3"]])
    world.run()
    nodes[0].send("island")
    nodes[2].send("other island")
    world.run()
    world.heal()
    world.run()
    final = world.oracle.views_formed[-1]
    assert world.all_in_view(final)
    check_all_safety(world.trace, list(world.nodes))


def test_message_counts_by_kind():
    world, nodes = make_world()
    nodes[0].send("x")
    world.run()
    counts = world.message_counts()
    assert counts.get("SyncMsg", 0) > 0
    assert counts.get("AppMsg", 0) == 3  # to the 3 peers
    assert counts.get("ViewMsg", 0) > 0


def test_strict_mode_runs_clean():
    world = SimWorld(latency=ConstantLatency(1.0), membership="oracle",
                     round_duration=1.0, strict=True, gc_views=False)
    nodes = world.add_nodes(["a", "b"])
    world.start()
    world.run()
    nodes[0].send("strict ok")
    world.run()
    assert ("a", "strict ok") in nodes[1].delivered


def test_current_views_snapshot():
    world, _nodes = make_world()
    views = world.current_views()
    assert set(views) == set(world.nodes)
    assert len({v.vid for v in views.values()}) == 1
