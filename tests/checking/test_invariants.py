"""The invariant checkers must hold on real runs and flag corrupted state."""

import pytest

from repro._collections import frozendict
from repro.checking.invariants import (
    WorldView,
    check_invariants,
    invariant_6_1,
    invariant_6_2,
    invariant_6_7,
    invariant_6_9,
    invariant_6_12,
    invariant_6_13,
    invariant_7_1,
    invariant_7_2,
)
from repro.core.messages import SyncMsg
from repro.errors import InvariantViolation
from repro.harness import ModelHarness
from repro.spec.client import BlockStatus
from repro.types import make_view


@pytest.fixture
def settled_harness():
    harness = ModelHarness("abc", seed=1, scripts={p: [f"{p}0"] for p in "abc"})
    harness.form_view("abc")
    harness.scheduler("fair").run(max_steps=20_000)
    return harness


def test_all_invariants_hold_after_settled_run(settled_harness):
    check_invariants(settled_harness.world)


def test_invariant_hook_runs_during_execution():
    harness = ModelHarness("ab", seed=2)
    scheduler = harness.scheduler("fair")
    scheduler.add_hook(harness.invariant_hook())
    harness.form_view("ab")
    scheduler.run(max_steps=20_000)  # raises on any violation


def test_6_1_detects_missing_self(settled_harness):
    ep = settled_harness.endpoints["a"]
    ep.current_view = make_view(9, ["b"], {"b": 9})
    with pytest.raises(InvariantViolation, match="6.1"):
        invariant_6_1(settled_harness.world)


def test_6_2_detects_shrunk_reliable_set(settled_harness):
    ep = settled_harness.endpoints["a"]
    ep.reliable_set = frozenset({"a"})
    with pytest.raises(InvariantViolation, match="6.2"):
        invariant_6_2(settled_harness.world)


def test_6_7_detects_forged_sync_copy(settled_harness):
    world = settled_harness.world
    ep_b = settled_harness.endpoints["b"]
    forged = SyncMsg(99, ep_b.current_view, frozendict({"a": 5}))
    ep_b.sync_msg.setdefault("a", {})[99] = forged
    ep_a = settled_harness.endpoints["a"]
    ep_a.sync_msg.setdefault("a", {})[99] = SyncMsg(99, ep_a.current_view, frozendict({"a": 0}))
    with pytest.raises(InvariantViolation, match="6.7"):
        invariant_6_7(world)


def test_6_9_detects_wrong_sync_view(settled_harness):
    from repro.types import StartChange

    ep = settled_harness.endpoints["a"]
    ep.start_change = StartChange(50, frozenset("abc"))
    ep.sync_msg.setdefault("a", {})[50] = SyncMsg(50, make_view(7, ["a"], {"a": 7}), frozendict())
    with pytest.raises(InvariantViolation, match="6.9"):
        invariant_6_9(settled_harness.world)


def test_6_12_detects_premature_sync(settled_harness):
    from repro.types import StartChange

    ep = settled_harness.endpoints["a"]
    ep.start_change = StartChange(50, frozenset("abc"))
    ep.block_status = BlockStatus.UNBLOCKED
    settled_harness.clients["a"].block_status = BlockStatus.UNBLOCKED
    ep.sync_msg.setdefault("a", {})[50] = SyncMsg(50, ep.current_view, frozendict())
    with pytest.raises(InvariantViolation, match="6.12"):
        invariant_6_12(settled_harness.world)


def test_6_13_detects_incomplete_cut(settled_harness):
    from repro.types import StartChange

    ep = settled_harness.endpoints["a"]
    ep.buffer("a", ep.current_view).append("unsent")
    ep.start_change = StartChange(50, frozenset("abc"))
    ep.block_status = BlockStatus.BLOCKED
    settled_harness.clients["a"].block_status = BlockStatus.BLOCKED
    ep.sync_msg.setdefault("a", {})[50] = SyncMsg(50, ep.current_view, frozendict({"a": 0}))
    with pytest.raises(InvariantViolation, match="6.13"):
        invariant_6_13(settled_harness.world)


def test_7_1_detects_delivery_beyond_cut(settled_harness):
    from repro.types import StartChange

    ep = settled_harness.endpoints["a"]
    ep.start_change = StartChange(50, frozenset("abc"))
    ep.sync_msg.setdefault("a", {})[50] = SyncMsg(
        50, ep.current_view, frozendict({q: 0 for q in "abc"})
    )
    ep.last_dlvrd["b"] = 7
    with pytest.raises(InvariantViolation, match="7.1"):
        invariant_7_1(settled_harness.world)


def test_7_2_detects_commitment_to_missing_message(settled_harness):
    from repro.types import StartChange

    ep = settled_harness.endpoints["a"]
    ep.start_change = StartChange(50, frozenset("abc"))
    ep.sync_msg.setdefault("a", {})[50] = SyncMsg(50, ep.current_view, frozendict({"b": 42}))
    with pytest.raises(InvariantViolation, match="7.2"):
        invariant_7_2(settled_harness.world)


def test_worldview_from_composition_requires_co_rfifo():
    from repro.ioa import Composition
    from repro.spec.client import ScriptedClient

    with pytest.raises(ValueError):
        WorldView.from_composition(Composition([ScriptedClient("a")]))
